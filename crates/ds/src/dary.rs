//! Indexed d-ary heap with decrease-key.
//!
//! The workhorse priority queue: a 4-ary array heap plus an item→slot index.
//! Asymptotically worse than Fibonacci on decrease-key (`O(log n)` vs
//! `O(1)` amortised) but far better constants on real hardware — the
//! preprocessing default, with the trade-off measured in the `heaps` bench.

use crate::DecreaseKeyHeap;

const D: usize = 4;
const NONE: u32 = u32::MAX;

/// 4-ary indexed min-heap over items `0..capacity`.
#[derive(Debug, Clone)]
pub struct DaryHeap {
    /// `(key, item)` pairs in heap order.
    slots: Vec<(u64, u32)>,
    /// `pos[item]` = slot index, or `NONE`.
    pos: Vec<u32>,
}

impl DaryHeap {
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.slots[i];
        while i > 0 {
            let parent = (i - 1) / D;
            if self.slots[parent].0 <= entry.0 {
                break;
            }
            self.slots[i] = self.slots[parent];
            self.pos[self.slots[i].1 as usize] = i as u32;
            i = parent;
        }
        self.slots[i] = entry;
        self.pos[entry.1 as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        let entry = self.slots[i];
        let len = self.slots.len();
        loop {
            let first = i * D + 1;
            if first >= len {
                break;
            }
            let last = (first + D).min(len);
            let mut best = first;
            for c in first + 1..last {
                if self.slots[c].0 < self.slots[best].0 {
                    best = c;
                }
            }
            if self.slots[best].0 >= entry.0 {
                break;
            }
            self.slots[i] = self.slots[best];
            self.pos[self.slots[i].1 as usize] = i as u32;
            i = best;
        }
        self.slots[i] = entry;
        self.pos[entry.1 as usize] = i as u32;
    }
}

impl DecreaseKeyHeap for DaryHeap {
    fn with_capacity(capacity: usize) -> Self {
        DaryHeap { slots: Vec::new(), pos: vec![NONE; capacity] }
    }

    fn capacity(&self) -> usize {
        self.pos.len()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn push_or_decrease(&mut self, item: u32, key: u64) -> bool {
        match self.pos[item as usize] {
            NONE => {
                self.slots.push((key, item));
                self.sift_up(self.slots.len() - 1);
                true
            }
            p => {
                let p = p as usize;
                if self.slots[p].0 <= key {
                    return false;
                }
                self.slots[p].0 = key;
                self.sift_up(p);
                true
            }
        }
    }

    fn pop_min(&mut self) -> Option<(u32, u64)> {
        if self.slots.is_empty() {
            return None;
        }
        let (key, item) = self.slots.swap_remove(0);
        self.pos[item as usize] = NONE;
        if !self.slots.is_empty() {
            self.sift_down(0);
        }
        Some((item, key))
    }

    fn peek_min(&self) -> Option<(u32, u64)> {
        self.slots.first().map(|&(key, item)| (item, key))
    }

    fn key_of(&self, item: u32) -> Option<u64> {
        match self.pos[item as usize] {
            NONE => None,
            p => Some(self.slots[p as usize].0),
        }
    }

    fn clear(&mut self) {
        for &(_, item) in &self.slots {
            self.pos[item as usize] = NONE;
        }
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap_test_support::*;

    #[test]
    fn basic_order() {
        let mut h = DaryHeap::with_capacity(10);
        assert!(h.is_empty());
        h.push_or_decrease(3, 30);
        h.push_or_decrease(1, 10);
        h.push_or_decrease(2, 20);
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop_min(), Some((1, 10)));
        assert_eq!(h.pop_min(), Some((2, 20)));
        assert_eq!(h.pop_min(), Some((3, 30)));
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = DaryHeap::with_capacity(4);
        h.push_or_decrease(0, 100);
        h.push_or_decrease(1, 50);
        assert!(h.push_or_decrease(0, 10), "decrease succeeds");
        assert!(!h.push_or_decrease(1, 60), "increase is a no-op");
        assert_eq!(h.key_of(0), Some(10));
        assert_eq!(h.pop_min(), Some((0, 10)));
    }

    #[test]
    fn clear_resets_positions() {
        let mut h = DaryHeap::with_capacity(4);
        h.push_or_decrease(2, 5);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.key_of(2), None);
        assert!(h.push_or_decrease(2, 7), "reinsertion after clear works");
    }

    #[test]
    fn clear_reuse_matches_fresh_heap() {
        run_clear_reuse::<DaryHeap>(5, 80);
    }

    #[test]
    fn clear_keeps_slot_allocation() {
        let mut h = DaryHeap::with_capacity(64);
        for i in 0..64u32 {
            h.push_or_decrease(i, i as u64);
        }
        let cap = h.slots.capacity();
        h.clear();
        assert_eq!(h.capacity(), 64);
        assert_eq!(h.slots.capacity(), cap, "clear must not release the slot storage");
    }

    #[test]
    fn model_battery() {
        run_model_battery::<DaryHeap>(1, 4000, 50);
        run_model_battery::<DaryHeap>(2, 4000, 5);
    }

    #[test]
    fn heapsort() {
        run_heapsort::<DaryHeap>(3, 2000);
    }

    #[test]
    fn decrease_storm() {
        run_decrease_storm::<DaryHeap>(4, 300, 5000);
    }
}
