//! Priority structures for the radius-stepping workspace.
//!
//! The paper leans on two families of structures:
//!
//! * **Decrease-key heaps** for the truncated-Dijkstra preprocessing
//!   (Lemma 4.2 specifies Fibonacci heaps): [`FibonacciHeap`],
//!   [`PairingHeap`] and the cache-friendly [`DaryHeap`] all implement the
//!   common [`DecreaseKeyHeap`] trait so the preprocessing and the Dijkstra
//!   baseline are generic over the choice (ablated in the benches).
//! * **Ordered sets with split / union / difference** for the efficient
//!   Algorithm-2 engine (§3.3 maintains the fringe in two balanced BSTs
//!   `Q` and `R`): [`Treap`] is a join-based treap with size augmentation
//!   and optionally parallel union/difference, following the join-based
//!   ordered-set line of work the paper cites.
//!
//! [`BucketQueue`] is the cyclic bucket array classic ∆-stepping uses.
//!
//! [`LatencyHistogram`] is serving telemetry rather than an algorithmic
//! structure: a fixed-footprint power-of-two-bucket histogram the server
//! loop uses for per-lane p50/p95/p99 latency SLOs.

pub mod bucket;
pub mod dary;
pub mod fibonacci;
pub mod histogram;
pub mod pairing;
pub mod treap;

pub use bucket::BucketQueue;
pub use dary::DaryHeap;
pub use fibonacci::FibonacciHeap;
pub use histogram::LatencyHistogram;
pub use pairing::PairingHeap;
pub use treap::{Treap, TreapArena};

/// A min-priority queue over items `0..capacity` with `u64` keys and
/// decrease-key, the interface Dijkstra-style searches need.
///
/// Each item may appear at most once; [`DecreaseKeyHeap::push_or_decrease`]
/// merges insert and decrease-key the way relaxation uses them.
pub trait DecreaseKeyHeap {
    /// Creates a heap for items `0..capacity`.
    fn with_capacity(capacity: usize) -> Self;

    /// The item universe the heap was created for (`0..capacity`).
    /// Preserved by [`DecreaseKeyHeap::clear`], so a cleared heap can be
    /// reused for any graph with at most this many vertices without
    /// reallocating.
    fn capacity(&self) -> usize;

    /// Number of items currently queued.
    fn len(&self) -> usize;

    /// True when no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `item` with `key`, or lowers its key if already queued with a
    /// larger one. Returns `true` iff the heap changed (inserted or
    /// decreased) — exactly "the relaxation succeeded".
    fn push_or_decrease(&mut self, item: u32, key: u64) -> bool;

    /// Removes and returns the minimum-key item (ties broken arbitrarily).
    fn pop_min(&mut self) -> Option<(u32, u64)>;

    /// The minimum-key item without removing it — what a bidirectional
    /// search's stopping rule reads each round. Ties match
    /// [`DecreaseKeyHeap::pop_min`]'s arbitrary choice only in key, not
    /// necessarily in item.
    fn peek_min(&self) -> Option<(u32, u64)>;

    /// Current key of `item`, if queued.
    fn key_of(&self, item: u32) -> Option<u64>;

    /// Removes all items, keeping capacity: after `clear()` the heap
    /// behaves exactly like `with_capacity(self.capacity())` but performs
    /// no allocation on reuse (asserted by the shared clear-reuse battery).
    fn clear(&mut self);
}

#[cfg(test)]
pub(crate) mod heap_test_support {
    //! Model-based test battery shared by all three heap implementations.
    use super::DecreaseKeyHeap;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Drives `H` against a simple model; panics on divergence.
    pub fn run_model_battery<H: DecreaseKeyHeap>(seed: u64, ops: usize, universe: u32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap = H::with_capacity(universe as usize);
        let mut model: std::collections::BTreeMap<u32, u64> = Default::default();
        for _ in 0..ops {
            match rng.random_range(0..10) {
                0..=5 => {
                    let item = rng.random_range(0..universe);
                    let key = rng.random_range(0..1000u64);
                    let model_changed = match model.get(&item) {
                        Some(&old) if old <= key => false,
                        _ => {
                            model.insert(item, key);
                            true
                        }
                    };
                    let heap_changed = heap.push_or_decrease(item, key);
                    assert_eq!(heap_changed, model_changed, "push_or_decrease({item},{key})");
                }
                6..=8 => {
                    let expect_min = model.values().copied().min();
                    assert_eq!(
                        heap.peek_min().map(|(_, k)| k),
                        expect_min,
                        "peek_min key must match the model minimum"
                    );
                    if let Some((item, key)) = heap.peek_min() {
                        assert_eq!(heap.key_of(item), Some(key), "peek_min item/key mismatch");
                    }
                    match heap.pop_min() {
                        None => assert!(model.is_empty()),
                        Some((item, key)) => {
                            assert_eq!(Some(key), expect_min, "pop_min returned non-minimal key");
                            assert_eq!(model.remove(&item), Some(key), "pop_min item/key mismatch");
                        }
                    }
                }
                _ => {
                    let item = rng.random_range(0..universe);
                    assert_eq!(heap.key_of(item), model.get(&item).copied(), "key_of({item})");
                }
            }
            assert_eq!(heap.len(), model.len());
            assert_eq!(heap.is_empty(), model.is_empty());
        }
        // Drain: must come out in nondecreasing key order.
        let mut last = 0u64;
        while let Some((item, key)) = heap.pop_min() {
            assert!(key >= last, "heap order violated");
            last = key;
            assert_eq!(model.remove(&item), Some(key));
        }
        assert!(model.is_empty());
    }

    /// Heapsort check: n random keys drain in sorted order.
    pub fn run_heapsort<H: DecreaseKeyHeap>(seed: u64, n: u32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap = H::with_capacity(n as usize);
        let mut keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..1_000_000)).collect();
        for (i, &k) in keys.iter().enumerate() {
            assert!(heap.push_or_decrease(i as u32, k));
        }
        keys.sort_unstable();
        let mut drained = Vec::with_capacity(n as usize);
        while let Some((_, k)) = heap.pop_min() {
            drained.push(k);
        }
        assert_eq!(drained, keys);
    }

    /// Clear-reuse battery: after `clear()` a heap must behave exactly
    /// like a freshly constructed one of the same capacity — same drain
    /// sequence (up to arbitrary tie order), `key_of` misses everywhere,
    /// and the capacity preserved — across several fill/clear cycles,
    /// including a clear of a half-drained (dirty) heap.
    pub fn run_clear_reuse<H: DecreaseKeyHeap>(seed: u64, universe: u32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reused = H::with_capacity(universe as usize);
        for cycle in 0..4 {
            // Dirty the heap (leave it half-drained on odd cycles).
            for i in 0..universe {
                reused.push_or_decrease(i, rng.random_range(0..10_000));
            }
            if cycle % 2 == 1 {
                for _ in 0..universe / 2 {
                    reused.pop_min();
                }
            }
            reused.clear();
            assert_eq!(reused.len(), 0);
            assert!(reused.is_empty());
            assert_eq!(reused.capacity(), universe as usize, "clear must keep capacity");
            for i in 0..universe {
                assert_eq!(reused.key_of(i), None, "cycle {cycle}: item {i} leaked");
            }
            // The cleared heap and a fresh heap must drain identically.
            let mut fresh = H::with_capacity(universe as usize);
            let keys: Vec<u64> = (0..universe).map(|_| rng.random_range(0..1_000u64)).collect();
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(
                    reused.push_or_decrease(i as u32, k),
                    fresh.push_or_decrease(i as u32, k)
                );
            }
            let mut a: Vec<(u64, u32)> =
                std::iter::from_fn(|| reused.pop_min()).map(|(i, k)| (k, i)).collect();
            let mut b: Vec<(u64, u32)> =
                std::iter::from_fn(|| fresh.pop_min()).map(|(i, k)| (k, i)).collect();
            assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "drain must be key-sorted");
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "cycle {cycle}: cleared heap diverged from fresh heap");
        }
    }

    /// Exercises decrease-key cascades: keys only ever decrease.
    pub fn run_decrease_storm<H: DecreaseKeyHeap>(seed: u64, n: u32, rounds: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heap = H::with_capacity(n as usize);
        let mut best = vec![u64::MAX; n as usize];
        for i in 0..n {
            let k = 1_000_000 + rng.random_range(0..1000u64);
            heap.push_or_decrease(i, k);
            best[i as usize] = k;
        }
        for _ in 0..rounds {
            let i = rng.random_range(0..n);
            let k = rng.random_range(0..1_000_000u64);
            if k < best[i as usize] {
                assert!(heap.push_or_decrease(i, k));
                best[i as usize] = k;
            } else {
                assert!(!heap.push_or_decrease(i, k));
            }
        }
        let mut last = 0;
        while let Some((i, k)) = heap.pop_min() {
            assert_eq!(k, best[i as usize]);
            assert!(k >= last);
            last = k;
        }
    }
}
