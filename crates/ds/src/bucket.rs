//! Cyclic bucket queue for ∆-stepping.
//!
//! Meyer–Sanders ∆-stepping keeps unsettled vertices in buckets of width ∆
//! by tentative distance. Because every edge weight is at most `L`, at most
//! `⌈L/∆⌉ + O(1)` buckets are ever populated ahead of the scan position, so
//! a cyclic array suffices. Deletion is lazy: moves only update the
//! item→bucket map, and stale bucket entries are filtered when drained.

const NONE: u64 = u64::MAX;

/// Cyclic bucket priority queue over items `0..capacity`.
#[derive(Debug)]
pub struct BucketQueue {
    delta: u64,
    slots: Vec<Vec<u32>>,
    /// Absolute index of the lowest possibly-nonempty bucket.
    cur: u64,
    /// `pos[item]` = absolute bucket index, or `NONE` when not queued.
    pos: Vec<u64>,
    len: usize,
}

impl BucketQueue {
    /// Creates a queue with bucket width `delta` for items `0..capacity`,
    /// where no queued priority ever exceeds the current scan position by
    /// more than `max_weight` (the graph's heaviest edge `L`).
    pub fn new(capacity: usize, delta: u64, max_weight: u64) -> Self {
        assert!(delta > 0);
        let span = Self::span_for(delta, max_weight);
        BucketQueue {
            delta,
            slots: (0..span).map(|_| Vec::new()).collect(),
            cur: 0,
            pos: vec![NONE; capacity],
            len: 0,
        }
    }

    /// The one sizing rule: cyclic window (slot count) needed for bucket
    /// width `delta` and heaviest edge `max_weight`. Shared by
    /// [`BucketQueue::new`] and [`BucketQueue::fits`] so they cannot
    /// diverge.
    fn span_for(delta: u64, max_weight: u64) -> usize {
        (max_weight / delta + 3) as usize
    }

    /// Bucket width ∆.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The item universe the queue was created for (`0..capacity`).
    pub fn capacity(&self) -> usize {
        self.pos.len()
    }

    /// True when this queue can be reused (after [`BucketQueue::clear`])
    /// for a run over `capacity` items with bucket width `delta` and
    /// heaviest edge `max_weight` — the compatibility test scratch pools
    /// key on.
    pub fn fits(&self, capacity: usize, delta: u64, max_weight: u64) -> bool {
        delta > 0
            && self.delta == delta
            && self.pos.len() >= capacity
            && self.slots.len() >= Self::span_for(delta, max_weight)
    }

    /// Removes every item (live and stale) and rewinds the scan position
    /// to bucket 0, preserving all allocations: `O(entries + span)` where
    /// span = `⌈L/∆⌉ + 3` is the (small, constant) cyclic window — not
    /// `O(capacity)`, because `pos` is only reset for items actually
    /// queued. The classic ∆-stepping loop previously had to reallocate
    /// the whole queue per source; after `clear()` it reuses one queue for
    /// an entire batch.
    pub fn clear(&mut self) {
        for i in 0..self.slots.len() {
            let mut slot = std::mem::take(&mut self.slots[i]);
            for &item in &slot {
                self.pos[item as usize] = NONE;
            }
            slot.clear();
            self.slots[i] = slot;
        }
        self.cur = 0;
        self.len = 0;
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Absolute bucket index for priority `p`.
    pub fn bucket_of(&self, p: u64) -> u64 {
        p / self.delta
    }

    /// Queues `item` at priority `p`, or moves it to the earlier bucket if
    /// already queued. Returns `true` iff membership changed.
    ///
    /// # Panics
    /// If `p`'s bucket lies before the scan position or beyond the cyclic
    /// window (violating the `max_weight` contract).
    pub fn insert_or_decrease(&mut self, item: u32, p: u64) -> bool {
        let b = self.bucket_of(p);
        assert!(b >= self.cur, "priority {p} falls before the scan position");
        assert!(
            b - self.cur < self.slots.len() as u64,
            "priority {p} beyond cyclic window; max_weight contract violated"
        );
        let old = self.pos[item as usize];
        if old == b {
            return false;
        }
        if old == NONE {
            self.len += 1;
        }
        // Lazy move: leave any stale entry behind in the old bucket.
        self.pos[item as usize] = b;
        let slot = (b % self.slots.len() as u64) as usize;
        self.slots[slot].push(item);
        true
    }

    /// Removes `item` if queued; returns `true` iff it was queued.
    pub fn remove(&mut self, item: u32) -> bool {
        if self.pos[item as usize] == NONE {
            false
        } else {
            self.pos[item as usize] = NONE;
            self.len -= 1;
            true
        }
    }

    /// Advances to and returns the index of the next bucket holding at
    /// least one live item, or `None` when the queue is empty.
    pub fn next_nonempty_bucket(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = (self.cur % self.slots.len() as u64) as usize;
            // Purge stale entries eagerly so emptiness is meaningful.
            if self.slots[slot].iter().any(|&it| self.pos[it as usize] == self.cur) {
                return Some(self.cur);
            }
            self.slots[slot].clear();
            self.cur += 1;
        }
    }

    /// Drains the live items of absolute bucket `b` (which must be the
    /// current scan position), removing them from the queue.
    pub fn take_bucket(&mut self, b: u64) -> Vec<u32> {
        assert_eq!(b, self.cur, "may only drain the current bucket");
        let slot = (b % self.slots.len() as u64) as usize;
        let raw = std::mem::take(&mut self.slots[slot]);
        let mut out = Vec::with_capacity(raw.len());
        for item in raw {
            if self.pos[item as usize] == b {
                self.pos[item as usize] = NONE;
                self.len -= 1;
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_flow() {
        let mut q = BucketQueue::new(10, 5, 20);
        assert!(q.is_empty());
        assert!(q.insert_or_decrease(3, 12)); // bucket 2
        assert!(q.insert_or_decrease(4, 3)); // bucket 0
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_nonempty_bucket(), Some(0));
        assert_eq!(q.take_bucket(0), vec![4]);
        assert_eq!(q.next_nonempty_bucket(), Some(2));
        assert_eq!(q.take_bucket(2), vec![3]);
        assert!(q.is_empty());
        assert_eq!(q.next_nonempty_bucket(), None);
    }

    #[test]
    fn decrease_moves_between_buckets() {
        let mut q = BucketQueue::new(4, 10, 100);
        q.insert_or_decrease(1, 95); // bucket 9
        assert!(q.insert_or_decrease(1, 15)); // moved to bucket 1
        assert!(!q.insert_or_decrease(1, 17), "same bucket: no change");
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_nonempty_bucket(), Some(1));
        assert_eq!(q.take_bucket(1), vec![1]);
        // The stale entry in bucket 9 must not resurrect the item.
        assert_eq!(q.next_nonempty_bucket(), None);
    }

    #[test]
    fn reinsert_into_current_bucket() {
        // ∆-stepping's light-edge loop reinserts into the bucket being
        // processed.
        let mut q = BucketQueue::new(4, 10, 100);
        q.insert_or_decrease(0, 5);
        assert_eq!(q.next_nonempty_bucket(), Some(0));
        assert_eq!(q.take_bucket(0), vec![0]);
        q.insert_or_decrease(1, 7); // lands back in bucket 0
        assert_eq!(q.next_nonempty_bucket(), Some(0));
        assert_eq!(q.take_bucket(0), vec![1]);
    }

    #[test]
    fn remove_hides_item() {
        let mut q = BucketQueue::new(4, 10, 100);
        q.insert_or_decrease(2, 25);
        assert!(q.remove(2));
        assert!(!q.remove(2));
        assert!(q.is_empty());
        assert_eq!(q.next_nonempty_bucket(), None);
    }

    #[test]
    fn cyclic_reuse_across_many_buckets() {
        let mut q = BucketQueue::new(2, 1, 4);
        let mut popped = Vec::new();
        let mut next_priority = 0u64;
        q.insert_or_decrease(0, next_priority);
        // Walk priorities far beyond the slot count to exercise wrap-around.
        for _ in 0..50 {
            let b = q.next_nonempty_bucket().unwrap();
            let items = q.take_bucket(b);
            popped.extend(items.iter().map(|&i| (i, b)));
            next_priority = b + 3; // within the max_weight=4 window
            if popped.len() < 50 {
                q.insert_or_decrease((popped.len() % 2) as u32, next_priority);
            }
        }
        assert_eq!(popped.len(), 50);
        assert!(popped.windows(2).all(|w| w[0].1 <= w[1].1), "monotone buckets");
    }

    #[test]
    fn clear_rewinds_and_preserves_capacity() {
        let mut q = BucketQueue::new(8, 10, 100);
        // Dirty state: live items, a stale (moved) entry, and an advanced
        // scan position.
        q.insert_or_decrease(1, 95);
        q.insert_or_decrease(1, 15); // stale entry left in bucket 9
        q.insert_or_decrease(2, 25);
        q.insert_or_decrease(3, 5);
        assert_eq!(q.next_nonempty_bucket(), Some(0));
        assert_eq!(q.take_bucket(0), vec![3]);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 8);
        assert_eq!(q.next_nonempty_bucket(), None);
        // The cleared queue accepts priorities from 0 again (scan rewound)
        // and behaves exactly like a fresh one.
        let mut fresh = BucketQueue::new(8, 10, 100);
        for (item, p) in [(4u32, 12u64), (5, 3), (1, 44)] {
            assert_eq!(q.insert_or_decrease(item, p), fresh.insert_or_decrease(item, p));
        }
        while let Some(b) = q.next_nonempty_bucket() {
            assert_eq!(Some(b), fresh.next_nonempty_bucket());
            assert_eq!(q.take_bucket(b), fresh.take_bucket(b));
        }
        assert_eq!(fresh.next_nonempty_bucket(), None);
    }

    #[test]
    fn fits_checks_all_parameters() {
        let q = BucketQueue::new(10, 5, 20);
        assert!(q.fits(10, 5, 20));
        assert!(q.fits(4, 5, 20), "smaller universe fits");
        assert!(q.fits(10, 5, 10), "lighter edges fit");
        assert!(!q.fits(11, 5, 20), "larger universe does not fit");
        assert!(!q.fits(10, 4, 20), "different delta does not fit");
        assert!(!q.fits(10, 5, 500), "wider cyclic window does not fit");
        assert!(!q.fits(10, 0, 20), "zero delta is invalid");
    }

    #[test]
    #[should_panic(expected = "before the scan position")]
    fn rejects_past_priorities() {
        let mut q = BucketQueue::new(2, 10, 100);
        q.insert_or_decrease(0, 50);
        let b = q.next_nonempty_bucket().unwrap();
        q.take_bucket(b);
        q.insert_or_decrease(1, 3); // bucket 0 < cur 5
    }
}
