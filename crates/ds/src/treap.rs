//! Join-based treap: the ordered set with `split` / `union` / `difference`
//! that Algorithm 2 keeps its fringe in.
//!
//! §3.3 of the paper stores tentative distances in two balanced BSTs —
//! `Q` keyed by `(δ(u), u)` and `R` keyed by `(δ(u) + r(u), u)` — and drives
//! each step with an extract-min on `R`, a `split` of `Q` at the round
//! distance, and batch `union`/`difference` against the relaxed vertices.
//! This module provides those operations on a size-augmented treap whose
//! priorities are a deterministic hash of the key, so equal sets always
//! have equal shapes and bulk operations can recurse structurally.
//! `union`/`difference` recurse in parallel (rayon) above a size threshold,
//! matching the `O(p log q)` work / polylog depth bounds quoted in §2.

use rayon::join;

/// Set element: `(primary, id)` — distance paired with vertex id.
pub type Key = (u64, u32);

/// Subtree size threshold above which union/difference recurse in parallel.
const PAR_THRESHOLD: u32 = 1 << 11;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic priority: a hash of the key, so the treap shape is a
/// function of its contents.
fn prio(key: Key) -> u64 {
    splitmix64(key.0 ^ (key.1 as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

#[derive(Debug, Clone)]
struct Node {
    key: Key,
    prio: u64,
    size: u32,
    left: Link,
    right: Link,
}

type Link = Option<Box<Node>>;

fn size(t: &Link) -> u32 {
    t.as_ref().map_or(0, |n| n.size)
}

fn rebuild(mut n: Box<Node>, left: Link, right: Link) -> Link {
    n.size = 1 + size(&left) + size(&right);
    n.left = left;
    n.right = right;
    Some(n)
}

/// Splits into `(keys < key, key present?, keys > key)`.
fn split3(t: Link, key: Key) -> (Link, bool, Link) {
    match t {
        None => (None, false, None),
        Some(mut n) => match key.cmp(&n.key) {
            std::cmp::Ordering::Less => {
                let left = n.left.take();
                let (ll, found, lr) = split3(left, key);
                let right = n.right.take();
                (ll, found, rebuild(n, lr, right))
            }
            std::cmp::Ordering::Greater => {
                let right = n.right.take();
                let (rl, found, rr) = split3(right, key);
                let left = n.left.take();
                (rebuild(n, left, rl), found, rr)
            }
            std::cmp::Ordering::Equal => (n.left.take(), true, n.right.take()),
        },
    }
}

/// Joins two treaps where every key in `l` precedes every key in `r`.
fn join2(l: Link, r: Link) -> Link {
    match (l, r) {
        (None, t) | (t, None) => t,
        (Some(mut l), Some(mut r)) => {
            if l.prio >= r.prio {
                let lr = l.right.take();
                let joined = join2(lr, Some(r));
                let ll = l.left.take();
                rebuild(l, ll, joined)
            } else {
                let rl = r.left.take();
                let joined = join2(Some(l), rl);
                let rr = r.right.take();
                rebuild(r, joined, rr)
            }
        }
    }
}

fn union_links(a: Link, b: Link) -> Link {
    match (a, b) {
        (None, t) | (t, None) => t,
        (Some(a), Some(b)) => {
            // Root the union at the higher-priority node; ties cannot occur
            // between distinct keys in a way that matters for correctness.
            let (mut top, other) = if a.prio >= b.prio { (a, Some(b)) } else { (b, Some(a)) };
            let (ol, _dup, or) = split3(other, top.key);
            let tl = top.left.take();
            let tr = top.right.take();
            let (l, r) = if size(&tl).max(size(&ol)) > PAR_THRESHOLD
                && size(&tr).max(size(&or)) > PAR_THRESHOLD
            {
                join(|| union_links(tl, ol), || union_links(tr, or))
            } else {
                (union_links(tl, ol), union_links(tr, or))
            };
            rebuild(top, l, r)
        }
    }
}

/// `a \ b`.
fn difference_links(a: Link, b: Link) -> Link {
    match (a, b) {
        (None, _) => None,
        (t, None) => t,
        (Some(mut a), b) => {
            let (bl, found, br) = split3(b, a.key);
            let al = a.left.take();
            let ar = a.right.take();
            let (l, r) = if size(&al).max(size(&bl)) > PAR_THRESHOLD
                && size(&ar).max(size(&br)) > PAR_THRESHOLD
            {
                join(|| difference_links(al, bl), || difference_links(ar, br))
            } else {
                (difference_links(al, bl), difference_links(ar, br))
            };
            if found {
                join2(l, r)
            } else {
                rebuild(a, l, r)
            }
        }
    }
}

/// Ordered set of [`Key`]s as a join-based treap.
#[derive(Debug, Clone, Default)]
pub struct Treap {
    root: Link,
}

impl Treap {
    /// The empty set.
    pub fn new() -> Self {
        Treap { root: None }
    }

    /// Builds from a strictly ascending key sequence in `O(n)` via the
    /// right-spine stack construction.
    pub fn from_sorted(keys: &[Key]) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be strictly ascending");
        let mut spine: Vec<Box<Node>> = Vec::new();
        for &key in keys {
            let mut carried: Link = None;
            while let Some(top) = spine.last() {
                if top.prio < prio(key) {
                    let mut popped = spine.pop().unwrap();
                    let left = carried.take();
                    // popped keeps its own left; carried attaches as right.
                    popped.right = left;
                    popped.size = 1 + size(&popped.left) + size(&popped.right);
                    carried = Some(popped);
                } else {
                    break;
                }
            }
            let node = Box::new(Node {
                key,
                prio: prio(key),
                size: 1 + carried.as_ref().map_or(0, |c| c.size),
                left: carried,
                right: None,
            });
            spine.push(node);
        }
        // Collapse the spine right-to-left.
        let mut carried: Link = None;
        while let Some(mut popped) = spine.pop() {
            popped.right = carried.take();
            popped.size = 1 + size(&popped.left) + size(&popped.right);
            carried = Some(popped);
        }
        Treap { root: carried }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        size(&self.root) as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Inserts `key`; returns `true` iff it was absent.
    pub fn insert(&mut self, key: Key) -> bool {
        let (l, found, r) = split3(self.root.take(), key);
        if found {
            // Rebuild unchanged (the key was already present).
            let node = Box::new(Node { key, prio: prio(key), size: 1, left: None, right: None });
            self.root = join2(join2(l, Some(node)), r);
            false
        } else {
            let node = Box::new(Node { key, prio: prio(key), size: 1, left: None, right: None });
            self.root = join2(join2(l, Some(node)), r);
            true
        }
    }

    /// Removes `key`; returns `true` iff it was present.
    pub fn remove(&mut self, key: Key) -> bool {
        let (l, found, r) = split3(self.root.take(), key);
        self.root = join2(l, r);
        found
    }

    /// Membership test.
    pub fn contains(&self, key: Key) -> bool {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => cur = &n.left,
                std::cmp::Ordering::Greater => cur = &n.right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Smallest element.
    pub fn min(&self) -> Option<Key> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = cur.left.as_ref() {
            cur = l;
        }
        Some(cur.key)
    }

    /// Removes and returns the smallest element.
    pub fn extract_min(&mut self) -> Option<Key> {
        let key = self.min()?;
        self.remove(key);
        Some(key)
    }

    /// Splits into `(elements with primary ≤ d, the rest)` — the paper's
    /// `Q.split(d_i)` selecting the step's active set.
    pub fn split_at_most(&mut self, d: u64) -> Treap {
        if d == u64::MAX {
            return Treap { root: self.root.take() };
        }
        let (l, found, r) = split3(self.root.take(), (d + 1, 0));
        self.root = if found {
            // A real element (d+1, 0) matched the split key; it belongs on
            // the "greater than d" side.
            let node = Box::new(Node {
                key: (d + 1, 0),
                prio: prio((d + 1, 0)),
                size: 1,
                left: None,
                right: None,
            });
            join2(Some(node), r)
        } else {
            r
        };
        Treap { root: l }
    }

    /// Set union (consumes both operands' structure).
    pub fn union(a: Treap, b: Treap) -> Treap {
        Treap { root: union_links(a.root, b.root) }
    }

    /// Set difference `a \ b`.
    pub fn difference(a: Treap, b: Treap) -> Treap {
        Treap { root: difference_links(a.root, b.root) }
    }

    /// In-order contents.
    pub fn to_vec(&self) -> Vec<Key> {
        fn walk(t: &Link, out: &mut Vec<Key>) {
            if let Some(n) = t {
                walk(&n.left, out);
                out.push(n.key);
                walk(&n.right, out);
            }
        }
        let mut out = Vec::with_capacity(self.len());
        walk(&self.root, &mut out);
        out
    }

    /// Verifies BST order, heap priority and size augmentation; test aid.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk(t: &Link, lo: Option<Key>, hi: Option<Key>) -> Result<u32, String> {
            match t {
                None => Ok(0),
                Some(n) => {
                    if let Some(lo) = lo {
                        if n.key <= lo {
                            return Err(format!("BST order violated at {:?}", n.key));
                        }
                    }
                    if let Some(hi) = hi {
                        if n.key >= hi {
                            return Err(format!("BST order violated at {:?}", n.key));
                        }
                    }
                    if n.prio != prio(n.key) {
                        return Err("priority not hash of key".into());
                    }
                    for c in [&n.left, &n.right].into_iter().flatten() {
                        if c.prio > n.prio {
                            return Err("heap property violated".into());
                        }
                    }
                    let ls = walk(&n.left, lo, Some(n.key))?;
                    let rs = walk(&n.right, Some(n.key), hi)?;
                    if n.size != 1 + ls + rs {
                        return Err(format!("size wrong at {:?}", n.key));
                    }
                    Ok(n.size)
                }
            }
        }
        walk(&self.root, None, None).map(|_| ())
    }
}

impl FromIterator<Key> for Treap {
    fn from_iter<I: IntoIterator<Item = Key>>(iter: I) -> Self {
        let mut keys: Vec<Key> = iter.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        Treap::from_sorted(&keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(xs: &[(u64, u32)]) -> Vec<Key> {
        xs.to_vec()
    }

    #[test]
    fn insert_remove_contains() {
        let mut t = Treap::new();
        assert!(t.insert((5, 0)));
        assert!(t.insert((3, 1)));
        assert!(!t.insert((5, 0)), "duplicate insert");
        assert_eq!(t.len(), 2);
        assert!(t.contains((3, 1)));
        assert!(!t.contains((3, 2)));
        assert!(t.remove((3, 1)));
        assert!(!t.remove((3, 1)));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn min_and_extract() {
        let mut t: Treap = [(9, 1), (2, 5), (2, 3), (7, 0)].into_iter().collect();
        assert_eq!(t.min(), Some((2, 3)), "ties broken by id");
        assert_eq!(t.extract_min(), Some((2, 3)));
        assert_eq!(t.extract_min(), Some((2, 5)));
        assert_eq!(t.extract_min(), Some((7, 0)));
        assert_eq!(t.extract_min(), Some((9, 1)));
        assert_eq!(t.extract_min(), None);
    }

    #[test]
    fn from_sorted_matches_inserts() {
        let ks: Vec<Key> = (0..500u32).map(|i| ((i as u64 * 37) % 1000, i)).collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        let bulk = Treap::from_sorted(&sorted);
        bulk.check_invariants().unwrap();
        let mut incremental = Treap::new();
        for &k in &ks {
            incremental.insert(k);
        }
        incremental.check_invariants().unwrap();
        assert_eq!(bulk.to_vec(), incremental.to_vec());
        assert_eq!(bulk.len(), 500);
    }

    #[test]
    fn split_at_most_partitions_by_distance() {
        let t: Treap = keys(&[(1, 0), (3, 1), (3, 9), (5, 2), (8, 3)]).into_iter().collect();
        let mut rest = t;
        let low = rest.split_at_most(3);
        assert_eq!(low.to_vec(), vec![(1, 0), (3, 1), (3, 9)]);
        assert_eq!(rest.to_vec(), vec![(5, 2), (8, 3)]);
        low.check_invariants().unwrap();
        rest.check_invariants().unwrap();
        // Split at MAX takes everything.
        let mut rest2 = low;
        let all = rest2.split_at_most(u64::MAX);
        assert!(rest2.is_empty());
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn split_at_most_with_element_at_sentinel_key() {
        // An element whose key equals the internal sentinel (d+1, 0) must
        // land on the "greater" side.
        let mut t: Treap = keys(&[(3, 0), (4, 0), (5, 0)]).into_iter().collect();
        let low = t.split_at_most(3);
        assert_eq!(low.to_vec(), vec![(3, 0)]);
        assert_eq!(t.to_vec(), vec![(4, 0), (5, 0)]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn union_merges_and_dedups() {
        let a: Treap = keys(&[(1, 1), (2, 2), (3, 3)]).into_iter().collect();
        let b: Treap = keys(&[(2, 2), (4, 4)]).into_iter().collect();
        let u = Treap::union(a, b);
        assert_eq!(u.to_vec(), vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
        u.check_invariants().unwrap();
    }

    #[test]
    fn difference_removes_intersection() {
        let a: Treap = keys(&[(1, 1), (2, 2), (3, 3), (4, 4)]).into_iter().collect();
        let b: Treap = keys(&[(2, 2), (4, 4), (9, 9)]).into_iter().collect();
        let d = Treap::difference(a, b);
        assert_eq!(d.to_vec(), vec![(1, 1), (3, 3)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn large_union_exercises_parallel_path() {
        let a: Treap = (0..20_000u32).map(|i| (i as u64 * 2, i)).collect();
        let b: Treap = (0..20_000u32).map(|i| (i as u64 * 2 + 1, i)).collect();
        let u = Treap::union(a, b);
        assert_eq!(u.len(), 40_000);
        u.check_invariants().unwrap();
        let v = u.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn large_difference_exercises_parallel_path() {
        let a: Treap = (0..20_000u32).map(|i| (i as u64, i)).collect();
        let b: Treap = (0..20_000u32).filter(|i| i % 2 == 0).map(|i| (i as u64, i)).collect();
        let d = Treap::difference(a, b);
        assert_eq!(d.len(), 10_000);
        assert!(d.to_vec().iter().all(|&(k, _)| k % 2 == 1));
        d.check_invariants().unwrap();
    }

    #[test]
    fn shape_is_content_deterministic() {
        // Same contents via different op orders -> same in-order vec and
        // same invariant-checked shape (priorities are content hashes).
        let mut a = Treap::new();
        for i in (0..100u32).rev() {
            a.insert((i as u64, i));
        }
        let b: Treap = (0..100u32).map(|i| (i as u64, i)).collect();
        assert_eq!(a.to_vec(), b.to_vec());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn arb_keys() -> impl Strategy<Value = Vec<Key>> {
        proptest::collection::vec((0u64..50, 0u32..10), 0..120)
    }

    proptest! {
        #[test]
        fn treap_matches_btreeset(ops in arb_keys(), removes in arb_keys()) {
            let mut t = Treap::new();
            let mut model: BTreeSet<Key> = BTreeSet::new();
            for k in ops {
                prop_assert_eq!(t.insert(k), model.insert(k));
            }
            for k in removes {
                prop_assert_eq!(t.remove(k), model.remove(&k));
            }
            prop_assert_eq!(t.to_vec(), model.iter().copied().collect::<Vec<_>>());
            prop_assert!(t.check_invariants().is_ok());
        }

        #[test]
        fn union_difference_are_set_ops(xs in arb_keys(), ys in arb_keys()) {
            let sx: BTreeSet<Key> = xs.iter().copied().collect();
            let sy: BTreeSet<Key> = ys.iter().copied().collect();
            let tx: Treap = sx.iter().copied().collect();
            let ty: Treap = sy.iter().copied().collect();
            let u = Treap::union(tx.clone(), ty.clone());
            prop_assert_eq!(u.to_vec(), sx.union(&sy).copied().collect::<Vec<_>>());
            prop_assert!(u.check_invariants().is_ok());
            let d = Treap::difference(tx, ty);
            prop_assert_eq!(d.to_vec(), sx.difference(&sy).copied().collect::<Vec<_>>());
            prop_assert!(d.check_invariants().is_ok());
        }

        #[test]
        fn split_partitions(xs in arb_keys(), d in 0u64..60) {
            let set: BTreeSet<Key> = xs.iter().copied().collect();
            let mut t: Treap = set.iter().copied().collect();
            let low = t.split_at_most(d);
            prop_assert!(low.to_vec().iter().all(|&(p, _)| p <= d));
            prop_assert!(t.to_vec().iter().all(|&(p, _)| p > d));
            prop_assert_eq!(low.len() + t.len(), set.len());
            prop_assert!(low.check_invariants().is_ok());
            prop_assert!(t.check_invariants().is_ok());
        }
    }
}
