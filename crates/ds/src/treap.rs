//! Join-based treap: the ordered set with `split` / `union` / `difference`
//! that Algorithm 2 keeps its fringe in.
//!
//! §3.3 of the paper stores tentative distances in two balanced BSTs —
//! `Q` keyed by `(δ(u), u)` and `R` keyed by `(δ(u) + r(u), u)` — and drives
//! each step with an extract-min on `R`, a `split` of `Q` at the round
//! distance, and batch `union`/`difference` against the relaxed vertices.
//! This module provides those operations on a size-augmented treap whose
//! priorities are a deterministic hash of the key, so equal sets always
//! have equal shapes and bulk operations can recurse structurally.
//! `union`/`difference` recurse in parallel (rayon) above a size threshold,
//! matching the `O(p log q)` work / polylog depth bounds quoted in §2.

use rayon::join;

/// Set element: `(primary, id)` — distance paired with vertex id.
pub type Key = (u64, u32);

/// Subtree size threshold above which union/difference recurse in parallel.
const PAR_THRESHOLD: u32 = 1 << 11;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic priority: a hash of the key, so the treap shape is a
/// function of its contents.
fn prio(key: Key) -> u64 {
    splitmix64(key.0 ^ (key.1 as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

#[derive(Debug, Clone)]
struct Node {
    key: Key,
    prio: u64,
    size: u32,
    left: Link,
    right: Link,
}

type Link = Option<Box<Node>>;

fn size(t: &Link) -> u32 {
    t.as_ref().map_or(0, |n| n.size)
}

fn rebuild(mut n: Box<Node>, left: Link, right: Link) -> Link {
    n.size = 1 + size(&left) + size(&right);
    n.left = left;
    n.right = right;
    Some(n)
}

/// Splits into `(keys < key, key present?, keys > key)`.
fn split3(t: Link, key: Key) -> (Link, bool, Link) {
    match t {
        None => (None, false, None),
        Some(mut n) => match key.cmp(&n.key) {
            std::cmp::Ordering::Less => {
                let left = n.left.take();
                let (ll, found, lr) = split3(left, key);
                let right = n.right.take();
                (ll, found, rebuild(n, lr, right))
            }
            std::cmp::Ordering::Greater => {
                let right = n.right.take();
                let (rl, found, rr) = split3(right, key);
                let left = n.left.take();
                (rebuild(n, left, rl), found, rr)
            }
            std::cmp::Ordering::Equal => (n.left.take(), true, n.right.take()),
        },
    }
}

/// Joins two treaps where every key in `l` precedes every key in `r`.
fn join2(l: Link, r: Link) -> Link {
    match (l, r) {
        (None, t) | (t, None) => t,
        (Some(mut l), Some(mut r)) => {
            if l.prio >= r.prio {
                let lr = l.right.take();
                let joined = join2(lr, Some(r));
                let ll = l.left.take();
                rebuild(l, ll, joined)
            } else {
                let rl = r.left.take();
                let joined = join2(Some(l), rl);
                let rr = r.right.take();
                rebuild(r, joined, rr)
            }
        }
    }
}

fn union_links(a: Link, b: Link) -> Link {
    match (a, b) {
        (None, t) | (t, None) => t,
        (Some(a), Some(b)) => {
            // Root the union at the higher-priority node; ties cannot occur
            // between distinct keys in a way that matters for correctness.
            let (mut top, other) = if a.prio >= b.prio { (a, Some(b)) } else { (b, Some(a)) };
            let (ol, _dup, or) = split3(other, top.key);
            let tl = top.left.take();
            let tr = top.right.take();
            let (l, r) = if size(&tl).max(size(&ol)) > PAR_THRESHOLD
                && size(&tr).max(size(&or)) > PAR_THRESHOLD
            {
                join(|| union_links(tl, ol), || union_links(tr, or))
            } else {
                (union_links(tl, ol), union_links(tr, or))
            };
            rebuild(top, l, r)
        }
    }
}

/// `a \ b`.
fn difference_links(a: Link, b: Link) -> Link {
    match (a, b) {
        (None, _) => None,
        (t, None) => t,
        (Some(mut a), b) => {
            let (bl, found, br) = split3(b, a.key);
            let al = a.left.take();
            let ar = a.right.take();
            let (l, r) = if size(&al).max(size(&bl)) > PAR_THRESHOLD
                && size(&ar).max(size(&br)) > PAR_THRESHOLD
            {
                join(|| difference_links(al, bl), || difference_links(ar, br))
            } else {
                (difference_links(al, bl), difference_links(ar, br))
            };
            if found {
                join2(l, r)
            } else {
                rebuild(a, l, r)
            }
        }
    }
}

/// Recycling pool of treap nodes, so batch workloads (one treap build per
/// radius-stepping substep, thousands per solve) stop hitting the global
/// allocator after warmup.
///
/// The arena-threaded operations ([`Treap::from_sorted_in`],
/// [`Treap::union_in`], [`Treap::difference_in`],
/// [`Treap::split_at_most_in`], [`TreapArena::recycle`]) draw every node
/// from — and release every discarded node back into — the pool. A fresh
/// box is minted only when the pool is empty, and [`TreapArena::created`]
/// counts exactly those mints, which is what
/// `rs_core::SolverScratch::return_treap_arena` keys its reuse flag on.
///
/// The arena requires exclusive access, so the arena-threaded set
/// operations recurse sequentially; the pool-less [`Treap::union`] /
/// [`Treap::difference`] keep the parallel recursion for one-shot use.
#[derive(Debug, Default)]
// The boxes ARE the pooled resource: treap links are `Option<Box<Node>>`,
// so only parked boxes can be handed back allocation-free (a `Vec<Node>`
// would re-box on every alloc).
#[allow(clippy::vec_box)]
pub struct TreapArena {
    free: Vec<Box<Node>>,
    /// Reusable traversal stacks ([`TreapArena::recycle`] and the
    /// `from_sorted_in` spine), kept here so recycling allocates nothing
    /// after warmup either.
    stack: Vec<Box<Node>>,
    spine: Vec<Box<Node>>,
    created: u64,
}

impl TreapArena {
    /// An empty pool; nodes materialise on demand.
    pub fn new() -> Self {
        TreapArena::default()
    }

    /// Nodes minted from the global allocator because the pool was empty —
    /// the "this solve had to allocate" signal. Never decreases.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Nodes currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Pre-mints nodes until the pool holds at least `n`, so a first solve
    /// can run allocation-free.
    pub fn reserve_nodes(&mut self, n: usize) {
        while self.free.len() < n {
            self.created += 1;
            self.free.push(Box::new(Node {
                key: (0, 0),
                prio: 0,
                size: 1,
                left: None,
                right: None,
            }));
        }
    }

    fn alloc(&mut self, key: Key) -> Box<Node> {
        match self.free.pop() {
            Some(mut n) => {
                debug_assert!(n.left.is_none() && n.right.is_none());
                n.key = key;
                n.prio = prio(key);
                n.size = 1;
                n
            }
            None => {
                self.created += 1;
                Box::new(Node { key, prio: prio(key), size: 1, left: None, right: None })
            }
        }
    }

    /// Parks a node whose children have already been detached.
    fn release(&mut self, n: Box<Node>) {
        debug_assert!(n.left.is_none() && n.right.is_none());
        self.free.push(n);
    }

    /// Dissolves a whole treap back into the pool (iteratively — no
    /// recursion-depth or per-node-drop cost beyond the walk itself).
    pub fn recycle(&mut self, t: Treap) {
        let mut stack = std::mem::take(&mut self.stack);
        debug_assert!(stack.is_empty());
        if let Some(root) = t.root {
            stack.push(root);
        }
        while let Some(mut n) = stack.pop() {
            if let Some(l) = n.left.take() {
                stack.push(l);
            }
            if let Some(r) = n.right.take() {
                stack.push(r);
            }
            self.free.push(n);
        }
        self.stack = stack;
    }
}

/// Splits into `(keys < key, key present?, keys > key)`, releasing a
/// matched node into the arena instead of dropping it.
fn split3_in(t: Link, key: Key, arena: &mut TreapArena) -> (Link, bool, Link) {
    match t {
        None => (None, false, None),
        Some(mut n) => match key.cmp(&n.key) {
            std::cmp::Ordering::Less => {
                let left = n.left.take();
                let (ll, found, lr) = split3_in(left, key, arena);
                let right = n.right.take();
                (ll, found, rebuild(n, lr, right))
            }
            std::cmp::Ordering::Greater => {
                let right = n.right.take();
                let (rl, found, rr) = split3_in(right, key, arena);
                let left = n.left.take();
                (rebuild(n, left, rl), found, rr)
            }
            std::cmp::Ordering::Equal => {
                let l = n.left.take();
                let r = n.right.take();
                arena.release(n);
                (l, true, r)
            }
        },
    }
}

/// [`union_links`] threading an arena (duplicate keys release the losing
/// node into the pool). Sequential: the pool needs exclusive access.
fn union_links_in(a: Link, b: Link, arena: &mut TreapArena) -> Link {
    match (a, b) {
        (None, t) | (t, None) => t,
        (Some(a), Some(b)) => {
            let (mut top, other) = if a.prio >= b.prio { (a, Some(b)) } else { (b, Some(a)) };
            let (ol, _dup, or) = split3_in(other, top.key, arena);
            let tl = top.left.take();
            let tr = top.right.take();
            let l = union_links_in(tl, ol, arena);
            let r = union_links_in(tr, or, arena);
            rebuild(top, l, r)
        }
    }
}

/// [`difference_links`] threading an arena: every removed element releases
/// both its `a`-side and `b`-side node into the pool.
fn difference_links_in(a: Link, b: Link, arena: &mut TreapArena) -> Link {
    match (a, b) {
        (None, b) => {
            if let Some(root) = b {
                arena.recycle(Treap { root: Some(root) });
            }
            None
        }
        (t, None) => t,
        (Some(mut a), b) => {
            let (bl, found, br) = split3_in(b, a.key, arena);
            let al = a.left.take();
            let ar = a.right.take();
            let l = difference_links_in(al, bl, arena);
            let r = difference_links_in(ar, br, arena);
            if found {
                arena.release(a);
                join2(l, r)
            } else {
                rebuild(a, l, r)
            }
        }
    }
}

/// Ordered set of [`Key`]s as a join-based treap.
#[derive(Debug, Clone, Default)]
pub struct Treap {
    root: Link,
}

impl Treap {
    /// The empty set.
    pub fn new() -> Self {
        Treap { root: None }
    }

    /// Builds from a strictly ascending key sequence in `O(n)` via the
    /// right-spine stack construction.
    pub fn from_sorted(keys: &[Key]) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be strictly ascending");
        let mut spine: Vec<Box<Node>> = Vec::new();
        for &key in keys {
            let mut carried: Link = None;
            while let Some(top) = spine.last() {
                if top.prio < prio(key) {
                    let mut popped = spine.pop().unwrap();
                    let left = carried.take();
                    // popped keeps its own left; carried attaches as right.
                    popped.right = left;
                    popped.size = 1 + size(&popped.left) + size(&popped.right);
                    carried = Some(popped);
                } else {
                    break;
                }
            }
            let node = Box::new(Node {
                key,
                prio: prio(key),
                size: 1 + carried.as_ref().map_or(0, |c| c.size),
                left: carried,
                right: None,
            });
            spine.push(node);
        }
        // Collapse the spine right-to-left.
        let mut carried: Link = None;
        while let Some(mut popped) = spine.pop() {
            popped.right = carried.take();
            popped.size = 1 + size(&popped.left) + size(&popped.right);
            carried = Some(popped);
        }
        Treap { root: carried }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        size(&self.root) as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Inserts `key`; returns `true` iff it was absent.
    pub fn insert(&mut self, key: Key) -> bool {
        let (l, found, r) = split3(self.root.take(), key);
        if found {
            // Rebuild unchanged (the key was already present).
            let node = Box::new(Node { key, prio: prio(key), size: 1, left: None, right: None });
            self.root = join2(join2(l, Some(node)), r);
            false
        } else {
            let node = Box::new(Node { key, prio: prio(key), size: 1, left: None, right: None });
            self.root = join2(join2(l, Some(node)), r);
            true
        }
    }

    /// Removes `key`; returns `true` iff it was present.
    pub fn remove(&mut self, key: Key) -> bool {
        let (l, found, r) = split3(self.root.take(), key);
        self.root = join2(l, r);
        found
    }

    /// Membership test.
    pub fn contains(&self, key: Key) -> bool {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => cur = &n.left,
                std::cmp::Ordering::Greater => cur = &n.right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Smallest element.
    pub fn min(&self) -> Option<Key> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = cur.left.as_ref() {
            cur = l;
        }
        Some(cur.key)
    }

    /// Removes and returns the smallest element.
    pub fn extract_min(&mut self) -> Option<Key> {
        let key = self.min()?;
        self.remove(key);
        Some(key)
    }

    /// Splits into `(elements with primary ≤ d, the rest)` — the paper's
    /// `Q.split(d_i)` selecting the step's active set.
    pub fn split_at_most(&mut self, d: u64) -> Treap {
        if d == u64::MAX {
            return Treap { root: self.root.take() };
        }
        let (l, found, r) = split3(self.root.take(), (d + 1, 0));
        self.root = if found {
            // A real element (d+1, 0) matched the split key; it belongs on
            // the "greater than d" side.
            let node = Box::new(Node {
                key: (d + 1, 0),
                prio: prio((d + 1, 0)),
                size: 1,
                left: None,
                right: None,
            });
            join2(Some(node), r)
        } else {
            r
        };
        Treap { root: l }
    }

    /// Set union (consumes both operands' structure).
    pub fn union(a: Treap, b: Treap) -> Treap {
        Treap { root: union_links(a.root, b.root) }
    }

    /// Set difference `a \ b`.
    pub fn difference(a: Treap, b: Treap) -> Treap {
        Treap { root: difference_links(a.root, b.root) }
    }

    /// [`Treap::from_sorted`] drawing every node from `arena` — the batch
    /// build the BST engine performs once per substep, allocation-free
    /// after warmup.
    pub fn from_sorted_in(keys: &[Key], arena: &mut TreapArena) -> Treap {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be strictly ascending");
        let mut spine = std::mem::take(&mut arena.spine);
        debug_assert!(spine.is_empty());
        for &key in keys {
            let mut carried: Link = None;
            while let Some(top) = spine.last() {
                if top.prio < prio(key) {
                    let mut popped = spine.pop().unwrap();
                    popped.right = carried.take();
                    popped.size = 1 + size(&popped.left) + size(&popped.right);
                    carried = Some(popped);
                } else {
                    break;
                }
            }
            let mut node = arena.alloc(key);
            node.size = 1 + carried.as_ref().map_or(0, |c| c.size);
            node.left = carried;
            spine.push(node);
        }
        let mut carried: Link = None;
        while let Some(mut popped) = spine.pop() {
            popped.right = carried.take();
            popped.size = 1 + size(&popped.left) + size(&popped.right);
            carried = Some(popped);
        }
        arena.spine = spine;
        Treap { root: carried }
    }

    /// [`Treap::union`] releasing duplicate-key nodes into `arena`.
    /// Sequential (the pool needs exclusive access); use the pool-less
    /// [`Treap::union`] when parallel recursion matters more than reuse.
    pub fn union_in(a: Treap, b: Treap, arena: &mut TreapArena) -> Treap {
        Treap { root: union_links_in(a.root, b.root, arena) }
    }

    /// [`Treap::difference`] releasing every removed node into `arena`.
    pub fn difference_in(a: Treap, b: Treap, arena: &mut TreapArena) -> Treap {
        Treap { root: difference_links_in(a.root, b.root, arena) }
    }

    /// [`Treap::split_at_most`] whose (rare) sentinel-collision rebuild
    /// draws from and releases into `arena`.
    pub fn split_at_most_in(&mut self, d: u64, arena: &mut TreapArena) -> Treap {
        if d == u64::MAX {
            return Treap { root: self.root.take() };
        }
        let (l, found, r) = split3_in(self.root.take(), (d + 1, 0), arena);
        self.root = if found {
            let node = arena.alloc((d + 1, 0));
            join2(Some(node), r)
        } else {
            r
        };
        Treap { root: l }
    }

    /// In-order traversal without materialising a vector (the engine's
    /// active-set extraction on reused buffers).
    pub fn for_each(&self, mut f: impl FnMut(Key)) {
        fn walk(t: &Link, f: &mut impl FnMut(Key)) {
            if let Some(n) = t {
                walk(&n.left, f);
                f(n.key);
                walk(&n.right, f);
            }
        }
        walk(&self.root, &mut f);
    }

    /// In-order contents.
    pub fn to_vec(&self) -> Vec<Key> {
        fn walk(t: &Link, out: &mut Vec<Key>) {
            if let Some(n) = t {
                walk(&n.left, out);
                out.push(n.key);
                walk(&n.right, out);
            }
        }
        let mut out = Vec::with_capacity(self.len());
        walk(&self.root, &mut out);
        out
    }

    /// Verifies BST order, heap priority and size augmentation; test aid.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk(t: &Link, lo: Option<Key>, hi: Option<Key>) -> Result<u32, String> {
            match t {
                None => Ok(0),
                Some(n) => {
                    if let Some(lo) = lo {
                        if n.key <= lo {
                            return Err(format!("BST order violated at {:?}", n.key));
                        }
                    }
                    if let Some(hi) = hi {
                        if n.key >= hi {
                            return Err(format!("BST order violated at {:?}", n.key));
                        }
                    }
                    if n.prio != prio(n.key) {
                        return Err("priority not hash of key".into());
                    }
                    for c in [&n.left, &n.right].into_iter().flatten() {
                        if c.prio > n.prio {
                            return Err("heap property violated".into());
                        }
                    }
                    let ls = walk(&n.left, lo, Some(n.key))?;
                    let rs = walk(&n.right, Some(n.key), hi)?;
                    if n.size != 1 + ls + rs {
                        return Err(format!("size wrong at {:?}", n.key));
                    }
                    Ok(n.size)
                }
            }
        }
        walk(&self.root, None, None).map(|_| ())
    }
}

impl FromIterator<Key> for Treap {
    fn from_iter<I: IntoIterator<Item = Key>>(iter: I) -> Self {
        let mut keys: Vec<Key> = iter.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        Treap::from_sorted(&keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(xs: &[(u64, u32)]) -> Vec<Key> {
        xs.to_vec()
    }

    #[test]
    fn insert_remove_contains() {
        let mut t = Treap::new();
        assert!(t.insert((5, 0)));
        assert!(t.insert((3, 1)));
        assert!(!t.insert((5, 0)), "duplicate insert");
        assert_eq!(t.len(), 2);
        assert!(t.contains((3, 1)));
        assert!(!t.contains((3, 2)));
        assert!(t.remove((3, 1)));
        assert!(!t.remove((3, 1)));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn min_and_extract() {
        let mut t: Treap = [(9, 1), (2, 5), (2, 3), (7, 0)].into_iter().collect();
        assert_eq!(t.min(), Some((2, 3)), "ties broken by id");
        assert_eq!(t.extract_min(), Some((2, 3)));
        assert_eq!(t.extract_min(), Some((2, 5)));
        assert_eq!(t.extract_min(), Some((7, 0)));
        assert_eq!(t.extract_min(), Some((9, 1)));
        assert_eq!(t.extract_min(), None);
    }

    #[test]
    fn from_sorted_matches_inserts() {
        let ks: Vec<Key> = (0..500u32).map(|i| ((i as u64 * 37) % 1000, i)).collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        let bulk = Treap::from_sorted(&sorted);
        bulk.check_invariants().unwrap();
        let mut incremental = Treap::new();
        for &k in &ks {
            incremental.insert(k);
        }
        incremental.check_invariants().unwrap();
        assert_eq!(bulk.to_vec(), incremental.to_vec());
        assert_eq!(bulk.len(), 500);
    }

    #[test]
    fn split_at_most_partitions_by_distance() {
        let t: Treap = keys(&[(1, 0), (3, 1), (3, 9), (5, 2), (8, 3)]).into_iter().collect();
        let mut rest = t;
        let low = rest.split_at_most(3);
        assert_eq!(low.to_vec(), vec![(1, 0), (3, 1), (3, 9)]);
        assert_eq!(rest.to_vec(), vec![(5, 2), (8, 3)]);
        low.check_invariants().unwrap();
        rest.check_invariants().unwrap();
        // Split at MAX takes everything.
        let mut rest2 = low;
        let all = rest2.split_at_most(u64::MAX);
        assert!(rest2.is_empty());
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn split_at_most_with_element_at_sentinel_key() {
        // An element whose key equals the internal sentinel (d+1, 0) must
        // land on the "greater" side.
        let mut t: Treap = keys(&[(3, 0), (4, 0), (5, 0)]).into_iter().collect();
        let low = t.split_at_most(3);
        assert_eq!(low.to_vec(), vec![(3, 0)]);
        assert_eq!(t.to_vec(), vec![(4, 0), (5, 0)]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn union_merges_and_dedups() {
        let a: Treap = keys(&[(1, 1), (2, 2), (3, 3)]).into_iter().collect();
        let b: Treap = keys(&[(2, 2), (4, 4)]).into_iter().collect();
        let u = Treap::union(a, b);
        assert_eq!(u.to_vec(), vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
        u.check_invariants().unwrap();
    }

    #[test]
    fn difference_removes_intersection() {
        let a: Treap = keys(&[(1, 1), (2, 2), (3, 3), (4, 4)]).into_iter().collect();
        let b: Treap = keys(&[(2, 2), (4, 4), (9, 9)]).into_iter().collect();
        let d = Treap::difference(a, b);
        assert_eq!(d.to_vec(), vec![(1, 1), (3, 3)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn large_union_exercises_parallel_path() {
        let a: Treap = (0..20_000u32).map(|i| (i as u64 * 2, i)).collect();
        let b: Treap = (0..20_000u32).map(|i| (i as u64 * 2 + 1, i)).collect();
        let u = Treap::union(a, b);
        assert_eq!(u.len(), 40_000);
        u.check_invariants().unwrap();
        let v = u.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn large_difference_exercises_parallel_path() {
        let a: Treap = (0..20_000u32).map(|i| (i as u64, i)).collect();
        let b: Treap = (0..20_000u32).filter(|i| i % 2 == 0).map(|i| (i as u64, i)).collect();
        let d = Treap::difference(a, b);
        assert_eq!(d.len(), 10_000);
        assert!(d.to_vec().iter().all(|&(k, _)| k % 2 == 1));
        d.check_invariants().unwrap();
    }

    #[test]
    fn arena_ops_match_plain_ops() {
        let mut arena = TreapArena::new();
        let xs: Vec<Key> = (0..300u32).map(|i| ((i as u64 * 7) % 400, i)).collect();
        let ys: Vec<Key> = (0..300u32).map(|i| ((i as u64 * 11) % 400, i)).collect();
        let mut sx = xs.clone();
        sx.sort_unstable();
        let mut sy = ys.clone();
        sy.sort_unstable();

        let ax = Treap::from_sorted_in(&sx, &mut arena);
        let ay = Treap::from_sorted_in(&sy, &mut arena);
        ax.check_invariants().unwrap();
        assert_eq!(ax.to_vec(), Treap::from_sorted(&sx).to_vec());

        let au = Treap::union_in(ax, ay, &mut arena);
        let pu = Treap::union(Treap::from_sorted(&sx), Treap::from_sorted(&sy));
        assert_eq!(au.to_vec(), pu.to_vec());
        au.check_invariants().unwrap();

        let ad = Treap::difference_in(au, Treap::from_sorted_in(&sy, &mut arena), &mut arena);
        let pd = Treap::difference(pu, Treap::from_sorted(&sy));
        assert_eq!(ad.to_vec(), pd.to_vec());
        ad.check_invariants().unwrap();
        arena.recycle(ad);
    }

    #[test]
    fn arena_split_matches_plain_split() {
        let mut arena = TreapArena::new();
        let keys: Vec<Key> = vec![(1, 0), (3, 1), (4, 0), (5, 2), (8, 3)];
        let mut a = Treap::from_sorted_in(&keys, &mut arena);
        let mut p = Treap::from_sorted(&keys);
        // d = 3 exercises the sentinel-collision case ((4, 0) is a real
        // element equal to the internal split key).
        let la = a.split_at_most_in(3, &mut arena);
        let lp = p.split_at_most(3);
        assert_eq!(la.to_vec(), lp.to_vec());
        assert_eq!(a.to_vec(), p.to_vec());
        a.check_invariants().unwrap();
        arena.recycle(a);
        arena.recycle(la);
    }

    #[test]
    fn arena_stops_minting_after_warmup() {
        let mut arena = TreapArena::new();
        let keys: Vec<Key> = (0..500u32).map(|i| (i as u64, i)).collect();
        // "Solve" 1: build, tear apart, recycle everything.
        let a = Treap::from_sorted_in(&keys, &mut arena);
        let b = Treap::from_sorted_in(
            &keys.iter().map(|&(d, v)| (d + 500, v)).collect::<Vec<_>>(),
            &mut arena,
        );
        let u = Treap::union_in(a, b, &mut arena);
        assert_eq!(u.len(), 1000);
        arena.recycle(u);
        let minted = arena.created();
        assert_eq!(minted, 1000);
        assert_eq!(arena.pooled(), 1000);

        // "Solve" 2 with the same shape must mint nothing new.
        let a = Treap::from_sorted_in(&keys, &mut arena);
        let removals = Treap::from_sorted_in(&keys[..250], &mut arena);
        let d = Treap::difference_in(a, removals, &mut arena);
        assert_eq!(d.len(), 250);
        assert_eq!(
            d.to_vec(),
            Treap::from_sorted(&keys[250..]).to_vec(),
            "arena difference must be a set difference"
        );
        arena.recycle(d);
        assert_eq!(arena.created(), minted, "warm solve minted fresh nodes");
        assert_eq!(arena.pooled(), 1000, "every node returned to the pool");
    }

    #[test]
    fn arena_for_each_is_in_order() {
        let mut arena = TreapArena::new();
        arena.reserve_nodes(64);
        let created = arena.created();
        let keys: Vec<Key> = (0..64u32).map(|i| ((i as u64 * 13) % 97, i)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let t = Treap::from_sorted_in(&sorted, &mut arena);
        assert_eq!(arena.created(), created, "reserve_nodes prewarms the pool");
        let mut seen = Vec::new();
        t.for_each(|k| seen.push(k));
        assert_eq!(seen, t.to_vec());
        arena.recycle(t);
    }

    #[test]
    fn shape_is_content_deterministic() {
        // Same contents via different op orders -> same in-order vec and
        // same invariant-checked shape (priorities are content hashes).
        let mut a = Treap::new();
        for i in (0..100u32).rev() {
            a.insert((i as u64, i));
        }
        let b: Treap = (0..100u32).map(|i| (i as u64, i)).collect();
        assert_eq!(a.to_vec(), b.to_vec());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn arb_keys() -> impl Strategy<Value = Vec<Key>> {
        proptest::collection::vec((0u64..50, 0u32..10), 0..120)
    }

    proptest! {
        #[test]
        fn treap_matches_btreeset(ops in arb_keys(), removes in arb_keys()) {
            let mut t = Treap::new();
            let mut model: BTreeSet<Key> = BTreeSet::new();
            for k in ops {
                prop_assert_eq!(t.insert(k), model.insert(k));
            }
            for k in removes {
                prop_assert_eq!(t.remove(k), model.remove(&k));
            }
            prop_assert_eq!(t.to_vec(), model.iter().copied().collect::<Vec<_>>());
            prop_assert!(t.check_invariants().is_ok());
        }

        #[test]
        fn union_difference_are_set_ops(xs in arb_keys(), ys in arb_keys()) {
            let sx: BTreeSet<Key> = xs.iter().copied().collect();
            let sy: BTreeSet<Key> = ys.iter().copied().collect();
            let tx: Treap = sx.iter().copied().collect();
            let ty: Treap = sy.iter().copied().collect();
            let u = Treap::union(tx.clone(), ty.clone());
            prop_assert_eq!(u.to_vec(), sx.union(&sy).copied().collect::<Vec<_>>());
            prop_assert!(u.check_invariants().is_ok());
            let d = Treap::difference(tx, ty);
            prop_assert_eq!(d.to_vec(), sx.difference(&sy).copied().collect::<Vec<_>>());
            prop_assert!(d.check_invariants().is_ok());
        }

        #[test]
        fn split_partitions(xs in arb_keys(), d in 0u64..60) {
            let set: BTreeSet<Key> = xs.iter().copied().collect();
            let mut t: Treap = set.iter().copied().collect();
            let low = t.split_at_most(d);
            prop_assert!(low.to_vec().iter().all(|&(p, _)| p <= d));
            prop_assert!(t.to_vec().iter().all(|&(p, _)| p > d));
            prop_assert_eq!(low.len() + t.len(), set.len());
            prop_assert!(low.check_invariants().is_ok());
            prop_assert!(t.check_invariants().is_ok());
        }
    }
}
