//! Fixed-bucket latency histogram for serving telemetry.
//!
//! The serving layer (`rs_serve`) tracks per-lane latency SLOs — p50 /
//! p95 / p99 over millions of requests — and cannot afford to store
//! samples. [`LatencyHistogram`] is the classic fixed-footprint answer:
//! 64 power-of-two buckets over `u64` sample values (microseconds, by
//! convention), so `record` is a leading-zeros instruction plus one
//! counter increment, quantiles are one O(64) scan, and two histograms
//! merge bucket-wise (per-worker histograms fold into a lane total).
//!
//! Resolution is the power-of-two bracket: a reported quantile is the
//! *upper bound* of its sample's bucket, i.e. within 2× of the true
//! sample — the right trade for SLO monitoring, where orders of
//! magnitude matter and a fixed 512-byte footprint beats exactness.

/// Fixed-footprint histogram over `u64` samples with power-of-two
/// buckets. Bucket `i` holds samples whose value needs `i` significant
/// bits: bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2, 3}, bucket 3 =
/// {4..=7}, … — 65 buckets cover the whole `u64` range.
///
/// ```
/// use rs_ds::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for us in [120, 130, 140, 900, 9_000] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.p50() >= 120 && h.p50() <= 255, "p50 within its 2^k bracket");
/// assert!(h.p99() >= 9_000 && h.p99() <= 16_383);
/// assert_eq!(h.max(), 9_000, "min/max are tracked exactly");
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples with `i` significant bits.
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (fixed footprint, never allocates).
    pub const fn new() -> Self {
        LatencyHistogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Index of the bucket holding `value`: its significant-bit count.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`2^i − 1`).
    #[inline]
    fn bucket_upper(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample. O(1), no allocation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `⌈q·count⌉`-th smallest sample, clamped to the
    /// exact recorded `max` (so `quantile(1.0) == max()`). Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (bucket-resolution; see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket-resolution).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` bucket-wise (per-worker histograms into
    /// a lane total). Exact: equivalent to having recorded both sample
    /// streams into one histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to the empty state (footprint kept — there is nothing to
    /// free).
    pub fn clear(&mut self) {
        *self = LatencyHistogram::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(7), 3);
        assert_eq!(LatencyHistogram::bucket_of(8), 4);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LatencyHistogram::bucket_upper(0), 0);
        assert_eq!(LatencyHistogram::bucket_upper(3), 7);
        assert_eq!(LatencyHistogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_within_two_x() {
        // Every reported quantile must bracket the true sample: at most
        // 2× above, never below the bucket's lower bound.
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| (i * i) % 10_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for (q, _) in [(0.5, 0), (0.95, 0), (0.99, 0), (1.0, 0)] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let got = h.quantile(q);
            assert!(got >= truth, "q{q}: reported {got} below true sample {truth}");
            assert!(got <= truth.max(1) * 2, "q{q}: reported {got} above 2x true {truth}");
        }
        assert_eq!(h.quantile(1.0), *samples.last().unwrap(), "q1.0 is the exact max");
    }

    #[test]
    fn single_sample_quantiles_are_exactish() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1_000);
        assert_eq!(h.max(), 1_000);
        // All quantiles clamp into [min, max] = the sample itself.
        assert_eq!(h.p50(), 1_000);
        assert_eq!(h.p99(), 1_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 4096;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(7);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn mean_and_sum() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.sum(), 60);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }
}
