//! Fibonacci heap with decrease-key.
//!
//! The structure Lemma 4.2 specifies for the truncated-Dijkstra
//! preprocessing: `O(1)` amortised insert/decrease-key, `O(log n)` amortised
//! pop-min, via lazy root lists, degree-bucket consolidation, and cascading
//! cuts. Arena-allocated with circular doubly-linked sibling lists.

use crate::DecreaseKeyHeap;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    item: u32,
    parent: u32,
    child: u32,
    /// Circular doubly-linked siblings.
    left: u32,
    right: u32,
    degree: u32,
    marked: bool,
}

/// Fibonacci min-heap over items `0..capacity`.
#[derive(Debug, Clone)]
pub struct FibonacciHeap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    slot: Vec<u32>,
    min: u32,
    len: usize,
    /// Scratch for consolidation, reused across pops.
    degree_buckets: Vec<u32>,
}

impl FibonacciHeap {
    fn alloc(&mut self, key: u64, item: u32) -> u32 {
        let node = Node {
            key,
            item,
            parent: NONE,
            child: NONE,
            left: NONE,
            right: NONE,
            degree: 0,
            marked: false,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Splices `x` (a detached node) into the circular list containing `at`.
    fn splice_into(&mut self, at: u32, x: u32) {
        let right = self.nodes[at as usize].right;
        self.nodes[x as usize].left = at;
        self.nodes[x as usize].right = right;
        self.nodes[at as usize].right = x;
        self.nodes[right as usize].left = x;
    }

    /// Removes `x` from its circular list; returns some other member or
    /// `NONE` if the list becomes empty.
    fn unsplice(&mut self, x: u32) -> u32 {
        let (l, r) = (self.nodes[x as usize].left, self.nodes[x as usize].right);
        if l == x {
            return NONE;
        }
        self.nodes[l as usize].right = r;
        self.nodes[r as usize].left = l;
        r
    }

    fn make_singleton_list(&mut self, x: u32) {
        self.nodes[x as usize].left = x;
        self.nodes[x as usize].right = x;
    }

    /// Adds `x` to the root list and fixes the min pointer.
    fn add_root(&mut self, x: u32) {
        self.nodes[x as usize].parent = NONE;
        if self.min == NONE {
            self.make_singleton_list(x);
            self.min = x;
        } else {
            self.splice_into(self.min, x);
            if self.nodes[x as usize].key < self.nodes[self.min as usize].key {
                self.min = x;
            }
        }
    }

    /// Links root `y` under root `x` (precondition: `key(x) <= key(y)`).
    fn link(&mut self, x: u32, y: u32) {
        debug_assert!(self.nodes[x as usize].key <= self.nodes[y as usize].key);
        self.nodes[y as usize].parent = x;
        self.nodes[y as usize].marked = false;
        let child = self.nodes[x as usize].child;
        if child == NONE {
            self.make_singleton_list(y);
            self.nodes[x as usize].child = y;
        } else {
            self.splice_into(child, y);
        }
        self.nodes[x as usize].degree += 1;
    }

    fn consolidate(&mut self, start: u32) {
        // Collect current roots (the circular list through `start`).
        let mut roots = Vec::new();
        let mut cur = start;
        loop {
            roots.push(cur);
            cur = self.nodes[cur as usize].right;
            if cur == start {
                break;
            }
        }
        let max_degree = (usize::BITS - (self.len.max(1)).leading_zeros()) as usize + 2;
        self.degree_buckets.clear();
        self.degree_buckets.resize(max_degree * 2, NONE);
        for mut x in roots {
            loop {
                let d = self.nodes[x as usize].degree as usize;
                let other = self.degree_buckets[d];
                if other == NONE {
                    self.degree_buckets[d] = x;
                    break;
                }
                self.degree_buckets[d] = NONE;
                let (a, b) = if self.nodes[x as usize].key <= self.nodes[other as usize].key {
                    (x, other)
                } else {
                    (other, x)
                };
                self.link(a, b);
                x = a;
            }
        }
        // Rebuild the root list from the buckets.
        self.min = NONE;
        let buckets = std::mem::take(&mut self.degree_buckets);
        for &r in buckets.iter().filter(|&&r| r != NONE) {
            self.add_root(r);
        }
        self.degree_buckets = buckets;
    }

    /// Cuts `x` from its parent and moves it to the root list, cascading.
    fn cut_cascading(&mut self, mut x: u32) {
        loop {
            let parent = self.nodes[x as usize].parent;
            debug_assert!(parent != NONE);
            // Remove x from parent's child list.
            let remaining = self.unsplice(x);
            if self.nodes[parent as usize].child == x {
                self.nodes[parent as usize].child = remaining;
            }
            self.nodes[parent as usize].degree -= 1;
            self.nodes[x as usize].marked = false;
            self.add_root(x);
            // Cascade.
            if self.nodes[parent as usize].parent == NONE {
                break;
            }
            if !self.nodes[parent as usize].marked {
                self.nodes[parent as usize].marked = true;
                break;
            }
            x = parent;
        }
    }
}

impl DecreaseKeyHeap for FibonacciHeap {
    fn with_capacity(capacity: usize) -> Self {
        FibonacciHeap {
            nodes: Vec::new(),
            free: Vec::new(),
            slot: vec![NONE; capacity],
            min: NONE,
            len: 0,
            degree_buckets: Vec::new(),
        }
    }

    fn capacity(&self) -> usize {
        self.slot.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push_or_decrease(&mut self, item: u32, key: u64) -> bool {
        match self.slot[item as usize] {
            NONE => {
                let idx = self.alloc(key, item);
                self.slot[item as usize] = idx;
                self.add_root(idx);
                self.len += 1;
                true
            }
            idx => {
                if self.nodes[idx as usize].key <= key {
                    return false;
                }
                self.nodes[idx as usize].key = key;
                let parent = self.nodes[idx as usize].parent;
                if parent != NONE && self.nodes[parent as usize].key > key {
                    self.cut_cascading(idx);
                } else if parent == NONE && key < self.nodes[self.min as usize].key {
                    self.min = idx;
                }
                true
            }
        }
    }

    fn pop_min(&mut self) -> Option<(u32, u64)> {
        if self.min == NONE {
            return None;
        }
        let z = self.min;
        let Node { key, item, child, .. } = self.nodes[z as usize];
        // Promote children to the root list.
        if child != NONE {
            let mut c = child;
            loop {
                let next = self.nodes[c as usize].right;
                self.nodes[c as usize].parent = NONE;
                c = next;
                if c == child {
                    break;
                }
            }
            // Splice the whole child ring into the root ring next to z.
            let z_right = self.nodes[z as usize].right;
            let child_left = self.nodes[child as usize].left;
            self.nodes[z as usize].right = child;
            self.nodes[child as usize].left = z;
            self.nodes[child_left as usize].right = z_right;
            self.nodes[z_right as usize].left = child_left;
        }
        let remaining = self.unsplice(z);
        self.slot[item as usize] = NONE;
        self.free.push(z);
        self.len -= 1;
        if remaining == NONE {
            self.min = NONE;
        } else {
            self.consolidate(remaining);
        }
        Some((item, key))
    }

    fn peek_min(&self) -> Option<(u32, u64)> {
        match self.min {
            NONE => None,
            idx => {
                let node = &self.nodes[idx as usize];
                Some((node.item, node.key))
            }
        }
    }

    fn key_of(&self, item: u32) -> Option<u64> {
        match self.slot[item as usize] {
            NONE => None,
            idx => Some(self.nodes[idx as usize].key),
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.slot.fill(NONE);
        self.min = NONE;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap_test_support::*;

    #[test]
    fn basic_order() {
        let mut h = FibonacciHeap::with_capacity(5);
        for (i, k) in [(0u32, 50u64), (1, 20), (2, 40), (3, 10), (4, 30)] {
            assert!(h.push_or_decrease(i, k));
        }
        let drained: Vec<(u32, u64)> = std::iter::from_fn(|| h.pop_min()).collect();
        assert_eq!(drained, vec![(3, 10), (1, 20), (4, 30), (2, 40), (0, 50)]);
    }

    #[test]
    fn decrease_triggers_cascading_cuts() {
        let mut h = FibonacciHeap::with_capacity(64);
        // Build structure: push many, pop one to force consolidation into
        // multi-level trees, then repeatedly decrease deep nodes.
        for i in 0..64u32 {
            h.push_or_decrease(i, 1000 + i as u64);
        }
        assert_eq!(h.pop_min().unwrap().0, 0);
        for i in (32..64u32).rev() {
            assert!(h.push_or_decrease(i, i as u64));
        }
        let mut last = 0;
        let mut count = 0;
        while let Some((_, k)) = h.pop_min() {
            assert!(k >= last);
            last = k;
            count += 1;
        }
        assert_eq!(count, 63);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut h = FibonacciHeap::with_capacity(100);
        for round in 0..10u64 {
            for i in 0..10u32 {
                h.push_or_decrease(round as u32 * 10 + i, (i as u64 + round) % 7 + round);
            }
            let (_, k) = h.pop_min().unwrap();
            assert!(k <= h.pop_min().map(|(_, k2)| k2).unwrap_or(u64::MAX) || h.is_empty());
        }
        assert_eq!(h.len(), 80);
    }

    #[test]
    fn clear_reuse_matches_fresh_heap() {
        run_clear_reuse::<FibonacciHeap>(24, 80);
    }

    #[test]
    fn clear_keeps_arena_allocation() {
        let mut h = FibonacciHeap::with_capacity(64);
        for i in 0..64u32 {
            h.push_or_decrease(i, i as u64);
        }
        h.pop_min(); // force consolidation structure before clearing
        let cap = h.nodes.capacity();
        h.clear();
        assert_eq!(h.capacity(), 64);
        assert_eq!(h.nodes.capacity(), cap, "clear must not release the node arena");
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn model_battery() {
        run_model_battery::<FibonacciHeap>(20, 4000, 50);
        run_model_battery::<FibonacciHeap>(21, 4000, 5);
    }

    #[test]
    fn heapsort() {
        run_heapsort::<FibonacciHeap>(22, 2000);
    }

    #[test]
    fn decrease_storm() {
        run_decrease_storm::<FibonacciHeap>(23, 300, 5000);
    }
}
