//! Pairing heap with decrease-key.
//!
//! Arena-allocated multiway tree with the classic two-pass pairing on
//! `pop_min` and cut-and-meld on decrease-key. `O(1)` meld/insert,
//! `O(log n)` amortised pop, `o(log n)` amortised decrease-key — the usual
//! practical alternative to Fibonacci heaps.

use crate::DecreaseKeyHeap;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    item: u32,
    /// First child, or `NONE`.
    child: u32,
    /// Next sibling, or `NONE`.
    sibling: u32,
    /// Parent if first child, else previous sibling; `NONE` at the root.
    prev: u32,
}

/// Pairing min-heap over items `0..capacity`.
#[derive(Debug, Clone)]
pub struct PairingHeap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// `slot[item]` = arena index, or `NONE`.
    slot: Vec<u32>,
    root: u32,
    len: usize,
}

impl PairingHeap {
    /// Melds two non-`NONE` roots; returns the new root.
    fn meld(&mut self, a: u32, b: u32) -> u32 {
        debug_assert!(a != NONE && b != NONE);
        let (winner, loser) =
            if self.nodes[a as usize].key <= self.nodes[b as usize].key { (a, b) } else { (b, a) };
        // Attach loser as first child of winner.
        let old_child = self.nodes[winner as usize].child;
        self.nodes[loser as usize].sibling = old_child;
        self.nodes[loser as usize].prev = winner;
        if old_child != NONE {
            self.nodes[old_child as usize].prev = loser;
        }
        self.nodes[winner as usize].child = loser;
        self.nodes[winner as usize].prev = NONE;
        self.nodes[winner as usize].sibling = NONE;
        winner
    }

    /// Detaches node `x` (not the root) from its parent's child list.
    fn cut(&mut self, x: u32) {
        let prev = self.nodes[x as usize].prev;
        let sib = self.nodes[x as usize].sibling;
        debug_assert!(prev != NONE);
        if self.nodes[prev as usize].child == x {
            self.nodes[prev as usize].child = sib;
        } else {
            self.nodes[prev as usize].sibling = sib;
        }
        if sib != NONE {
            self.nodes[sib as usize].prev = prev;
        }
        self.nodes[x as usize].prev = NONE;
        self.nodes[x as usize].sibling = NONE;
    }

    /// Two-pass pairing of a child list; returns new root or `NONE`.
    fn combine_siblings(&mut self, first: u32) -> u32 {
        if first == NONE {
            return NONE;
        }
        // Pass 1: pair up left to right.
        let mut pairs: Vec<u32> = Vec::new();
        let mut cur = first;
        while cur != NONE {
            let next = self.nodes[cur as usize].sibling;
            if next == NONE {
                self.nodes[cur as usize].prev = NONE;
                self.nodes[cur as usize].sibling = NONE;
                pairs.push(cur);
                break;
            }
            let after = self.nodes[next as usize].sibling;
            // Detach both before melding.
            for x in [cur, next] {
                self.nodes[x as usize].prev = NONE;
                self.nodes[x as usize].sibling = NONE;
            }
            pairs.push(self.meld(cur, next));
            cur = after;
        }
        // Pass 2: meld right to left.
        let mut root = pairs.pop().unwrap();
        while let Some(p) = pairs.pop() {
            root = self.meld(p, root);
        }
        root
    }
}

impl DecreaseKeyHeap for PairingHeap {
    fn with_capacity(capacity: usize) -> Self {
        PairingHeap {
            nodes: Vec::new(),
            free: Vec::new(),
            slot: vec![NONE; capacity],
            root: NONE,
            len: 0,
        }
    }

    fn capacity(&self) -> usize {
        self.slot.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push_or_decrease(&mut self, item: u32, key: u64) -> bool {
        match self.slot[item as usize] {
            NONE => {
                let node = Node { key, item, child: NONE, sibling: NONE, prev: NONE };
                let idx = match self.free.pop() {
                    Some(i) => {
                        self.nodes[i as usize] = node;
                        i
                    }
                    None => {
                        self.nodes.push(node);
                        (self.nodes.len() - 1) as u32
                    }
                };
                self.slot[item as usize] = idx;
                self.root = if self.root == NONE { idx } else { self.meld(self.root, idx) };
                self.len += 1;
                true
            }
            idx => {
                if self.nodes[idx as usize].key <= key {
                    return false;
                }
                self.nodes[idx as usize].key = key;
                if idx != self.root {
                    self.cut(idx);
                    self.root = self.meld(self.root, idx);
                }
                true
            }
        }
    }

    fn pop_min(&mut self) -> Option<(u32, u64)> {
        if self.root == NONE {
            return None;
        }
        let root = self.root;
        let Node { key, item, child, .. } = self.nodes[root as usize];
        self.root = self.combine_siblings(child);
        self.slot[item as usize] = NONE;
        self.free.push(root);
        self.len -= 1;
        Some((item, key))
    }

    fn peek_min(&self) -> Option<(u32, u64)> {
        match self.root {
            NONE => None,
            idx => {
                let node = &self.nodes[idx as usize];
                Some((node.item, node.key))
            }
        }
    }

    fn key_of(&self, item: u32) -> Option<u64> {
        match self.slot[item as usize] {
            NONE => None,
            idx => Some(self.nodes[idx as usize].key),
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.slot.fill(NONE);
        self.root = NONE;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap_test_support::*;

    #[test]
    fn basic_order() {
        let mut h = PairingHeap::with_capacity(5);
        for (i, k) in [(0u32, 50u64), (1, 20), (2, 40), (3, 10), (4, 30)] {
            assert!(h.push_or_decrease(i, k));
        }
        let drained: Vec<(u32, u64)> = std::iter::from_fn(|| h.pop_min()).collect();
        assert_eq!(drained, vec![(3, 10), (1, 20), (4, 30), (2, 40), (0, 50)]);
    }

    #[test]
    fn decrease_root_and_deep_node() {
        let mut h = PairingHeap::with_capacity(8);
        for i in 0..8u32 {
            h.push_or_decrease(i, 100 + i as u64);
        }
        // Decrease the root's key further (root path: no cut needed).
        assert!(h.push_or_decrease(0, 5));
        // Force tree restructuring, then decrease a deep node below the min.
        assert_eq!(h.pop_min(), Some((0, 5)));
        assert!(h.push_or_decrease(7, 1));
        assert_eq!(h.pop_min(), Some((7, 1)));
    }

    #[test]
    fn arena_reuse_after_pop() {
        let mut h = PairingHeap::with_capacity(3);
        h.push_or_decrease(0, 1);
        h.pop_min();
        h.push_or_decrease(1, 2);
        h.push_or_decrease(2, 3);
        // Arena should have reused the freed slot: 2 live nodes, ≤ 2 allocations...
        assert_eq!(h.nodes.len(), 2, "freed node must be reused");
        assert_eq!(h.pop_min(), Some((1, 2)));
    }

    #[test]
    fn clear_reuse_matches_fresh_heap() {
        run_clear_reuse::<PairingHeap>(14, 80);
    }

    #[test]
    fn clear_keeps_arena_allocation() {
        let mut h = PairingHeap::with_capacity(64);
        for i in 0..64u32 {
            h.push_or_decrease(i, i as u64);
        }
        let cap = h.nodes.capacity();
        h.clear();
        assert_eq!(h.capacity(), 64);
        assert_eq!(h.nodes.capacity(), cap, "clear must not release the node arena");
    }

    #[test]
    fn model_battery() {
        run_model_battery::<PairingHeap>(10, 4000, 50);
        run_model_battery::<PairingHeap>(11, 4000, 5);
    }

    #[test]
    fn heapsort() {
        run_heapsort::<PairingHeap>(12, 2000);
    }

    #[test]
    fn decrease_storm() {
        run_decrease_storm::<PairingHeap>(13, 300, 5000);
    }
}
