//! Scoped spawn for long-lived, non-join-shaped tasks.
//!
//! Everything else in this crate is *compute*: recursive fork-join work
//! (`rayon::join`, the parallel iterators, [`crate::worker_map`]) that
//! runs to completion quickly and never blocks. A server loop needs the
//! opposite — **service tasks**: lane workers that live for the whole
//! server lifetime, spend most of their time blocked on a request
//! channel, and may borrow non-`'static` state (the solver, the graph).
//!
//! Those tasks deliberately do **not** run on the work-stealing pool:
//!
//! * a pool worker executing a task that blocks on a channel would be
//!   lost to compute for the task's whole lifetime (with as many service
//!   tasks as workers, solves would stall entirely);
//! * worse, a joiner waiting for a stolen job executes *any* claimable
//!   pool work while it waits (`wait_while_helping`) — if it claimed a
//!   never-returning service task, it would never come back from its own
//!   `join`: a deadlock by helping.
//!
//! So [`scope`] runs its tasks on dedicated OS threads (a handful of
//! long-lived service tasks is exactly what OS threads are for), scoped
//! so they may borrow the enclosing frame, with panic propagation: the
//! scope joins every task before returning and rethrows the first task
//! panic after all of them finished. Service tasks still *call into* the
//! pool freely — a lane worker's solve fans substeps over the pool like
//! any other caller.

use std::panic;
use std::sync::Mutex;

/// A handle for spawning service tasks that may borrow the enclosing
/// scope; created by [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    handles: Mutex<Vec<std::thread::ScopedJoinHandle<'scope, ()>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a service task on a dedicated thread. The task may borrow
    /// anything that outlives the [`scope`] call; the scope will not
    /// return before the task does. A panicking task is rethrown by the
    /// scope (see [`scope`]); it never takes other tasks down with it.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let handle = std::thread::Builder::new()
            .name(format!("rs-svc-{}", self.handles.lock().unwrap().len()))
            .spawn_scoped(self.inner, f)
            .expect("failed to spawn service task");
        self.handles.lock().unwrap().push(handle);
    }

    /// Number of tasks spawned so far.
    pub fn spawned(&self) -> usize {
        self.handles.lock().unwrap().len()
    }
}

/// Runs `f` with a [`Scope`] on which service tasks can be spawned, and
/// returns `f`'s result once **every** spawned task has finished.
///
/// Panic contract: if any task panicked, the first captured payload is
/// rethrown from `scope` itself — after all tasks have been joined, so
/// no borrowed state is ever left aliased. If `f` itself panics, its
/// unwind first drops `f`'s locals (closing any channels the tasks
/// block on — the orderly-shutdown idiom), the tasks are joined, and
/// `f`'s panic propagates.
///
/// ```
/// use std::sync::mpsc;
/// let (tx, rx) = mpsc::sync_channel::<u32>(4);
/// let rx = std::sync::Mutex::new(rx);
/// let total = std::sync::atomic::AtomicU32::new(0);
/// rs_par::scope(|s| {
///     // A long-lived consumer task, borrowing `rx` and `total`.
///     s.spawn(|| {
///         while let Ok(v) = rx.lock().unwrap().recv() {
///             total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
///         }
///     });
///     for v in 1..=10 {
///         tx.send(v).unwrap();
///     }
///     drop(tx); // close the channel: the task drains and exits
/// });
/// assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 55);
/// ```
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let sc = Scope { inner: s, handles: Mutex::new(Vec::new()) };
        let result = f(&sc);
        // `f` returned normally: join every task, remembering the first
        // panic payload. (If `f` itself panicked, std::thread::scope
        // joins the tasks during unwind and propagates `f`'s panic.)
        let handles = sc.handles.into_inner().unwrap();
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn tasks_borrow_and_complete_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            assert_eq!(s.spawned(), 4);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4, "scope joined every task");
    }

    #[test]
    fn returns_the_closure_result() {
        let r = scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(r, 42);
    }

    #[test]
    fn service_task_drains_a_channel() {
        // The server-loop shape: a worker blocked on recv until the
        // producer side closes the channel.
        let (tx, rx) = mpsc::sync_channel::<usize>(2);
        let seen = Mutex::new(Vec::new());
        let seen_ref = &seen;
        scope(|s| {
            s.spawn(move || {
                while let Ok(v) = rx.recv() {
                    seen_ref.lock().unwrap().push(v);
                }
            });
            for v in 0..20 {
                tx.send(v).unwrap(); // blocks when the worker falls behind
            }
            drop(tx);
        });
        let got = seen.into_inner().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let finished = AtomicUsize::new(0);
        let caught = panic::catch_unwind(panic::AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("lane worker exploded"));
                s.spawn(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
                s.spawn(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        let payload = caught.expect_err("scope must rethrow the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("lane worker exploded"), "payload preserved, got: {msg}");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            2,
            "sibling tasks ran to completion before the panic propagated"
        );
    }

    #[test]
    fn tasks_can_use_the_compute_pool() {
        // Service tasks call into the work-stealing pool like any other
        // caller; the pool's helping join must not interact with them.
        let sums = Mutex::new(Vec::new());
        let sums_ref = &sums;
        scope(|s| {
            for t in 0..3u64 {
                s.spawn(move || {
                    let xs: Vec<u64> = (0..10_000).map(|i| i + t).collect();
                    let total = crate::worker_map(
                        4,
                        || (),
                        |_, chunk| xs[chunk * 2500..(chunk + 1) * 2500].iter().sum::<u64>(),
                    )
                    .into_iter()
                    .sum::<u64>();
                    sums_ref.lock().unwrap().push(total);
                });
            }
        });
        let got = sums.into_inner().unwrap();
        assert_eq!(got.len(), 3);
        for &s in got.iter() {
            let base: u64 = (0..10_000u64).sum();
            assert!((base..=base + 30_000).contains(&s));
        }
    }

    #[test]
    fn empty_scope_is_fine() {
        assert_eq!(scope(|_| "done"), "done");
    }
}
