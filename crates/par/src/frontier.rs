//! Ligra-style vertex subsets with sparse/dense duality.
//!
//! Frontier-driven traversals (BFS, Bellman–Ford substeps, the active sets
//! `A_i` of radius stepping) switch between a *sparse* representation (a
//! packed list of vertex ids) when the frontier is small and a *dense*
//! bitmap when it covers a large fraction of the graph. Edge-map operators
//! in `rs_graph` consume either form.

use rayon::prelude::*;

use crate::pack::pack_indices;
use crate::SEQ_THRESHOLD;

/// A subset of the vertices `0..n`, stored sparsely or densely.
#[derive(Debug, Clone)]
pub enum VertexSubset {
    /// Sorted (or at least duplicate-free) list of member ids.
    Sparse { n: usize, ids: Vec<u32> },
    /// Bitmap over all `n` vertices plus a cached member count.
    Dense { flags: Vec<bool>, count: usize },
}

impl VertexSubset {
    /// The empty subset of a universe of `n` vertices.
    pub fn empty(n: usize) -> Self {
        VertexSubset::Sparse { n, ids: Vec::new() }
    }

    /// Singleton subset `{v}`.
    pub fn single(n: usize, v: u32) -> Self {
        debug_assert!((v as usize) < n);
        VertexSubset::Sparse { n, ids: vec![v] }
    }

    /// Builds a sparse subset from member ids (must be duplicate-free).
    pub fn from_ids(n: usize, ids: Vec<u32>) -> Self {
        debug_assert!(ids.iter().all(|&v| (v as usize) < n));
        VertexSubset::Sparse { n, ids }
    }

    /// Builds a dense subset from a bitmap.
    pub fn from_flags(flags: Vec<bool>) -> Self {
        let count = if flags.len() < SEQ_THRESHOLD {
            flags.iter().filter(|&&f| f).count()
        } else {
            // fold/reduce, not sum(): the vendored sum() buffers each chunk
            // before summing, and this runs on every dense-frontier build.
            flags
                .par_iter()
                .fold(|| 0usize, |acc, &f| acc + usize::from(f))
                .reduce(|| 0, |a, b| a + b)
        };
        VertexSubset::Dense { flags, count }
    }

    /// Size of the universe.
    pub fn universe(&self) -> usize {
        match self {
            VertexSubset::Sparse { n, .. } => *n,
            VertexSubset::Dense { flags, .. } => flags.len(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.len(),
            VertexSubset::Dense { count, .. } => *count,
        }
    }

    /// True when the subset has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test (`O(1)` dense, `O(len)` sparse).
    pub fn contains(&self, v: u32) -> bool {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.contains(&v),
            VertexSubset::Dense { flags, .. } => flags[v as usize],
        }
    }

    /// Members as a packed, ascending id list (converts if dense).
    pub fn to_ids(&self) -> Vec<u32> {
        match self {
            VertexSubset::Sparse { ids, .. } => {
                let mut ids = ids.clone();
                ids.par_sort_unstable();
                ids
            }
            VertexSubset::Dense { flags, .. } => pack_indices(flags.len(), |i| flags[i]),
        }
    }

    /// Converts to the dense bitmap form.
    pub fn to_dense(&self) -> VertexSubset {
        match self {
            VertexSubset::Dense { .. } => self.clone(),
            VertexSubset::Sparse { n, ids } => {
                let mut flags = vec![false; *n];
                for &v in ids {
                    flags[v as usize] = true;
                }
                VertexSubset::Dense { flags, count: ids.len() }
            }
        }
    }

    /// Ligra's representation rule: go dense when the frontier (plus its
    /// out-degree, if known) exceeds `universe / 20`.
    pub fn should_densify(&self, out_degree_sum: usize) -> bool {
        self.len() + out_degree_sum > self.universe() / 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let e = VertexSubset::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.universe(), 10);
        let s = VertexSubset::single(10, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn sparse_dense_roundtrip() {
        let s = VertexSubset::from_ids(100, vec![5, 1, 99]);
        let d = s.to_dense();
        assert_eq!(d.len(), 3);
        assert!(d.contains(1) && d.contains(5) && d.contains(99));
        assert_eq!(d.to_ids(), vec![1, 5, 99]);
        assert_eq!(s.to_ids(), vec![1, 5, 99], "to_ids sorts sparse form");
    }

    #[test]
    fn from_flags_counts() {
        let d = VertexSubset::from_flags(vec![true, false, true, true]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.universe(), 4);
        assert_eq!(d.to_ids(), vec![0, 2, 3]);
    }

    #[test]
    fn densify_heuristic() {
        let s = VertexSubset::from_ids(1000, (0..10).collect());
        assert!(!s.should_densify(0));
        assert!(s.should_densify(100));
    }
}
