//! Prefix sums (scans).
//!
//! The classic two-pass blocked scan: split into per-thread blocks, sum each
//! block in parallel, scan the block sums sequentially (there are only
//! `O(P)` of them), then offset each block in parallel. `O(n)` work,
//! `O(n/P + P)` span — the standard PRAM scan, with both parallel passes
//! expressed as `par_chunks` / `par_chunks_mut` tasks on the work-stealing
//! pool.

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

/// Exclusive prefix sum of `input`, plus the grand total.
///
/// `output[i] = input[0] + … + input[i-1]`, `output[0] = 0`.
pub fn exclusive_scan(input: &[u64]) -> (Vec<u64>, u64) {
    let mut out = input.to_vec();
    let total = exclusive_scan_in_place(&mut out);
    (out, total)
}

/// In-place exclusive prefix sum; returns the grand total.
pub fn exclusive_scan_in_place(data: &mut [u64]) -> u64 {
    if data.len() < SEQ_THRESHOLD {
        return seq_exclusive(data);
    }
    let block = data.len().div_ceil(rayon::current_num_threads() * 4).max(1);
    // Pass 1: per-block sums, in parallel (this was a serial loop for a
    // while, silently giving the scan an O(n) span).
    let mut block_sums: Vec<u64> =
        data.par_chunks(block).with_min_len(1).map(|chunk| chunk.iter().sum()).collect();
    // Pass 2: scan block sums (few of them).
    let total = seq_exclusive(&mut block_sums);
    // Pass 3: offset each block in parallel.
    data.par_chunks_mut(block).zip(block_sums.par_iter()).with_min_len(1).for_each(
        |(chunk, &offset)| {
            let mut acc = offset;
            for x in chunk {
                let v = *x;
                *x = acc;
                acc += v;
            }
        },
    );
    total
}

fn seq_exclusive(data: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for x in data {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Exclusive prefix sum over `usize` counts (common for CSR offsets).
pub fn exclusive_scan_usize(input: &[usize]) -> (Vec<usize>, usize) {
    let as64: Vec<u64> = input.iter().map(|&x| x as u64).collect();
    let (scanned, total) = exclusive_scan(&as64);
    (scanned.into_iter().map(|x| x as usize).collect(), total as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(input: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_and_single() {
        let (v, t) = exclusive_scan(&[]);
        assert!(v.is_empty());
        assert_eq!(t, 0);
        let (v, t) = exclusive_scan(&[7]);
        assert_eq!(v, vec![0]);
        assert_eq!(t, 7);
    }

    #[test]
    fn matches_reference_small() {
        let input: Vec<u64> = (0..100).map(|i| (i * 37 + 11) % 13).collect();
        assert_eq!(exclusive_scan(&input), reference(&input));
    }

    #[test]
    fn matches_reference_large_parallel_path() {
        let input: Vec<u64> =
            (0..(SEQ_THRESHOLD * 3 + 17) as u64).map(|i| (i * 2654435761) % 97).collect();
        assert_eq!(exclusive_scan(&input), reference(&input));
    }

    #[test]
    fn usize_variant() {
        let (v, t) = exclusive_scan_usize(&[3, 0, 2, 5]);
        assert_eq!(v, vec![0, 3, 3, 5]);
        assert_eq!(t, 10);
    }

    #[test]
    fn in_place_matches() {
        let input: Vec<u64> = (0..5000).map(|i| i % 7).collect();
        let (expect, expect_total) = reference(&input);
        let mut data = input;
        let total = exclusive_scan_in_place(&mut data);
        assert_eq!(data, expect);
        assert_eq!(total, expect_total);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn scan_total_equals_sum(input in proptest::collection::vec(0u64..1000, 0..2000)) {
            let (_, total) = exclusive_scan(&input);
            prop_assert_eq!(total, input.iter().sum::<u64>());
        }

        #[test]
        fn scan_is_monotone_and_consistent(input in proptest::collection::vec(0u64..1000, 1..2000)) {
            let (out, total) = exclusive_scan(&input);
            prop_assert_eq!(out[0], 0);
            for i in 1..out.len() {
                prop_assert_eq!(out[i], out[i - 1] + input[i - 1]);
            }
            prop_assert_eq!(total, out[out.len() - 1] + input[input.len() - 1]);
        }

        // Parity of the blocked-parallel path against the sequential scan.
        // Sizes straddle `SEQ_THRESHOLD`, so every case with len ≥ the
        // threshold exercises both pool passes (the earlier properties
        // stayed below it, which is how the sequential pass-1 regression
        // went unnoticed).
        #[test]
        fn parallel_scan_matches_seq_exclusive(
            input in proptest::collection::vec(0u64..10_000, SEQ_THRESHOLD - 64..SEQ_THRESHOLD * 3)
        ) {
            let mut expect = input.clone();
            let expect_total = seq_exclusive(&mut expect);
            let mut got = input;
            let got_total = exclusive_scan_in_place(&mut got);
            prop_assert_eq!(got_total, expect_total);
            prop_assert_eq!(got, expect);
        }
    }
}
