//! Parallel primitives used across the radius-stepping workspace.
//!
//! The paper analyses its algorithms in the work/depth (PRAM) model; this
//! crate provides the small set of primitives that model relies on, mapped
//! onto [rayon]'s persistent work-stealing pool (workers are spawned once
//! and parked when idle, so an engine substep costs deque operations, not
//! thread spawns):
//!
//! * [`scan`] — sequential and blocked-parallel prefix sums, the backbone of
//!   parallel packing and CSR construction (`O(n)` work, `O(log n)` depth).
//! * [`pack`] — parallel filter/pack of indices or values by a predicate.
//! * [`atomic`] — the paper's *priority-write* (`WriteMin`) on `u64`
//!   distances, plus an atomic bitset for concurrent membership flags.
//! * [`epoch`] — the priority-write array with epoch-tagged entries, whose
//!   logical reset to all-`∞` is O(1): the substrate of reusable solver
//!   scratch state for batch workloads.
//! * [`reduce`] — parallel min/argmin reductions used to select the round
//!   distance `d_i = min(δ(v) + r(v))`.
//! * [`frontier`] — Ligra-style vertex subsets with sparse/dense duality.
//! * [`worker`] — per-worker state handout ([`worker_map`]): fan a batch of
//!   items over the pool with one lazily-created, reused state per task.
//! * [`scope`](mod@scope) — scoped spawn for long-lived *service* tasks
//!   (server lane workers) that block on channels and must therefore run
//!   on dedicated threads, not pool workers, with panic propagation.
//! * [`model`] — schedule-fuzzing preemption points (no-ops unless built
//!   with `--features schedule_fuzz`); the seeded stress suites in
//!   `tests/schedule_fuzz.rs` here and in `crates/serve` ride on it.
//!
//! All primitives are deterministic given deterministic input (the atomics
//! resolve races to the same fixed point regardless of scheduling).

pub mod atomic;
pub mod epoch;
pub mod frontier;
pub mod model;
pub mod pack;
pub mod reduce;
pub mod scan;
pub mod scope;
pub mod worker;

pub use atomic::{atomic_vec, AtomicBitset, AtomicMinU64};
pub use epoch::EpochMinArray;
pub use frontier::VertexSubset;
pub use pack::{pack_indices, pack_values};
pub use reduce::{par_min, par_min_by_key};
pub use scan::{exclusive_scan, exclusive_scan_in_place};
pub use scope::{scope, Scope};
pub use worker::{worker_map, worker_map_sink};

/// Sequential-fallback threshold: below this many items the parallel
/// primitives run sequentially to avoid fork-join overhead.
pub const SEQ_THRESHOLD: usize = 1 << 12;

/// Returns the number of rayon worker threads in the current pool
/// (override with the `RS_NUM_THREADS` environment variable, read once at
/// pool creation).
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Splits `n` items into roughly `pieces` contiguous ranges.
///
/// Guarantees every range is non-empty and the ranges exactly cover `0..n`.
/// Returns an empty vector when `n == 0`.
pub fn chunk_ranges(n: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, n);
    let base = n / pieces;
    let extra = n % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 100, 1001] {
            for pieces in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, pieces);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "ranges must be contiguous");
                    assert!(!r.is_empty(), "no empty ranges");
                    expect = r.end;
                }
                assert_eq!(expect, n, "ranges must cover 0..n");
                if n > 0 {
                    assert!(ranges.len() <= pieces.max(1));
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_balanced() {
        let ranges = chunk_ranges(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn num_threads_positive() {
        assert!(num_threads() >= 1);
    }
}
