//! Atomic building blocks: the paper's priority-write (`WriteMin`) and an
//! atomic bitset.
//!
//! Radius stepping relaxes all edges out of the active set concurrently; the
//! tentative-distance update `δ(v) ← min(δ(v), δ(u) + w(u,v))` is exactly a
//! priority-write, implemented here with `AtomicU64::fetch_min`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `u64` cell supporting concurrent *priority-write* (write-with-min).
///
/// This is the `WriteMin` primitive from §3.3 of the paper: many writers may
/// race on the same cell and the final value is the minimum of all proposed
/// values and the previous content, independent of scheduling.
#[derive(Debug)]
pub struct AtomicMinU64(AtomicU64);

impl AtomicMinU64 {
    /// Creates a cell holding `value`.
    #[inline]
    pub fn new(value: u64) -> Self {
        AtomicMinU64(AtomicU64::new(value))
    }

    /// Reads the current value.
    #[inline]
    pub fn load(&self) -> u64 {
        // ORDERING: the distance is the entire payload of this cell — no
        // other data is published through it, so a Relaxed load is always
        // a value the cell legitimately held. Phase boundaries (reading
        // final distances after a parallel substep) synchronise through
        // the pool's join latch, not through this load.
        self.0.load(Ordering::Relaxed)
    }

    /// Unconditionally stores `value` (non-racing contexts only).
    #[inline]
    pub fn store(&self, value: u64) {
        // ORDERING: see `load` — single self-contained word, non-racing
        // contexts per the doc contract.
        self.0.store(value, Ordering::Relaxed)
    }

    /// Priority-write: lowers the cell to `value` if `value` is smaller.
    ///
    /// Returns `true` iff this call strictly lowered the stored value, which
    /// callers use to detect "the relaxation succeeded" (Algorithm 2 uses
    /// this to decide ownership of a vertex within a substep).
    #[inline]
    pub fn write_min(&self, value: u64) -> bool {
        // ORDERING: the RMW totally orders concurrent write_mins on this
        // cell, which is all WriteMin's determinism needs; the value is
        // self-contained (see `load`), so no Acquire/Release edge is owed.
        self.0.fetch_min(value, Ordering::Relaxed) > value
    }
}

impl Default for AtomicMinU64 {
    fn default() -> Self {
        AtomicMinU64::new(u64::MAX)
    }
}

impl Clone for AtomicMinU64 {
    fn clone(&self) -> Self {
        AtomicMinU64::new(self.load())
    }
}

/// Creates a vector of `n` priority-write cells all holding `init`.
pub fn atomic_vec(n: usize, init: u64) -> Vec<AtomicMinU64> {
    (0..n).map(|_| AtomicMinU64::new(init)).collect()
}

/// A fixed-capacity bitset whose bits can be set concurrently.
///
/// Used for "has this vertex been touched this substep" flags where many
/// relaxations may claim the same vertex at once. `set` reports whether the
/// caller was the one to flip the bit, giving a cheap parallel "insert if
/// absent".
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl Default for AtomicBitset {
    /// The zero-length bitset (grow by replacing with a sized one).
    fn default() -> Self {
        AtomicBitset::new(0)
    }
}

impl AtomicBitset {
    /// Creates a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        AtomicBitset { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically sets bit `i`; returns `true` iff it was previously clear.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        // ORDERING: the flag itself is the only datum — claiming a vertex
        // publishes no side state through this word, and the RMW already
        // guarantees exactly one caller sees the clear→set transition.
        self.words[i >> 6].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Atomically clears bit `i`; returns `true` iff it was previously set.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        // ORDERING: see `set` — the flag is the datum, the RMW decides the
        // unique transition.
        self.words[i >> 6].fetch_and(!mask, Ordering::Relaxed) & mask != 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // ORDERING: advisory read of a self-contained flag word; readers
        // that need the bits of a finished substep sit behind the pool's
        // join barrier.
        self.words[i >> 6].load(Ordering::Relaxed) & (1u64 << (i & 63)) != 0
    }

    /// Clears every bit (sequentially; cheap relative to traversals).
    pub fn clear_all(&self) {
        for w in &self.words {
            // ORDERING: called between substeps with no concurrent
            // writers (sequential contract in the doc); visibility to the
            // next parallel step flows through its fork.
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        // ORDERING: post-barrier aggregate read (see `get`).
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Indices of all set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            // ORDERING: post-barrier traversal read (see `get`).
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn write_min_lowers_only() {
        let a = AtomicMinU64::new(10);
        assert!(a.write_min(5));
        assert_eq!(a.load(), 5);
        assert!(!a.write_min(7), "larger value must not win");
        assert_eq!(a.load(), 5);
        assert!(!a.write_min(5), "equal value is not a strict lowering");
    }

    #[test]
    fn write_min_concurrent_fixpoint() {
        let a = AtomicMinU64::new(u64::MAX);
        (0..10_000u64).into_par_iter().for_each(|i| {
            a.write_min(10_000 - i);
        });
        assert_eq!(a.load(), 1);
    }

    #[test]
    fn concurrent_write_min_exactly_one_winner_per_level() {
        // Many threads writing the same value: none may observe a "strict
        // lowering" twice for the same value.
        let a = AtomicMinU64::new(100);
        let wins: usize = (0..1000).into_par_iter().map(|_| usize::from(a.write_min(50))).sum();
        assert_eq!(wins, 1, "exactly one writer strictly lowers 100 -> 50");
    }

    #[test]
    fn bitset_set_get_clear() {
        let b = AtomicBitset::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(129));
        assert!(b.set(129));
        assert!(!b.set(129), "second set reports already-set");
        assert!(b.get(129));
        assert!(b.clear(129));
        assert!(!b.clear(129));
        assert!(!b.get(129));
    }

    #[test]
    fn bitset_concurrent_set_unique_claims() {
        let b = AtomicBitset::new(64);
        // 1000 threads race to claim bit 7; exactly one wins.
        let claims: usize = (0..1000).into_par_iter().map(|_| usize::from(b.set(7))).sum();
        assert_eq!(claims, 1);
    }

    #[test]
    fn bitset_iter_and_count() {
        let b = AtomicBitset::new(200);
        for i in [0usize, 1, 63, 64, 65, 199] {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 6);
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 65, 199]);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn atomic_vec_initialised() {
        let v = atomic_vec(5, 42);
        assert!(v.iter().all(|c| c.load() == 42));
    }
}
