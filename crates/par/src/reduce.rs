//! Parallel reductions.
//!
//! Radius stepping's round-distance selection (`d_i = min_{v∉S} δ(v)+r(v)`,
//! Algorithm 1 line 4) is a parallel min-reduction over the fringe; these
//! helpers provide deterministic (lowest-index-wins) argmin variants. Both
//! run as chunked fold/reduce tasks on the work-stealing pool, so the
//! reduction is `O(n)` work and `O(n/P + P)` span regardless of scheduling.

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

/// Minimum of `f(i)` over `0..n`; `u64::MAX` when `n == 0`.
pub fn par_min<F>(n: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync + Send,
{
    if n < SEQ_THRESHOLD {
        (0..n).map(f).min().unwrap_or(u64::MAX)
    } else {
        (0..n).into_par_iter().map(f).min().unwrap_or(u64::MAX)
    }
}

/// `(argmin, min)` of `f(i)` over `0..n`, ties broken toward the smallest
/// index; `None` when `n == 0` or every value is `u64::MAX`.
pub fn par_min_by_key<F>(n: usize, f: F) -> Option<(usize, u64)>
where
    F: Fn(usize) -> u64 + Sync + Send,
{
    let fold = |acc: Option<(usize, u64)>, i: usize| -> Option<(usize, u64)> {
        let v = f(i);
        match acc {
            Some((bi, bv)) if bv < v || (bv == v && bi < i) => Some((bi, bv)),
            _ => Some((i, v)),
        }
    };
    let merge = |a: Option<(usize, u64)>, b: Option<(usize, u64)>| match (a, b) {
        (Some((ai, av)), Some((bi, bv))) => {
            if av < bv || (av == bv && ai < bi) {
                Some((ai, av))
            } else {
                Some((bi, bv))
            }
        }
        (x, None) | (None, x) => x,
    };
    let best = if n < SEQ_THRESHOLD {
        (0..n).fold(None, fold)
    } else {
        (0..n).into_par_iter().fold(|| None, fold).reduce(|| None, merge)
    };
    best.filter(|&(_, v)| v != u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_empty() {
        assert_eq!(par_min(0, |_| 0), u64::MAX);
        assert_eq!(par_min_by_key(0, |_| 0), None);
    }

    #[test]
    fn min_small() {
        let vals = [5u64, 3, 9, 3, 7];
        assert_eq!(par_min(vals.len(), |i| vals[i]), 3);
        // Tie at indices 1 and 3 broken toward 1.
        assert_eq!(par_min_by_key(vals.len(), |i| vals[i]), Some((1, 3)));
    }

    #[test]
    fn all_infinite_is_none() {
        assert_eq!(par_min_by_key(10, |_| u64::MAX), None);
    }

    #[test]
    fn min_large_parallel_path() {
        let n = SEQ_THRESHOLD * 3;
        let f = |i: usize| ((i as u64).wrapping_mul(2654435761)) % 1_000_003 + 1;
        let expect = (0..n).map(f).min().unwrap();
        assert_eq!(par_min(n, f), expect);
        let (ai, av) = par_min_by_key(n, f).unwrap();
        assert_eq!(av, expect);
        assert_eq!(f(ai), av);
        // Deterministic tie-break: the argmin must be the first attaining index.
        let first = (0..n).find(|&i| f(i) == expect).unwrap();
        assert_eq!(ai, first);
    }
}
