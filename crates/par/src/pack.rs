//! Parallel packing (filter/compact).
//!
//! `pack` is the PRAM primitive behind frontier compaction: given a
//! predicate over `0..n`, produce the dense list of satisfying indices in
//! order. Implemented as count → scan → scatter, with the count and scatter
//! passes running as work-stealing pool tasks; `O(n)` work, `O(n/P + P)`
//! span.

use rayon::prelude::*;

use crate::{chunk_ranges, scan::exclusive_scan_usize, SEQ_THRESHOLD};

/// Indices `i` in `0..n` with `pred(i)`, in ascending order.
pub fn pack_indices<F>(n: usize, pred: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    if n < SEQ_THRESHOLD {
        return (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
    }
    let ranges = chunk_ranges(n, rayon::current_num_threads() * 8);
    let counts: Vec<usize> =
        ranges.par_iter().with_min_len(1).map(|r| r.clone().filter(|&i| pred(i)).count()).collect();
    let (offsets, total) = exclusive_scan_usize(&counts);
    let mut out = vec![0u32; total];
    // Scatter each block into its disjoint slice of the output.
    let mut slices: Vec<&mut [u32]> = Vec::with_capacity(ranges.len());
    let mut rest = out.as_mut_slice();
    for (i, _) in ranges.iter().enumerate() {
        let take =
            if i + 1 < ranges.len() { offsets[i + 1] - offsets[i] } else { total - offsets[i] };
        let (head, tail) = rest.split_at_mut(take);
        slices.push(head);
        rest = tail;
    }
    ranges.into_par_iter().zip(slices.into_par_iter()).with_min_len(1).for_each(|(r, slice)| {
        let mut j = 0;
        for i in r {
            if pred(i) {
                slice[j] = i as u32;
                j += 1;
            }
        }
        debug_assert_eq!(j, slice.len());
    });
    out
}

/// Values `items[i]` for which `keep(i, items[i])` holds, in order.
pub fn pack_values<T, F>(items: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(usize, T) -> bool + Sync,
{
    let idx = pack_indices(items.len(), |i| keep(i, items[i]));
    if items.len() < SEQ_THRESHOLD {
        idx.into_iter().map(|i| items[i as usize]).collect()
    } else {
        idx.into_par_iter().map(|i| items[i as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert!(pack_indices(0, |_| true).is_empty());
    }

    #[test]
    fn all_and_none() {
        assert_eq!(pack_indices(5, |_| true), vec![0, 1, 2, 3, 4]);
        assert!(pack_indices(5, |_| false).is_empty());
    }

    #[test]
    fn evens_small() {
        assert_eq!(pack_indices(9, |i| i % 2 == 0), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn large_parallel_path_matches_sequential() {
        let n = SEQ_THRESHOLD * 2 + 333;
        let pred = |i: usize| (i * 2654435761).is_multiple_of(5);
        let expect: Vec<u32> = (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
        assert_eq!(pack_indices(n, pred), expect);
    }

    #[test]
    fn pack_values_keeps_order() {
        let items: Vec<u64> = (0..10_000).map(|i| i * 3 % 17).collect();
        let got = pack_values(&items, |_, v| v > 8);
        let expect: Vec<u64> = items.iter().copied().filter(|&v| v > 8).collect();
        assert_eq!(got, expect);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pack_matches_filter(flags in proptest::collection::vec(any::<bool>(), 0..3000)) {
            let got = pack_indices(flags.len(), |i| flags[i]);
            let expect: Vec<u32> = flags
                .iter()
                .enumerate()
                .filter(|(_, &f)| f)
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, expect);
        }
    }
}
