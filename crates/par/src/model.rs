//! Re-export of the schedule-fuzzing harness (see `rayon::model`).
//!
//! Downstream crates (`rs_core`, `rs_serve`) and their stress tests call
//! these through `rs_par::model::*` so the whole workspace shares one
//! perturbation stream. Enable with `--features rs_par/schedule_fuzz`
//! (forwarded to the vendored pool); without the feature every call
//! compiles to nothing and [`run_scenario`] degenerates to a plain seed
//! loop.
//!
//! Stress suites wrap their per-seed loops in [`run_scenario`], which
//! captures every yield decision and, on a failing seed, writes an
//! `RSTRACE1` trace whose path feeds `cargo xtask replay` — see
//! `rayon::model` for the capture/replay model and the `RS_REPLAY_TRACE`
//! / `RS_RECORD_TRACE` / `RS_TRACE_DIR` environment knobs.

pub use rayon::model::{
    run_scenario, seed_schedule, start_recording, start_replay, stop_recording, stop_replay,
    yield_point, yields_taken, ScenarioSpec, Trace, DECISION_NOTHING, DECISION_SPIN_BASE,
    DECISION_YIELD, TRACE_MAGIC,
};
