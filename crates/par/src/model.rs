//! Re-export of the schedule-fuzzing harness (see `rayon::model`).
//!
//! Downstream crates (`rs_core`, `rs_serve`) and their stress tests call
//! these through `rs_par::model::*` so the whole workspace shares one
//! perturbation stream. Enable with `--features rs_par/schedule_fuzz`
//! (forwarded to the vendored pool); without the feature every call
//! compiles to nothing.

pub use rayon::model::{seed_schedule, yield_point, yields_taken};
