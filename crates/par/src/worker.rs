//! Per-worker state handout: fan items over the pool, one reusable state
//! per pool task.
//!
//! Batch workloads (many SSSP sources, many ball searches) want the exact
//! opposite of `map_init`'s per-chunk state: **as few states as possible**,
//! each reused for as many items as its worker can grab. [`worker_map`]
//! spawns one task per pool thread; the tasks pull item indices from a
//! shared atomic counter (so load balancing stays dynamic even when items
//! have uneven costs) and lazily create a single state the first time they
//! actually win an item. A task that never wins an item never creates a
//! state, so at most `min(num_threads, n)` states exist per call.
//!
//! Item order in the output matches the input; which state served which
//! item does not (and must not) affect results.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

/// Runs `f(&mut state, i)` for every `i in 0..n` across the pool, handing
/// each pool task one lazily-created `state` reused for all items that task
/// claims. Returns the results in item order.
pub fn worker_map<S, R, I, F>(n: usize, init: I, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, usize) -> R + Send + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let tasks = rayon::current_num_threads().clamp(1, n);
    if tasks == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let per_task: Vec<Vec<(usize, R)>> = (0..tasks)
        .into_par_iter()
        .with_min_len(1)
        .map(|_| {
            let mut state: Option<S> = None;
            let mut claimed = Vec::new();
            loop {
                // ORDERING: the work-claim counter is the only shared word
                // and the RMW hands each index to exactly one task; item
                // data flows through the claimed index, not the counter.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let state = state.get_or_insert_with(&init);
                claimed.push((i, f(state, i)));
            }
            claimed
        })
        .collect();

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in per_task.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "each index is claimed exactly once");
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("every index claimed")).collect()
}

/// [`worker_map`] with delivery instead of collection: `sink(i, result)` is
/// called as soon as item `i` completes, from whichever pool task computed
/// it — the streaming backbone of `QueryBatch::stream`. Completion order is
/// whatever dynamic load balancing produces; only the `(i, result)` pairing
/// is guaranteed. The sink must therefore be callable from multiple threads
/// concurrently (`Fn + Sync`); a typical sink sends into a channel drained
/// by the caller's thread.
pub fn worker_map_sink<S, R, I, F, K>(n: usize, init: I, f: F, sink: K)
where
    S: Send,
    R: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, usize) -> R + Send + Sync,
    K: Fn(usize, R) + Send + Sync,
{
    if n == 0 {
        return;
    }
    let tasks = rayon::current_num_threads().clamp(1, n);
    if tasks == 1 {
        // Sequential fallback still delivers item-by-item: a caller
        // draining a channel on another thread observes the same streaming
        // behaviour at every pool size.
        let mut state = init();
        for i in 0..n {
            sink(i, f(&mut state, i));
        }
        return;
    }

    let next = AtomicUsize::new(0);
    (0..tasks).into_par_iter().with_min_len(1).for_each(|_| {
        let mut state: Option<S> = None;
        loop {
            // ORDERING: see worker_map — unique claim via RMW, no data
            // published through the counter.
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let state = state.get_or_insert_with(&init);
            sink(i, f(state, i));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn covers_all_items_in_order() {
        let out = worker_map(
            100,
            || 0u64,
            |acc, i| {
                *acc += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_creates_nothing() {
        let created = AtomicUsize::new(0);
        let out: Vec<usize> = worker_map(
            0,
            || {
                created.fetch_add(1, Ordering::Relaxed);
            },
            |_, i| i,
        );
        assert!(out.is_empty());
        assert_eq!(created.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn at_most_one_state_per_thread() {
        let created = AtomicUsize::new(0);
        let _ = worker_map(512, || created.fetch_add(1, Ordering::Relaxed), |_, i| i);
        let states = created.load(Ordering::Relaxed);
        assert!(states >= 1);
        assert!(
            states <= crate::num_threads(),
            "{states} states for {} threads",
            crate::num_threads()
        );
    }

    #[test]
    fn state_reused_across_items() {
        // Each state counts the items it served; totals must sum to n, and
        // with fewer states than items at least one state serves many.
        let served = Mutex::new(Vec::new());
        struct Tally<'a> {
            count: usize,
            sink: &'a Mutex<Vec<usize>>,
        }
        impl Drop for Tally<'_> {
            fn drop(&mut self) {
                self.sink.lock().unwrap().push(self.count);
            }
        }
        let _ = worker_map(
            200,
            || Tally { count: 0, sink: &served },
            |t, i| {
                t.count += 1;
                i
            },
        );
        let counts = served.lock().unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 200);
        assert!(counts.len() <= crate::num_threads());
    }

    #[test]
    fn single_item() {
        assert_eq!(worker_map(1, || (), |_, i| i + 7), vec![7]);
    }

    #[test]
    fn sink_delivers_every_item_exactly_once() {
        let seen = Mutex::new(vec![0usize; 300]);
        worker_map_sink(
            300,
            || (),
            |_, i| i * 3,
            |i, r| {
                assert_eq!(r, i * 3, "pairing preserved");
                seen.lock().unwrap()[i] += 1;
            },
        );
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn sink_streams_through_a_channel() {
        // The canonical usage: workers send, the caller-side receiver
        // observes every item (here synchronously, after completion).
        let (tx, rx) = std::sync::mpsc::channel();
        worker_map_sink(50, || (), |_, i| i, |i, r| tx.send((i, r)).unwrap());
        drop(tx);
        let mut got: Vec<(usize, usize)> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn sink_empty_input_is_a_noop() {
        worker_map_sink(
            0,
            || unreachable!("no state for zero items"),
            |_: &mut (), i| i,
            |_, _| panic!("no deliveries for zero items"),
        );
    }
}
