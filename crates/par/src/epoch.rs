//! Epoch-tagged priority-write arrays: reusable tentative-distance state.
//!
//! A solver that serves many queries must not pay an `O(n)` clear (or worse,
//! an `O(n)` allocation) per source just to start every entry back at `∞`.
//! [`EpochMinArray`] is a [`AtomicMinU64`](crate::AtomicMinU64) vector whose
//! logical reset is **O(1)**: each stored word carries the epoch it was
//! written in, and [`EpochMinArray::advance`] simply moves to a fresh epoch,
//! turning every old entry back into a logical `u64::MAX` without touching
//! it.
//!
//! The trick that keeps the hot path a single `fetch_min` is storing the
//! epoch *inverted* in the high [`EPOCH_BITS`] bits: newer epochs get
//! strictly smaller tags, so a priority-write from the current epoch always
//! beats a stale entry by plain integer comparison — no compare-and-swap
//! loop, no separate stamp array to race on. Values are therefore limited to
//! [`MAX_STORABLE`] (48 bits, ≈ 2.8 · 10¹⁴); `u64::MAX` is accepted as the
//! logical infinity. After [`EPOCHS_PER_FILL`] advances the tag space is
//! exhausted and one real `O(n)` refill is paid — amortised away entirely.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits of the word reserved for the inverted epoch tag.
pub const EPOCH_BITS: u32 = 16;

/// Bits available for the stored value.
pub const VALUE_BITS: u32 = 64 - EPOCH_BITS;

/// Largest storable finite value (`2^48 - 1`). Larger finite values panic in
/// debug builds; `u64::MAX` is treated as the logical infinity everywhere.
pub const MAX_STORABLE: u64 = (1 << VALUE_BITS) - 1;

/// Logical reset count between two physical `O(n)` refills.
pub const EPOCHS_PER_FILL: u64 = (1 << EPOCH_BITS) - 2;

/// The freshly-allocated fill pattern reads as "stale" in every epoch.
const EMPTY: u64 = u64::MAX;

/// First (largest) usable inverted tag: `0xFFFF` is reserved for [`EMPTY`].
const FIRST_TAG: u64 = ((1u64 << EPOCH_BITS) - 2) << VALUE_BITS;

/// One tag step (epoch `e + 1` has a tag one `STEP` below epoch `e`'s).
const STEP: u64 = 1 << VALUE_BITS;

/// A `u64` min-array with per-epoch logical clearing.
///
/// Every cell starts (and restarts, after [`EpochMinArray::advance`]) at a
/// logical `u64::MAX`; [`EpochMinArray::write_min`] is the paper's
/// priority-write restricted to the current epoch. Stale cells are
/// overwritten lazily by the first write that touches them.
#[derive(Debug, Default)]
pub struct EpochMinArray {
    raw: Vec<AtomicU64>,
    /// Current epoch's tag, pre-shifted into the high bits.
    tag: u64,
}

impl EpochMinArray {
    /// An empty array; size it with [`EpochMinArray::ensure`].
    pub fn new() -> Self {
        EpochMinArray { raw: Vec::new(), tag: FIRST_TAG }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when the array holds no cells.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Grows the array to at least `n` cells (all logically `u64::MAX`).
    /// Returns `true` iff memory was (re)allocated — the signal scratch
    /// reuse counters key on. Never shrinks.
    pub fn ensure(&mut self, n: usize) -> bool {
        if self.raw.len() >= n {
            return false;
        }
        self.raw = (0..n).map(|_| AtomicU64::new(EMPTY)).collect();
        self.tag = FIRST_TAG;
        true
    }

    /// O(1) logical reset: every cell reads `u64::MAX` again. Pays one
    /// physical refill every [`EPOCHS_PER_FILL`] calls when the tag space
    /// wraps.
    pub fn advance(&mut self) {
        if self.tag == 0 {
            for cell in &self.raw {
                crate::model::yield_point();
                // ORDERING: `&mut self` gives this refill exclusive access
                // — no concurrent reader or writer exists, and the handoff
                // back to shared use synchronises through whatever
                // publishes the borrow (join latch / scope join).
                cell.store(EMPTY, Ordering::Relaxed);
            }
            self.tag = FIRST_TAG;
        } else {
            self.tag -= STEP;
        }
    }

    /// Reads cell `i`: its value if written this epoch, `u64::MAX` otherwise.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        // ORDERING: the tag+value travel in one word, so a Relaxed load is
        // internally consistent by itself; cross-phase visibility (writes
        // from a finished parallel step) is provided by the pool's join
        // latch Acquire/Release, never by this load.
        let raw = self.raw[i].load(Ordering::Relaxed);
        if raw & !MAX_STORABLE == self.tag {
            raw & MAX_STORABLE
        } else {
            u64::MAX
        }
    }

    /// Unconditionally stores `value` into cell `i` (non-racing contexts
    /// only). `u64::MAX` stores the logical infinity.
    #[inline]
    pub fn store(&self, i: usize, value: u64) {
        if value > MAX_STORABLE {
            debug_assert_eq!(value, u64::MAX, "value exceeds the 48-bit epoch-array range");
            // ORDERING: single self-contained word, non-racing contexts
            // only (see doc) — same argument as `load` above.
            self.raw[i].store(EMPTY, Ordering::Relaxed);
        } else {
            // ORDERING: see the EMPTY store above.
            self.raw[i].store(self.tag | value, Ordering::Relaxed);
        }
    }

    /// Priority-write: lowers cell `i` to `value` iff `value` is strictly
    /// below the current logical content (stale cells count as `u64::MAX`).
    /// Returns `true` iff this call strictly lowered the cell — "the
    /// relaxation succeeded". Writing `u64::MAX` is a no-op.
    #[inline]
    pub fn write_min(&self, i: usize, value: u64) -> bool {
        if value > MAX_STORABLE {
            debug_assert_eq!(value, u64::MAX, "value exceeds the 48-bit epoch-array range");
            return false;
        }
        let tagged = self.tag | value;
        crate::model::yield_point();
        // A stale entry carries a strictly larger (older-epoch) tag, so the
        // plain fetch_min both replaces it and reports a strict lowering.
        // ORDERING: the atomic RMW already totally orders concurrent
        // write_mins on this cell; the tag+distance are one word, so no
        // separate data needs an Acquire/Release edge — the engine reads
        // results only after the join barrier of the parallel step.
        self.raw[i].fetch_min(tagged, Ordering::Relaxed) > tagged
    }

    /// Materialises the first `n` cells as a plain vector (`u64::MAX` for
    /// anything untouched this epoch) — the per-result output copy.
    pub fn snapshot(&self, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.load(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn starts_and_resets_to_infinity() {
        let mut a = EpochMinArray::new();
        assert!(a.is_empty());
        assert!(a.ensure(8), "first ensure allocates");
        assert!(!a.ensure(8), "same-size ensure reuses");
        assert!(!a.ensure(3), "smaller ensure reuses");
        assert_eq!(a.len(), 8);
        assert!((0..8).all(|i| a.load(i) == u64::MAX));
        a.store(2, 42);
        assert_eq!(a.load(2), 42);
        a.advance();
        assert_eq!(a.load(2), u64::MAX, "advance logically clears");
    }

    #[test]
    fn write_min_is_strict_and_epoch_scoped() {
        let mut a = EpochMinArray::new();
        a.ensure(4);
        assert!(a.write_min(0, 10), "lowering infinity succeeds");
        assert!(!a.write_min(0, 10), "equal value is not strict");
        assert!(!a.write_min(0, 11), "larger value fails");
        assert!(a.write_min(0, 9));
        assert!(!a.write_min(0, u64::MAX), "infinity never lowers");
        a.advance();
        assert_eq!(a.load(0), u64::MAX);
        assert!(a.write_min(0, 1_000), "stale entry counts as infinity");
        assert_eq!(a.load(0), 1_000);
    }

    #[test]
    fn store_accepts_infinity() {
        let mut a = EpochMinArray::new();
        a.ensure(2);
        a.store(0, 5);
        a.store(0, u64::MAX);
        assert_eq!(a.load(0), u64::MAX);
        assert!(a.write_min(0, 7), "explicit infinity is lowerable again");
    }

    #[test]
    fn survives_full_tag_wraparound() {
        let mut a = EpochMinArray::new();
        a.ensure(3);
        a.store(1, 7);
        // Drive through the whole tag space (plus the refill) twice.
        for round in 0..(2 * EPOCHS_PER_FILL + 3) {
            a.advance();
            assert_eq!(a.load(1), u64::MAX, "round {round}: reset must hold");
            assert!(a.write_min(1, round));
            assert_eq!(a.load(1), round);
        }
    }

    #[test]
    fn concurrent_write_min_fixpoint() {
        let mut a = EpochMinArray::new();
        a.ensure(1);
        a.advance();
        (0..10_000u64).into_par_iter().for_each(|i| {
            a.write_min(0, 10_000 - i);
        });
        assert_eq!(a.load(0), 1);
    }

    #[test]
    fn exactly_one_winner_per_lowering() {
        let mut a = EpochMinArray::new();
        a.ensure(1);
        a.store(0, 100);
        let wins: usize = (0..1000).into_par_iter().map(|_| usize::from(a.write_min(0, 50))).sum();
        assert_eq!(wins, 1);
    }

    #[test]
    fn snapshot_mixes_written_and_stale() {
        let mut a = EpochMinArray::new();
        a.ensure(4);
        a.store(1, 11);
        a.store(3, 33);
        assert_eq!(a.snapshot(4), vec![u64::MAX, 11, u64::MAX, 33]);
    }
}
