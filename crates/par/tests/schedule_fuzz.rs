//! Seeded schedule-fuzz stress tests for [`rs_par::EpochMinArray`].
//!
//! Each test replays its scenario across many seeds of the
//! [`rs_par::model`] preemption stream. With `--features schedule_fuzz`
//! the yield points inside `write_min`/`advance` stretch the racy
//! windows differently per seed; without the feature they compile to
//! no-ops and the tests still run as plain (narrower-window) stress
//! tests, so they stay in the default suite at a reduced seed count.
//!
//! Invariants shadow-checked here, per ISSUE:
//! - distances are monotonically non-increasing within an epoch
//!   (a priority-write can only lower a cell);
//! - contended `write_min` converges to the true minimum (fixpoint);
//! - exactly one racer observes "I lowered it" per strict lowering;
//! - epoch rollover — including the physical refill when the tag space
//!   wraps — never resurrects a previous epoch's value.
//!
//! Run with `RS_NUM_THREADS=1` and the machine default; the pool-based
//! test below picks the thread count up from the environment.
//!
//! Every scenario runs through [`model::run_scenario`], which captures
//! the yield-decision stream per seed: a failing seed prints the path of
//! an `RSTRACE1` trace plus the `cargo xtask replay` command that
//! re-executes that exact schedule.

use std::sync::atomic::{AtomicBool, Ordering};

use rayon::prelude::*;
use rs_par::epoch::EPOCHS_PER_FILL;
use rs_par::model::ScenarioSpec;
use rs_par::{model, EpochMinArray};

/// The [`ScenarioSpec`] for a test in this file.
fn spec(scenario: &str) -> ScenarioSpec {
    ScenarioSpec::new(env!("CARGO_PKG_NAME"), file!(), scenario)
}

/// Full seed budget under `schedule_fuzz` (≥1000 schedules, per the
/// acceptance bar); trimmed when the yields are no-ops anyway so the
/// default suite stays fast.
const SEEDS: u64 = if cfg!(feature = "schedule_fuzz") { 1024 } else { 256 };

/// SplitMix64 for deterministic per-seed test data (independent of the
/// model's preemption stream).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Epoch rollover under contention: two writer threads storm `write_min`
/// while a reader polls one cell, across four epochs that straddle the
/// physical tag-space refill. Checks the fixpoint per round, the
/// monotone non-increasing read sequence within each epoch, and that
/// `advance` (logical or physical) always resets every cell.
#[test]
fn fuzz_epoch_rollover_under_contention() {
    const CELLS: usize = 8;
    const WRITES: usize = 32;
    const ROUNDS: u64 = 4;
    model::run_scenario(spec("fuzz_epoch_rollover_under_contention"), SEEDS, |seed| {
        let mut a = EpochMinArray::new();
        a.ensure(CELLS);
        // Park the tag just shy of the wrap so the ROUNDS below cross the
        // one `advance` that pays the physical O(n) refill.
        for _ in 0..(EPOCHS_PER_FILL - 2) {
            a.advance();
        }
        let mut rng = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        for round in 0..ROUNDS {
            assert!(
                (0..CELLS).all(|i| a.load(i) == u64::MAX),
                "seed {seed} round {round}: advance must reset every cell"
            );
            // Deterministic per-thread write plans, so the expected
            // fixpoint is computable by sequential replay.
            let plans: Vec<Vec<(usize, u64)>> = (0..2)
                .map(|_| {
                    (0..WRITES)
                        .map(|_| (mix(&mut rng) as usize % CELLS, mix(&mut rng) % 1_000_000))
                        .collect()
                })
                .collect();
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                // Reader: within one epoch the cell it watches must never
                // go back up (write_min only lowers; stale reads as ∞).
                s.spawn(|| {
                    let mut last = u64::MAX;
                    while !stop.load(Ordering::SeqCst) {
                        let v = a.load(0);
                        assert!(
                            v <= last,
                            "seed {seed} round {round}: cell 0 rose {last} -> {v} within an epoch"
                        );
                        last = v;
                    }
                });
                let writers: Vec<_> = plans
                    .iter()
                    .map(|plan| {
                        let a = &a;
                        s.spawn(move || {
                            for &(i, v) in plan {
                                a.write_min(i, v);
                            }
                        })
                    })
                    .collect();
                for w in writers {
                    w.join().expect("writer must not panic");
                }
                stop.store(true, Ordering::SeqCst);
            });
            let mut expect = [u64::MAX; CELLS];
            for &(i, v) in plans.iter().flatten() {
                expect[i] = expect[i].min(v);
            }
            for (i, &want) in expect.iter().enumerate() {
                assert_eq!(
                    a.load(i),
                    want,
                    "seed {seed} round {round}: cell {i} missed the contended fixpoint"
                );
            }
            a.advance();
        }
    });
}

/// Exactly one racer per strict lowering: both threads offer the same
/// smaller value; precisely one `write_min` may report success.
///
/// This is also CI's replay-smoke scenario: `write_min` is
/// `fetch_min`-based (no retry loop), so the yield-point call count is
/// schedule-independent and a strict replay consumes the trace exactly.
#[test]
fn fuzz_exactly_one_lowering_winner() {
    model::run_scenario(spec("fuzz_exactly_one_lowering_winner"), SEEDS, |seed| {
        let mut a = EpochMinArray::new();
        a.ensure(1);
        a.store(0, 100);
        let wins = std::thread::scope(|s| {
            let t = s.spawn(|| usize::from(a.write_min(0, 50)));
            let here = usize::from(a.write_min(0, 50));
            here + t.join().expect("no panic")
        });
        assert_eq!(wins, 1, "seed {seed}: a strict lowering must have exactly one winner");
        assert_eq!(a.load(0), 50);
    });
}

/// The same fixpoint property through the real work-stealing pool (the
/// path production solvers use), honouring `RS_NUM_THREADS`: relaxations
/// fan out over the pool's workers while the model stream perturbs both
/// the deque operations and the `fetch_min` sites.
#[test]
fn fuzz_pool_contended_relaxation_fixpoint() {
    const N: u64 = 512;
    // Pool spin-up dominates per-seed cost; a smaller seed sweep still
    // exercises plenty of distinct interleavings because each par_iter
    // split pattern differs.
    let seeds = if cfg!(feature = "schedule_fuzz") { 64u64 } else { 16 };
    let mut a = EpochMinArray::new();
    a.ensure(4);
    model::run_scenario(spec("fuzz_pool_contended_relaxation_fixpoint"), seeds, |seed| {
        a.advance();
        (0..N).into_par_iter().for_each(|i| {
            a.write_min((i % 4) as usize, 1 + (i ^ (seed & 63)));
        });
        for cell in 0..4 {
            let want = (0..N)
                .filter(|i| (i % 4) as usize == cell)
                .map(|i| 1 + (i ^ (seed & 63)))
                .min()
                .expect("cell nonempty");
            assert_eq!(a.load(cell), want, "seed {seed}: pool relaxation missed cell {cell}");
        }
    });
}
