//! Capture/replay reproducibility tests for the [`rs_par::model`]
//! schedule harness (acceptance bar: recording a schedule and replaying
//! it yields the identical yield sequence — compared on `yields_taken`
//! *and* the per-call decision bytes).
//!
//! These live in their own integration binary on purpose: the capture
//! log is process-global, so no unrelated test may draw yield points
//! while a recording is open. Tests here serialize through [`serial`].
//!
//! Everything is gated on `schedule_fuzz`: without the feature every
//! yield point is a no-op and there is no schedule to capture.

#![cfg(feature = "schedule_fuzz")]

use std::sync::{Mutex, MutexGuard, PoisonError};

use rs_par::{model, EpochMinArray};

/// One recording/replay session at a time within this binary.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A deterministic single-threaded workload: every `yield_point` under
/// `write_min`/`load`/`advance` is reached in program order, so the
/// call count and order are exactly reproducible.
fn single_thread_workload() {
    let mut a = EpochMinArray::new();
    a.ensure(8);
    for i in 0..64u64 {
        a.write_min((i % 8) as usize, 1000 - i);
        assert!(a.load((i % 8) as usize) <= 1000 - i);
    }
    a.advance();
    assert_eq!(a.load(0), u64::MAX);
}

/// A two-thread workload on the `fetch_min` no-retry path: which thread
/// arrives at each yield point first varies, but the *number* of calls
/// per thread is schedule-independent, so the total is deterministic
/// and a replay consumes a recorded trace exactly.
fn multi_thread_workload() {
    let mut a = EpochMinArray::new();
    a.ensure(4);
    a.store(0, u64::MAX);
    std::thread::scope(|s| {
        let t = s.spawn(|| {
            for i in 0..32u64 {
                a.write_min((i % 4) as usize, 500 - i);
            }
        });
        for i in 0..32u64 {
            a.write_min((i % 4) as usize, 600 - i);
        }
        t.join().expect("writer must not panic");
    });
    for cell in 0..4 {
        assert!(a.load(cell) <= 500);
    }
}

/// Records a run of `workload`, replays the log, and asserts the replay
/// reproduced the schedule: same decision bytes (echo-recorded during
/// replay), every decision consumed, and the same `yields_taken` delta.
fn assert_replay_identical(workload: fn(), seed: u64) {
    model::seed_schedule(seed);
    let yields_before = model::yields_taken();
    model::start_recording();
    workload();
    let recorded = model::stop_recording();
    let recorded_yields = model::yields_taken() - yields_before;
    assert!(!recorded.is_empty(), "the workload must cross yield points");
    assert_eq!(
        recorded_yields,
        recorded.iter().filter(|&&d| d == model::DECISION_YIELD).count() as u64,
        "the yield counter must agree with the recorded decision bytes"
    );

    // Replay with echo-recording on: the i-th call gets the i-th byte.
    let yields_before = model::yields_taken();
    model::start_replay(recorded.clone());
    model::start_recording();
    workload();
    let echoed = model::stop_recording();
    let (consumed, len) = model::stop_replay();
    let replay_yields = model::yields_taken() - yields_before;

    assert_eq!((consumed, len), (recorded.len(), recorded.len()), "replay must consume exactly");
    assert_eq!(echoed, recorded, "per-call decisions must be identical");
    assert_eq!(replay_yields, recorded_yields, "yields_taken must be identical");
}

#[test]
fn record_then_replay_identical_single_thread() {
    let _guard = serial();
    for seed in [0, 7, 99] {
        assert_replay_identical(single_thread_workload, seed);
    }
}

#[test]
fn record_then_replay_identical_multi_thread() {
    let _guard = serial();
    for seed in [1, 13] {
        assert_replay_identical(multi_thread_workload, seed);
    }
}

/// Replaying a trace through [`model::run_scenario`] end-to-end: record
/// a scenario via `RS_RECORD_TRACE` semantics (here: the direct API, to
/// stay hermetic), then drive the same body under `start_replay` and
/// check the decision stream is the recorded one. The full file-based
/// loop (`RS_RECORD_TRACE` → trace file → `cargo xtask replay`) is
/// exercised by CI's replay smoke.
#[test]
fn trace_round_trip_preserves_the_schedule() {
    let _guard = serial();
    model::seed_schedule(42);
    model::start_recording();
    single_thread_workload();
    let decisions = model::stop_recording();

    let trace = model::Trace {
        package: "rs_par".into(),
        target: "replay".into(),
        scenario: "trace_round_trip_preserves_the_schedule".into(),
        threads_env: String::new(),
        seed: 42,
        yields_taken: decisions.iter().filter(|&&d| d == model::DECISION_YIELD).count() as u64,
        decisions,
    };
    let parsed = model::Trace::parse(&trace.to_bytes()).expect("self-serialized trace parses");
    assert_eq!(parsed, trace);

    model::start_replay(parsed.decisions.clone());
    model::start_recording();
    single_thread_workload();
    let echoed = model::stop_recording();
    let (consumed, len) = model::stop_replay();
    assert_eq!((consumed, len), (trace.decisions.len(), trace.decisions.len()));
    assert_eq!(echoed, trace.decisions);
}
