//! Partition views: vertex→part assignments and induced subgraphs with
//! global↔local vertex remapping.
//!
//! This is the graph-layer substrate under `rs_shard`: a
//! [`PartitionAssignment`] says which part owns each vertex, and
//! [`induced_subgraph`] materialises one part as a self-contained
//! [`CsrGraph`] over dense local ids plus the mapping back to the input
//! graph's ids. Cut arcs (endpoints in different parts) are *dropped* by
//! the induced view — they live in the boundary skeleton the shard layer
//! builds on top — so distances inside a part view are within-part
//! distances: upper bounds on the input graph's distances, exact for any
//! pair whose shortest path never leaves the part.

use crate::{CsrGraph, VertexId};

/// A total assignment of vertices to `num_parts` parts.
///
/// Parts may be empty (a part that never claimed a vertex); every vertex
/// belongs to exactly one part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionAssignment {
    part_of: Vec<u32>,
    num_parts: usize,
}

impl PartitionAssignment {
    /// Wraps a per-vertex part array.
    ///
    /// # Panics
    /// If any entry is `>= num_parts` or `num_parts == 0`.
    pub fn new(part_of: Vec<u32>, num_parts: usize) -> PartitionAssignment {
        assert!(num_parts > 0, "a partition needs at least one part");
        for (v, &p) in part_of.iter().enumerate() {
            assert!((p as usize) < num_parts, "vertex {v} assigned to out-of-range part {p}");
        }
        PartitionAssignment { part_of, num_parts }
    }

    /// The part owning `v`.
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.part_of[v as usize]
    }

    /// Number of parts (fixed at construction; parts may be empty).
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of assigned vertices (the graph's vertex count).
    pub fn len(&self) -> usize {
        self.part_of.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.part_of.is_empty()
    }

    /// The raw per-vertex part array.
    pub fn as_slice(&self) -> &[u32] {
        &self.part_of
    }

    /// Per-part member lists, each sorted ascending by global id — the
    /// order [`induced_subgraph`] uses for local ids, so
    /// `members()[p][local]` is the global id of part `p`'s vertex
    /// `local`.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut members = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.part_of.iter().enumerate() {
            members[p as usize].push(v as VertexId);
        }
        members
    }
}

/// One part of a partitioned graph: the induced subgraph over dense local
/// ids plus the local→global mapping.
#[derive(Debug, Clone)]
pub struct SubgraphView {
    /// The induced subgraph (cut arcs dropped), over local ids
    /// `0..to_global.len()`.
    pub graph: CsrGraph,
    /// `to_global[local]` = the input graph's id; sorted ascending, so
    /// [`SubgraphView::to_local`] is a binary search.
    pub to_global: Vec<VertexId>,
}

impl SubgraphView {
    /// The local id of global vertex `global`, if it belongs to this part.
    pub fn to_local(&self, global: VertexId) -> Option<VertexId> {
        self.to_global.binary_search(&global).ok().map(|i| i as VertexId)
    }

    /// The global id of local vertex `local`.
    pub fn to_global(&self, local: VertexId) -> VertexId {
        self.to_global[local as usize]
    }

    /// Number of vertices in the part.
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// True for an empty part.
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }
}

/// Extracts the subgraph of `g` induced by `members` (which must be
/// sorted ascending and duplicate-free), remapped to dense local ids in
/// `members` order.
///
/// Runs in `O(|members| + deg(members))`: `g`'s adjacency is sorted by
/// global target id and local ids preserve global order, so filtering and
/// remapping keeps each local adjacency list sorted — the output is a
/// valid [`CsrGraph`] without re-sorting.
///
/// # Panics
/// If `members` is not sorted ascending / contains duplicates or ids out
/// of range.
pub fn induced_subgraph(g: &CsrGraph, members: &[VertexId]) -> SubgraphView {
    assert!(members.windows(2).all(|w| w[0] < w[1]), "members must be sorted and distinct");
    if let Some(&last) = members.last() {
        assert!((last as usize) < g.num_vertices(), "member {last} out of range");
    }
    // Dense global→local map; u32::MAX marks "not in this part".
    let mut local_of = vec![VertexId::MAX; g.num_vertices()];
    for (local, &global) in members.iter().enumerate() {
        local_of[global as usize] = local as VertexId;
    }
    let mut offsets = Vec::with_capacity(members.len() + 1);
    offsets.push(0usize);
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    for &global in members {
        for (t, w) in g.neighbors(global).iter().zip(g.weights_of(global)) {
            let local = local_of[*t as usize];
            if local != VertexId::MAX {
                targets.push(local);
                weights.push(*w);
            }
        }
        offsets.push(targets.len());
    }
    SubgraphView {
        graph: CsrGraph::from_parts(offsets, targets, weights),
        to_global: members.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, EdgeListBuilder};

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut b = EdgeListBuilder::new(6);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 7); // cut when {0,1} | {2,..}
        b.add_edge(2, 3, 1);
        b.add_edge(3, 5, 2);
        let g = b.build();
        let view = induced_subgraph(&g, &[2, 3, 5]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.to_global(0), 2);
        assert_eq!(view.to_local(5), Some(2));
        assert_eq!(view.to_local(1), None);
        // Edges 2-3 and 3-5 survive (remapped); 1-2 is cut.
        assert_eq!(view.graph.num_edges(), 2);
        assert_eq!(view.graph.arc_weight(0, 1), Some(1));
        assert_eq!(view.graph.arc_weight(1, 2), Some(2));
        assert_eq!(view.graph.arc_weight(0, 2), None);
        view.graph.check_invariants().expect("valid CSR");
    }

    #[test]
    fn assignment_members_match_local_order() {
        let g = gen::grid2d(4, 4);
        let part_of: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let asg = PartitionAssignment::new(part_of, 3);
        let members = asg.members();
        assert_eq!(members.iter().map(|m| m.len()).sum::<usize>(), g.num_vertices());
        for (p, m) in members.iter().enumerate() {
            assert!(m.windows(2).all(|w| w[0] < w[1]), "sorted members");
            let view = induced_subgraph(&g, m);
            for (local, &global) in m.iter().enumerate() {
                assert_eq!(asg.part_of(global), p as u32);
                assert_eq!(view.to_local(global), Some(local as VertexId));
            }
        }
    }

    #[test]
    #[should_panic(expected = "sorted and distinct")]
    fn unsorted_members_rejected() {
        let g = gen::grid2d(2, 2);
        induced_subgraph(&g, &[1, 0]);
    }
}
