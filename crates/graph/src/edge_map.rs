//! Ligra-style `edge_map` with sparse/dense direction switching.
//!
//! `edge_map(g, frontier, update, cond)` applies `update(u, v, w)` to every
//! arc `(u, v, w)` with `u` in the frontier and `cond(v)` true, returning the
//! set of `v` for which some call returned `true`. `update` must be safe to
//! call concurrently (in the engines it is an atomic priority-write).
//!
//! The sparse path scatters from frontier vertices and deduplicates output
//! with an atomic bitset; the dense path gathers at each destination, which
//! needs no atomics for the output flags. The crossover follows Ligra's
//! `|F| + deg(F) > n / 20` rule.

use rayon::prelude::*;

use rs_par::{AtomicBitset, VertexSubset};

use crate::{CsrGraph, VertexId, Weight};

/// Result of an [`edge_map`]: the newly activated vertex subset.
pub type EdgeMapResult = VertexSubset;

/// Parallel frontier expansion; see module docs.
pub fn edge_map<U, C>(g: &CsrGraph, frontier: &VertexSubset, update: U, cond: C) -> EdgeMapResult
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let n = g.num_vertices();
    match frontier {
        VertexSubset::Sparse { ids, .. } => {
            let deg_sum: usize = ids.iter().map(|&u| g.degree(u)).sum();
            if frontier.should_densify(deg_sum) {
                edge_map_dense(g, &frontier.to_dense(), update, cond)
            } else {
                edge_map_sparse(g, n, ids, update, cond)
            }
        }
        VertexSubset::Dense { .. } => edge_map_dense(g, frontier, update, cond),
    }
}

/// Sparse (scatter) direction: parallel over frontier vertices.
pub fn edge_map_sparse<U, C>(
    g: &CsrGraph,
    n: usize,
    frontier_ids: &[VertexId],
    update: U,
    cond: C,
) -> EdgeMapResult
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let claimed = AtomicBitset::new(n);
    let next: Vec<VertexId> = frontier_ids
        .par_iter()
        .fold(Vec::new, |mut acc: Vec<VertexId>, &u| {
            for (v, w) in g.edges(u) {
                if cond(v) && update(u, v, w) && claimed.set(v as usize) {
                    acc.push(v);
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    VertexSubset::from_ids(n, next)
}

/// Dense (gather) direction: parallel over all destinations, scanning
/// in-arcs (identical to out-arcs on these symmetric graphs).
pub fn edge_map_dense<U, C>(
    g: &CsrGraph,
    frontier: &VertexSubset,
    update: U,
    cond: C,
) -> EdgeMapResult
where
    U: Fn(VertexId, VertexId, Weight) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let n = g.num_vertices();
    let dense = frontier.to_dense();
    let in_frontier = |u: VertexId| dense.contains(u);
    let flags: Vec<bool> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            if !cond(v) {
                return false;
            }
            let mut hit = false;
            for (u, w) in g.edges(v) {
                if in_frontier(u) && update(u, v, w) {
                    hit = true;
                }
            }
            hit
        })
        .collect();
    VertexSubset::from_flags(flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rs_par::AtomicMinU64;

    /// One BFS level via edge_map: unvisited neighbors of the frontier.
    fn bfs_level(g: &CsrGraph, frontier: &VertexSubset, visited: &AtomicBitset) -> VertexSubset {
        edge_map(g, frontier, |_, v, _| visited.set(v as usize), |v| !visited.get(v as usize))
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = gen::path(6);
        let visited = AtomicBitset::new(6);
        visited.set(0);
        let mut frontier = VertexSubset::single(6, 0);
        let mut levels = vec![vec![0u32]];
        while !frontier.is_empty() {
            frontier = bfs_level(&g, &frontier, &visited);
            if !frontier.is_empty() {
                levels.push(frontier.to_ids());
            }
        }
        assert_eq!(levels, vec![vec![0], vec![1], vec![2], vec![3], vec![4], vec![5]]);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let g = gen::grid2d(15, 17);
        let n = g.num_vertices();
        let frontier = VertexSubset::from_ids(n, (0..40).map(|i| i * 3).collect());
        // Relax distances from an all-INF state; both directions must
        // produce the same activation set and the same distance array.
        let run = |dense: bool| {
            let dist: Vec<AtomicMinU64> = (0..n).map(|_| AtomicMinU64::new(u64::MAX)).collect();
            for v in frontier.to_ids() {
                dist[v as usize].store(0);
            }
            let update = |u: VertexId, v: VertexId, w: Weight| {
                let cand = dist[u as usize].load().saturating_add(w as u64);
                dist[v as usize].write_min(cand)
            };
            let cond = |_v: VertexId| true;
            let out = if dense {
                edge_map_dense(&g, &frontier, update, cond)
            } else {
                edge_map_sparse(&g, n, &frontier.to_ids(), update, cond)
            };
            let d: Vec<u64> = dist.iter().map(|a| a.load()).collect();
            (out.to_ids(), d)
        };
        let (sparse_ids, sparse_d) = run(false);
        let (dense_ids, dense_d) = run(true);
        assert_eq!(sparse_ids, dense_ids);
        assert_eq!(sparse_d, dense_d);
        assert!(!sparse_ids.is_empty());
    }

    #[test]
    fn cond_filters_targets() {
        let g = gen::star(10);
        let frontier = VertexSubset::single(10, 0);
        let out = edge_map(&g, &frontier, |_, _, _| true, |v| v % 2 == 0);
        assert_eq!(out.to_ids(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn output_deduplicated() {
        // Both endpoints of an edge in the frontier targeting the same third
        // vertex: the result must contain it once.
        let g = gen::complete(4);
        let frontier = VertexSubset::from_ids(4, vec![0, 1, 2]);
        let out = edge_map(&g, &frontier, |_, _, _| true, |v| v == 3);
        assert_eq!(out.to_ids(), vec![3]);
    }

    #[test]
    fn empty_frontier_empty_result() {
        let g = gen::cycle(5);
        let out = edge_map(&g, &VertexSubset::empty(5), |_, _, _| true, |_| true);
        assert!(out.is_empty());
    }
}
