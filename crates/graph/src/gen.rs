//! Seeded synthetic graph generators.
//!
//! These supply the paper's six-graph evaluation suite (§5.1). The grids are
//! the paper's own constructions; the road networks and webgraphs are
//! structural stand-ins for the SNAP datasets, chosen to reproduce the
//! properties the paper credits for its results (see DESIGN.md §5):
//! constant-degree near-planarity for roads, power-law hubs for webgraphs.
//!
//! All generators return unit-weighted topologies; apply
//! [`crate::weights::reweight`] for the weighted experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::builder::build_symmetric;
use crate::{CsrGraph, Edge, VertexId};

/// 2D grid (`nx × ny` lattice). The paper uses 1000×1000.
pub fn grid2d(nx: usize, ny: usize) -> CsrGraph {
    let id = |x: usize, y: usize| (x * ny + y) as VertexId;
    let mut edges: Vec<Edge> = Vec::with_capacity(2 * nx * ny);
    for x in 0..nx {
        for y in 0..ny {
            if x + 1 < nx {
                edges.push((id(x, y), id(x + 1, y), 1));
            }
            if y + 1 < ny {
                edges.push((id(x, y), id(x, y + 1), 1));
            }
        }
    }
    build_symmetric(nx * ny, &edges)
}

/// 3D grid (`nx × ny × nz` lattice).
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    let id = |x: usize, y: usize, z: usize| ((x * ny + y) * nz + z) as VertexId;
    let mut edges: Vec<Edge> = Vec::with_capacity(3 * nx * ny * nz);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                if x + 1 < nx {
                    edges.push((id(x, y, z), id(x + 1, y, z), 1));
                }
                if y + 1 < ny {
                    edges.push((id(x, y, z), id(x, y + 1, z), 1));
                }
                if z + 1 < nz {
                    edges.push((id(x, y, z), id(x, y, z + 1), 1));
                }
            }
        }
    }
    build_symmetric(nx * ny * nz, &edges)
}

/// Road-network stand-in: a `side × side` lattice with ~30% of lattice edges
/// removed, a sprinkle of diagonals, and removed edges re-added where needed
/// to keep the graph connected.
///
/// Matches the SNAP road networks' regime: average degree ≈ 2.8–3.2 (SNAP
/// roadNet-PA: 2.83 arcs/vertex), near-planar, hop diameter `Θ(√n)`. These
/// are the properties §5 credits for deep shortest-path trees and expensive
/// shortcutting at large ρ.
pub fn road_network(side: usize, seed: u64) -> CsrGraph {
    assert!(side >= 2);
    let n = side * side;
    let id = |x: usize, y: usize| (x * side + y) as VertexId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept: Vec<Edge> = Vec::new();
    let mut removed: Vec<Edge> = Vec::new();
    for x in 0..side {
        for y in 0..side {
            let consider =
                |e: Edge, rng: &mut StdRng, kept: &mut Vec<Edge>, removed: &mut Vec<Edge>| {
                    if rng.random_range(0.0..1.0) < 0.70 {
                        kept.push(e);
                    } else {
                        removed.push(e);
                    }
                };
            if x + 1 < side {
                consider((id(x, y), id(x + 1, y), 1), &mut rng, &mut kept, &mut removed);
            }
            if y + 1 < side {
                consider((id(x, y), id(x, y + 1), 1), &mut rng, &mut kept, &mut removed);
            }
            // Occasional diagonal "shortcut road" for irregularity.
            if x + 1 < side && y + 1 < side && rng.random_range(0.0..1.0) < 0.03 {
                kept.push((id(x, y), id(x + 1, y + 1), 1));
            }
        }
    }
    // Re-add removed lattice edges that bridge components (deterministic
    // shuffled order) so the result is connected like a real road network.
    let mut uf = UnionFind::new(n);
    for &(u, v, _) in &kept {
        uf.union(u as usize, v as usize);
    }
    removed.shuffle(&mut rng);
    for &(u, v, w) in &removed {
        if uf.union(u as usize, v as usize) {
            kept.push((u, v, w));
        }
    }
    build_symmetric(n, &kept)
}

/// Webgraph stand-in: Barabási–Albert preferential attachment.
///
/// Every new vertex attaches to `edges_per_vertex` existing vertices chosen
/// proportionally to degree, yielding the power-law "hubs" the paper credits
/// for the webgraph results (few steps even at ρ = 1, DP ≪ Greedy).
/// SNAP-matched densities: web-Stanford ≈ 7 edges/vertex, web-NotreDame ≈ 3.
pub fn scale_free(n: usize, edges_per_vertex: usize, seed: u64) -> CsrGraph {
    let m = edges_per_vertex.max(1);
    assert!(n > m, "need more vertices than edges-per-vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * m);
    // Degree-proportional sampling via the repeated-endpoints list.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique on m+1 vertices.
    for u in 0..=m {
        for v in (u + 1)..=m {
            edges.push((u as VertexId, v as VertexId, 1));
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        chosen.clear();
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v as VertexId, t, 1));
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    build_symmetric(n, &edges)
}

/// Webgraph stand-in with crawl structure: a Barabási–Albert core plus
/// path "whiskers" hanging off random core vertices.
///
/// Pure preferential attachment at web-like densities has a 3–4 hop
/// diameter, but the SNAP web crawls the paper evaluates are much deeper
/// (BFS from a random page takes ~28 rounds on web-NotreDame and ~109 on
/// web-Stanford — Table 4's ρ=1 column) because crawls contain long page
/// chains. This generator reproduces both properties the paper's analysis
/// leans on: power-law hubs (what makes DP ≪ Greedy in §5.2 and keeps
/// step counts low in §5.3) and deep tendrils (what gives balls a hop
/// radius larger than k in the first place).
///
/// `whisker_frac` of the vertices form paths of length uniform in
/// `1..=whisker_max`, each attached to a degree-biased core vertex.
pub fn webgraph(
    n: usize,
    core_edges_per_vertex: usize,
    whisker_frac: f64,
    whisker_max: usize,
    seed: u64,
) -> CsrGraph {
    assert!((0.0..1.0).contains(&whisker_frac) && whisker_max >= 1);
    let n_whisker =
        ((n as f64 * whisker_frac) as usize).min(n.saturating_sub(core_edges_per_vertex + 2));
    let n_core = n - n_whisker;
    let core = scale_free(n_core, core_edges_per_vertex, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77AB_C0DE);
    let mut edges: Vec<Edge> = core.all_arcs().filter(|&(u, v, _)| u < v).collect();
    // Degree-biased anchors: reuse the endpoints trick over core arcs.
    let endpoints: Vec<VertexId> = core.all_arcs().map(|(u, _, _)| u).collect();
    let mut next = n_core as VertexId;
    while (next as usize) < n {
        let len = rng.random_range(1..=whisker_max).min(n - next as usize);
        let anchor = endpoints[rng.random_range(0..endpoints.len())];
        let mut prev = anchor;
        for _ in 0..len {
            edges.push((prev, next, 1));
            prev = next;
            next += 1;
        }
    }
    build_symmetric(n, &edges)
}

/// Erdős–Rényi G(n, m): `m` uniform random vertex pairs (duplicates and
/// self-pairs are dropped by the builder, so the edge count is ≤ `m`).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<Edge> = (0..m)
        .map(|_| (rng.random_range(0..n as VertexId), rng.random_range(0..n as VertexId), 1))
        .collect();
    build_symmetric(n, &edges)
}

/// Simple path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<Edge> =
        (0..n.saturating_sub(1)).map(|i| (i as VertexId, i as VertexId + 1, 1)).collect();
    build_symmetric(n, &edges)
}

/// Cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut edges: Vec<Edge> = (0..n - 1).map(|i| (i as VertexId, i as VertexId + 1, 1)).collect();
    edges.push((n as VertexId - 1, 0, 1));
    build_symmetric(n, &edges)
}

/// Star with center 0 and `n - 1` leaves.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<Edge> = (1..n).map(|i| (0, i as VertexId, 1)).collect();
    build_symmetric(n, &edges)
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges: Vec<Edge> = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as VertexId, v as VertexId, 1));
        }
    }
    build_symmetric(n, &edges)
}

/// The pathological sparse graph of Figure 2: `cols` columns of `d` vertices
/// with complete bipartite edges between consecutive columns.
///
/// With `cols = 3` and `d = ⌊ρ/3⌋ − 1`, a ball search from any vertex must
/// examine `Θ(d²)` edges to reach `ρ > 3d` vertices, showing the `O(ρ²)`
/// preprocessing bound of Lemma 4.2 is tight.
pub fn fig2_gadget(d: usize, cols: usize) -> CsrGraph {
    assert!(d >= 1 && cols >= 2);
    let n = d * cols;
    let id = |c: usize, i: usize| (c * d + i) as VertexId;
    let mut edges: Vec<Edge> = Vec::with_capacity((cols - 1) * d * d);
    for c in 0..cols - 1 {
        for i in 0..d {
            for j in 0..d {
                edges.push((id(c, i), id(c + 1, j), 1));
            }
        }
    }
    build_symmetric(n, &edges)
}

/// Minimal union-find used by the road-network generator.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: usize) -> u32 {
        let mut r = x as u32;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        // Path compression.
        let mut c = x as u32;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    /// Unions the sets of `a` and `b`; true iff they were distinct.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra as usize] = rb;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_connected;

    #[test]
    fn grid2d_shape() {
        let g = grid2d(4, 5);
        assert_eq!(g.num_vertices(), 20);
        // 3*5 horizontal + 4*4 vertical = 31 edges.
        assert_eq!(g.num_edges(), 31);
        assert!(is_connected(&g));
        g.check_invariants().unwrap();
    }

    #[test]
    fn grid3d_shape() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.num_vertices(), 27);
        // 3 * (2*3*3) = 54 edges.
        assert_eq!(g.num_edges(), 54);
        assert!(is_connected(&g));
    }

    #[test]
    fn road_network_connected_and_sparse() {
        let g = road_network(40, 3);
        assert_eq!(g.num_vertices(), 1600);
        assert!(is_connected(&g), "reconnection pass must leave one component");
        let avg_deg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!((2.2..=3.6).contains(&avg_deg), "road-like average degree, got {avg_deg}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn road_network_deterministic() {
        assert_eq!(road_network(20, 9), road_network(20, 9));
        assert_ne!(road_network(20, 9), road_network(20, 10));
    }

    #[test]
    fn scale_free_has_hubs() {
        let g = scale_free(2000, 4, 11);
        assert_eq!(g.num_vertices(), 2000);
        assert!(is_connected(&g), "BA graphs are connected by construction");
        let max_deg = (0..2000u32).map(|v| g.degree(v)).max().unwrap();
        let avg_deg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 8.0 * avg_deg,
            "power-law hub expected: max {max_deg}, avg {avg_deg}"
        );
    }

    #[test]
    fn webgraph_has_hubs_and_depth() {
        let g = webgraph(4000, 7, 0.35, 60, 5);
        assert_eq!(g.num_vertices(), 4000);
        assert!(is_connected(&g), "whiskers attach to the core");
        let max_deg = (0..4000u32).map(|v| g.degree(v)).max().unwrap();
        let avg_deg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!(max_deg as f64 > 8.0 * avg_deg, "hubs required");
        // Depth: BFS eccentricity must be whisker-scale, not BA-scale (~4).
        let ecc = crate::analysis::hop_eccentricity(&g, 0);
        assert!(ecc > 30, "crawl-like depth expected, got ecc {ecc}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn webgraph_deterministic() {
        assert_eq!(webgraph(500, 4, 0.3, 20, 9), webgraph(500, 4, 0.3, 20, 9));
    }

    #[test]
    fn erdos_renyi_bounds() {
        let g = erdos_renyi(100, 300, 5);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 250, "few duplicates expected at this density");
    }

    #[test]
    fn small_families() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(path(1).num_edges(), 0);
        assert!(is_connected(&cycle(3)));
    }

    #[test]
    fn fig2_gadget_shape() {
        let d = 10;
        let g = fig2_gadget(d, 3);
        assert_eq!(g.num_vertices(), 3 * d);
        assert_eq!(g.num_edges(), 2 * d * d);
        assert!(is_connected(&g));
        // Middle column vertices see both neighbor columns.
        assert_eq!(g.degree(d as VertexId), 2 * d);
    }
}
