//! Edge-list builder producing canonical CSR graphs.
//!
//! All graphs in the workspace are built through this path so the engine
//! code can rely on: symmetric arcs, no self-loops, no duplicate targets
//! (parallel edges keep the minimum weight — exactly how the paper merges
//! shortcut edges into the original graph), and target-sorted adjacency.

use rayon::prelude::*;

use crate::{CsrGraph, Edge, VertexId, Weight};

/// Accumulates undirected edges and builds a [`CsrGraph`].
#[derive(Debug, Clone)]
pub struct EdgeListBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl EdgeListBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex ids are u32");
        EdgeListBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// Self-loops are silently dropped; duplicates are collapsed (minimum
    /// weight wins) at build time. Zero weights are rejected because the
    /// paper normalises the lightest weight to 1.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!((u as usize) < self.n && (v as usize) < self.n, "vertex out of range");
        assert!(w > 0, "edge weights must be positive (paper normalises min weight to 1)");
        if u != v {
            self.edges.push((u, v, w));
        }
    }

    /// Bulk-adds edges.
    pub fn extend_edges(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for (u, v, w) in edges {
            self.add_edge(u, v, w);
        }
    }

    /// Number of (pre-dedup) undirected edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the canonical CSR graph.
    pub fn build(&self) -> CsrGraph {
        build_symmetric(self.n, &self.edges)
    }
}

/// Builds a canonical symmetric CSR from an undirected edge list.
pub fn build_symmetric(n: usize, edges: &[Edge]) -> CsrGraph {
    // Materialise both arc directions, sort by (src, dst, w), keep the
    // minimum-weight copy of each (src, dst).
    let mut arcs: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(edges.len() * 2);
    for &(u, v, w) in edges {
        if u != v {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
    }
    arcs.par_sort_unstable();
    arcs.dedup_by(|next, prev| (next.0, next.1) == (prev.0, prev.1)); // keeps first = min weight

    let mut offsets = vec![0usize; n + 1];
    for &(u, _, _) in &arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let targets: Vec<VertexId> = arcs.par_iter().map(|a| a.1).collect();
    let weights: Vec<Weight> = arcs.par_iter().map(|a| a.2).collect();
    CsrGraph::from_parts(offsets, targets, weights)
}

/// Merges extra undirected edges (e.g. the paper's shortcut edges) into an
/// existing graph, collapsing duplicates to the minimum weight.
pub fn merge_edges(g: &CsrGraph, extra: &[Edge]) -> CsrGraph {
    let mut edges: Vec<Edge> = Vec::with_capacity(g.num_edges() + extra.len());
    for (u, v, w) in g.all_arcs() {
        if u < v {
            edges.push((u, v, w));
        }
    }
    edges.extend_from_slice(extra);
    build_symmetric(g.num_vertices(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_min_weight() {
        let mut b = EdgeListBuilder::new(2);
        b.add_edge(0, 1, 7);
        b.add_edge(1, 0, 3); // same undirected edge, lighter
        b.add_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.arc_weight(0, 1), Some(3));
        assert_eq!(g.arc_weight(1, 0), Some(3));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = EdgeListBuilder::new(3);
        b.add_edge(1, 1, 4);
        b.add_edge(0, 2, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut b = EdgeListBuilder::new(2);
        b.add_edge(0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut b = EdgeListBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let mut b = EdgeListBuilder::new(5);
        for (u, v) in [(4, 0), (2, 0), (3, 0), (1, 0), (4, 2)] {
            b.add_edge(u, v, (u + v + 1) as Weight);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn merge_edges_adds_shortcuts_min_weight() {
        let mut b = EdgeListBuilder::new(4);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 2);
        let g = b.build();
        // Shortcut 0-2 with the true distance 4, plus a worse duplicate 0-1.
        let g2 = merge_edges(&g, &[(0, 2, 4), (0, 1, 10)]);
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.arc_weight(0, 2), Some(4));
        assert_eq!(g2.arc_weight(0, 1), Some(2), "existing lighter edge wins");
        g2.check_invariants().unwrap();
    }

    #[test]
    fn build_is_deterministic() {
        let mut b = EdgeListBuilder::new(50);
        for i in 0..49u32 {
            b.add_edge(i, i + 1, i % 7 + 1);
            b.add_edge(i, (i * 13) % 50, i % 5 + 1);
        }
        assert_eq!(b.build(), b.build());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_edges(n: u32) -> impl Strategy<Value = Vec<Edge>> {
        proptest::collection::vec((0..n, 0..n, 1u32..100), 0..200)
    }

    proptest! {
        #[test]
        fn built_graph_invariants(edges in arb_edges(20)) {
            let g = build_symmetric(20, &edges);
            prop_assert!(g.check_invariants().is_ok());
        }

        #[test]
        fn arc_weight_is_min_of_duplicates(edges in arb_edges(10)) {
            let g = build_symmetric(10, &edges);
            for u in 0..10u32 {
                for v in 0..10u32 {
                    let expect = edges
                        .iter()
                        .filter(|&&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u))
                        .filter(|&&(a, b, _)| a != b)
                        .map(|&(_, _, w)| w)
                        .min();
                    prop_assert_eq!(g.arc_weight(u, v), expect);
                }
            }
        }
    }
}
