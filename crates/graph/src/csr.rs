//! Compressed-sparse-row graph representation.

use std::sync::OnceLock;

use crate::{Dist, VertexId, Weight};

/// An undirected weighted graph in CSR form.
///
/// Both directions of every undirected edge are stored as arcs, so
/// `num_arcs() == 2 * num_edges()` for graphs built through
/// [`crate::EdgeListBuilder`]. Adjacency lists are sorted by target id and
/// contain no self-loops or duplicate targets (parallel edges collapse to
/// their minimum weight).
#[derive(Debug)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    max_weight: Weight,
    min_weight: Weight,
    /// Lazily built reversed-CSR sibling view (see [`CsrGraph::transpose`]).
    /// Purely a cache: ignored by `Clone`/`PartialEq`, rebuilt on demand.
    transpose: OnceLock<Box<CsrGraph>>,
}

impl Clone for CsrGraph {
    fn clone(&self) -> Self {
        // The transpose cache is derived state; a clone rebuilds it on
        // first use rather than deep-copying a second graph.
        CsrGraph {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: self.weights.clone(),
            max_weight: self.max_weight,
            min_weight: self.min_weight,
            transpose: OnceLock::new(),
        }
    }
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        // Cache population must not be observable through equality.
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.weights == other.weights
    }
}

impl Eq for CsrGraph {}

impl CsrGraph {
    /// Constructs a CSR graph from raw parts.
    ///
    /// # Panics
    /// If the offsets are malformed or any target is out of range.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<VertexId>, weights: Vec<Weight>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n+1");
        assert_eq!(*offsets.last().unwrap(), targets.len());
        assert_eq!(targets.len(), weights.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be nondecreasing");
        let n = offsets.len() - 1;
        assert!(targets.iter().all(|&t| (t as usize) < n), "target out of range");
        let max_weight = weights.iter().copied().max().unwrap_or(1);
        let min_weight = weights.iter().copied().min().unwrap_or(1);
        CsrGraph { offsets, targets, weights, max_weight, min_weight, transpose: OnceLock::new() }
    }

    /// The empty graph on `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph::from_parts(vec![0; n + 1], Vec::new(), Vec::new())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs (twice the undirected edge count).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_arcs() / 2
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor ids of `v` (sorted ascending for builder-made graphs).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Self::neighbors`].
    #[inline]
    pub fn weights_of(&self, v: VertexId) -> &[Weight] {
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterator over `(target, weight)` pairs of `v`'s out-arcs.
    #[inline]
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v).iter().copied().zip(self.weights_of(v).iter().copied())
    }

    /// Iterator over all arcs `(u, v, w)`.
    pub fn all_arcs(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// The heaviest edge weight `L` (1 for the empty graph, per the paper's
    /// normalisation `min w(e) = 1`).
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// The lightest edge weight.
    #[inline]
    pub fn min_weight(&self) -> Weight {
        self.min_weight
    }

    /// True when every edge has weight exactly 1 (the paper's "unweighted").
    #[inline]
    pub fn is_unit_weighted(&self) -> bool {
        self.min_weight == 1 && self.max_weight == 1
    }

    /// Raw offsets array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Raw weights array.
    #[inline]
    pub fn raw_weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Weight of arc `u -> v` if present (binary search; adjacency sorted).
    pub fn arc_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search(&v).ok().map(|i| self.weights_of(u)[i])
    }

    /// An upper bound on any finite shortest-path distance in the graph:
    /// `n * L`. Useful as a "pseudo-infinity" below [`crate::INF`].
    pub fn distance_bound(&self) -> Dist {
        self.num_vertices() as Dist * self.max_weight as Dist + 1
    }

    /// A 64-bit content hash of the full topology and weights (FNV-1a over
    /// the CSR arrays). Two graphs hash equal iff their CSR forms are
    /// identical (modulo the usual 2⁻⁶⁴ collision caveat) — unlike
    /// vertex/edge counts, a changed weight or rewired edge changes the
    /// hash. Used by preprocessing caches to detect stale entries.
    pub fn content_hash(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.num_vertices() as u64);
        mix(self.targets.len() as u64);
        for &o in &self.offsets {
            mix(o as u64);
        }
        for (&t, &w) in self.targets.iter().zip(&self.weights) {
            mix(((t as u64) << 32) | w as u64);
        }
        h
    }

    /// Returns a copy whose adjacency lists are sorted by `(weight, target)`
    /// instead of by target.
    ///
    /// Preprocessing (Lemma 4.2) only examines the `ρ` lightest edges of
    /// each vertex; this layout makes that a prefix scan of each list.
    pub fn weight_sorted(&self) -> CsrGraph {
        use rayon::prelude::*;
        let n = self.num_vertices();
        let mut targets = self.targets.clone();
        let mut weights = self.weights.clone();
        let offsets = self.offsets.clone();
        // Sort each adjacency list independently, in parallel over vertices.
        let mut perm: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|v| {
                let s = offsets[v];
                let e = offsets[v + 1];
                let mut idx: Vec<u32> = (0..(e - s) as u32).collect();
                idx.sort_unstable_by_key(|&i| {
                    (self.weights[s + i as usize], self.targets[s + i as usize])
                });
                idx
            })
            .collect();
        for v in 0..n {
            let s = offsets[v];
            let e = offsets[v + 1];
            let idx = std::mem::take(&mut perm[v]);
            let tgt: Vec<VertexId> = idx.iter().map(|&i| self.targets[s + i as usize]).collect();
            let wts: Vec<Weight> = idx.iter().map(|&i| self.weights[s + i as usize]).collect();
            targets[s..e].copy_from_slice(&tgt);
            weights[s..e].copy_from_slice(&wts);
        }
        CsrGraph {
            offsets,
            targets,
            weights,
            max_weight: self.max_weight,
            min_weight: self.min_weight,
            transpose: OnceLock::new(),
        }
    }

    /// The transposed graph (every arc `u -> v` becomes `v -> u`), built
    /// lazily on first call and cached on the graph like webgraph-style
    /// sibling views — later calls are an atomic load. Reverse adjacency
    /// lists come out sorted by source id, so the transpose satisfies the
    /// same layout invariants as a builder-made graph. For the symmetric
    /// graphs this workspace builds, the transpose equals the graph
    /// arc-for-arc; bidirectional search still routes its reverse frontier
    /// through this view so directed CSR inputs keep working.
    pub fn transpose(&self) -> &CsrGraph {
        self.transpose.get_or_init(|| {
            let n = self.num_vertices();
            let m = self.num_arcs();
            // Counting sort by arc target: offsets, then a stable fill in
            // source order (which leaves each reverse list sorted).
            let mut offsets = vec![0usize; n + 1];
            for &t in &self.targets {
                offsets[t as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            let mut targets = vec![0 as VertexId; m];
            let mut weights = vec![0 as Weight; m];
            for u in 0..n as VertexId {
                for (v, w) in self.edges(u) {
                    let slot = cursor[v as usize];
                    cursor[v as usize] += 1;
                    targets[slot] = u;
                    weights[slot] = w;
                }
            }
            Box::new(CsrGraph {
                offsets,
                targets,
                weights,
                max_weight: self.max_weight,
                min_weight: self.min_weight,
                transpose: OnceLock::new(),
            })
        })
    }

    /// Structural invariants the builder guarantees; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices();
        for v in 0..n as VertexId {
            let nbrs = self.neighbors(v);
            for win in nbrs.windows(2) {
                if win[0] >= win[1] {
                    return Err(format!("adjacency of {v} not strictly sorted"));
                }
            }
            if nbrs.contains(&v) {
                return Err(format!("self loop at {v}"));
            }
            for (u, w) in self.edges(v) {
                match self.arc_weight(u, v) {
                    Some(w2) if w2 == w => {}
                    Some(w2) => return Err(format!("asymmetric weight {v}-{u}: {w} vs {w2}")),
                    None => return Err(format!("missing reverse arc {u}->{v}")),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeListBuilder;

    fn triangle() -> CsrGraph {
        let mut b = EdgeListBuilder::new(3);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 0, 9);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn weights_and_lookup() {
        let g = triangle();
        assert_eq!(g.arc_weight(0, 1), Some(5));
        assert_eq!(g.arc_weight(1, 0), Some(5));
        assert_eq!(g.arc_weight(0, 2), Some(9));
        assert_eq!(g.arc_weight(0, 0), None);
        assert_eq!(g.max_weight(), 9);
        assert_eq!(g.min_weight(), 3);
        assert!(!g.is_unit_weighted());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 0);
        assert!(g.is_unit_weighted());
        g.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold() {
        triangle().check_invariants().unwrap();
    }

    #[test]
    fn weight_sorted_orders_by_weight() {
        let g = triangle().weight_sorted();
        // Vertex 0 has edges (1, w=5) and (2, w=9) -> weight order 1 then 2.
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights_of(0), &[5, 9]);
        // Vertex 2 has edges (1, w=3) and (0, w=9).
        assert_eq!(g.neighbors(2), &[1, 0]);
        assert_eq!(g.weights_of(2), &[3, 9]);
        // Same multiset of arcs.
        assert_eq!(g.num_arcs(), 6);
    }

    #[test]
    fn all_arcs_enumerates_both_directions() {
        let g = triangle();
        let arcs: Vec<_> = g.all_arcs().collect();
        assert_eq!(arcs.len(), 6);
        assert!(arcs.contains(&(0, 1, 5)));
        assert!(arcs.contains(&(1, 0, 5)));
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn from_parts_validates_targets() {
        CsrGraph::from_parts(vec![0, 1], vec![5], vec![1]);
    }

    #[test]
    fn transpose_of_symmetric_graph_is_itself_and_cached() {
        let g = triangle();
        let t = g.transpose();
        // Symmetric arcs: the transpose is arc-identical to the graph.
        assert_eq!(t, &g);
        t.check_invariants().unwrap();
        // Cached: the second call returns the same allocation.
        assert!(std::ptr::eq(g.transpose(), t));
        // The cache is invisible to equality and dropped by clone.
        assert_eq!(g.clone(), g);
        assert_eq!(CsrGraph::empty(3).transpose(), &CsrGraph::empty(3));
    }

    #[test]
    fn transpose_reverse_lists_sorted() {
        let mut b = EdgeListBuilder::new(5);
        b.add_edge(0, 4, 2);
        b.add_edge(1, 4, 7);
        b.add_edge(3, 4, 1);
        b.add_edge(2, 0, 3);
        let g = b.build();
        let t = g.transpose();
        t.check_invariants().unwrap();
        assert_eq!(t.neighbors(4), &[0, 1, 3]);
        assert_eq!(t.weights_of(4), &[2, 7, 1]);
    }

    #[test]
    fn content_hash_sees_weights_and_wiring() {
        let g = triangle();
        assert_eq!(g.content_hash(), triangle().content_hash(), "deterministic");
        // Same shape (n, m), one weight changed: different hash.
        let mut b = crate::EdgeListBuilder::new(3);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 0, 8); // triangle() uses 9 here
        let reweighted = b.build();
        assert_eq!(reweighted.num_vertices(), g.num_vertices());
        assert_eq!(reweighted.num_edges(), g.num_edges());
        assert_ne!(reweighted.content_hash(), g.content_hash());
        // Same shape, rewired: different hash.
        let mut b = crate::EdgeListBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let a = b.build();
        let mut b = crate::EdgeListBuilder::new(4);
        b.add_edge(0, 2, 1);
        b.add_edge(1, 3, 1);
        let c = b.build();
        assert_ne!(a.content_hash(), c.content_hash());
    }
}
