//! Structural analysis: connectivity, component extraction, degree and
//! eccentricity statistics.
//!
//! The paper assumes connected inputs (§2); [`largest_component`] is the
//! normalisation step the experiment harness applies to every generated
//! graph before preprocessing.

use std::collections::VecDeque;

use crate::builder::build_symmetric;
use crate::{CsrGraph, Edge, VertexId};

/// Component label (root id) for every vertex, via BFS.
pub fn connected_components(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = s as u32;
        queue.push_back(s as VertexId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = s as u32;
                    queue.push_back(v);
                }
            }
        }
    }
    label
}

/// True when the graph has exactly one connected component (and ≥ 1 vertex).
pub fn is_connected(g: &CsrGraph) -> bool {
    let labels = connected_components(g);
    !labels.is_empty() && labels.iter().all(|&l| l == labels[0])
}

/// Extracts the largest connected component, relabelling vertices densely.
///
/// Returns the component graph and the mapping `new id -> old id`.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let labels = connected_components(g);
    let n = g.num_vertices();
    if n == 0 {
        return (CsrGraph::empty(0), Vec::new());
    }
    // Find the most frequent label.
    let mut counts = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    let (&best, _) = counts.iter().max_by_key(|&(&l, &c)| (c, std::cmp::Reverse(l))).unwrap();
    let mut old_of_new = Vec::new();
    let mut new_of_old = vec![u32::MAX; n];
    for v in 0..n {
        if labels[v] == best {
            new_of_old[v] = old_of_new.len() as u32;
            old_of_new.push(v as VertexId);
        }
    }
    let mut edges: Vec<Edge> = Vec::new();
    for (u, v, w) in g.all_arcs() {
        if u < v && labels[u as usize] == best && labels[v as usize] == best {
            edges.push((new_of_old[u as usize], new_of_old[v as usize], w));
        }
    }
    (build_symmetric(old_of_new.len(), &edges), old_of_new)
}

/// Degree distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    pub median: usize,
}

/// Computes [`DegreeStats`] for `g`.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0 };
    }
    let mut degs: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean: g.num_arcs() as f64 / n as f64,
        median: degs[n / 2],
    }
}

/// Unweighted (hop) eccentricity of `s`: BFS depth, ignoring weights.
pub fn hop_eccentricity(g: &CsrGraph, s: VertexId) -> usize {
    let n = g.num_vertices();
    let mut depth = vec![usize::MAX; n];
    depth[s as usize] = 0;
    let mut queue = VecDeque::from([s]);
    let mut max_d = 0;
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if depth[v as usize] == usize::MAX {
                depth[v as usize] = depth[u as usize] + 1;
                max_d = max_d.max(depth[v as usize]);
                queue.push_back(v);
            }
        }
    }
    max_d
}

/// Double-sweep lower bound on the hop diameter: BFS from `s`, then BFS from
/// the farthest vertex found. Exact on trees, a good estimate elsewhere.
pub fn diameter_estimate(g: &CsrGraph, s: VertexId) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let far = {
        let mut depth = vec![usize::MAX; n];
        depth[s as usize] = 0;
        let mut queue = VecDeque::from([s]);
        let mut far = s;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if depth[v as usize] == usize::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    if depth[v as usize] > depth[far as usize] {
                        far = v;
                    }
                    queue.push_back(v);
                }
            }
        }
        far
    };
    hop_eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, EdgeListBuilder};

    #[test]
    fn components_of_disjoint_paths() {
        let mut b = EdgeListBuilder::new(6);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        let g = b.build();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = EdgeListBuilder::new(7);
        // Component A: 0-1-2-3 (larger). Component B: 4-5. Vertex 6 isolated.
        for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 5)] {
            b.add_edge(u, v, 2);
        }
        let g = b.build();
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), 4);
        assert_eq!(lcc.num_edges(), 3);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert!(is_connected(&lcc));
        lcc.check_invariants().unwrap();
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = gen::grid2d(5, 5);
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc, g);
        assert_eq!(map, (0..25).collect::<Vec<u32>>());
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&gen::star(11));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert!((s.mean - 20.0 / 11.0).abs() < 1e-9);
        assert_eq!(s.median, 1);
    }

    #[test]
    fn path_diameter() {
        let g = gen::path(10);
        assert_eq!(hop_eccentricity(&g, 0), 9);
        assert_eq!(hop_eccentricity(&g, 5), 5);
        assert_eq!(diameter_estimate(&g, 5), 9, "double sweep finds path ends");
    }

    #[test]
    fn grid_diameter() {
        let g = gen::grid2d(4, 6);
        assert_eq!(diameter_estimate(&g, 0), 3 + 5);
    }
}
