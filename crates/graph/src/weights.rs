//! Edge-weight models from the paper's experimental setup (§5.1).
//!
//! "In our experiments, if a graph does not come equipped with weights, we
//! assign to every edge a random integer between 1 and 10,000." Weights are
//! assigned per *undirected* edge so both arcs agree, then the graph is
//! rebuilt through the canonical builder.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::build_symmetric;
use crate::{CsrGraph, Edge, Weight};

/// The weight distribution the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// Every edge has weight 1 (the "unweighted"/BFS setting; `L = 1`).
    Unit,
    /// Independent uniform integers in `[lo, hi]` (paper: `[1, 10_000]`).
    UniformInt { lo: Weight, hi: Weight },
}

impl WeightModel {
    /// The paper's weighted setting: uniform integers in `[1, 10^4]`.
    pub fn paper_weighted() -> Self {
        WeightModel::UniformInt { lo: 1, hi: 10_000 }
    }

    /// Largest weight this model can produce (the paper's `L`).
    pub fn max_weight(&self) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::UniformInt { hi, .. } => hi,
        }
    }
}

/// Returns a copy of `g` reweighted under `model`, deterministically in
/// `seed`. Topology is unchanged.
pub fn reweight(g: &CsrGraph, model: WeightModel, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(g.num_edges());
    for (u, v, _) in g.all_arcs() {
        if u < v {
            let w = match model {
                WeightModel::Unit => 1,
                WeightModel::UniformInt { lo, hi } => {
                    assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
                    rng.random_range(lo..=hi)
                }
            };
            edges.push((u, v, w));
        }
    }
    build_symmetric(g.num_vertices(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeListBuilder;

    fn sample_graph() -> CsrGraph {
        let mut b = EdgeListBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(i, i + 1, 1);
        }
        b.add_edge(0, 5, 1);
        b.build()
    }

    #[test]
    fn unit_reweight_is_identity_topology() {
        let g = sample_graph();
        let w = reweight(&g, WeightModel::Unit, 1);
        assert_eq!(g, w);
    }

    #[test]
    fn uniform_weights_in_range_and_symmetric() {
        let g = sample_graph();
        let w = reweight(&g, WeightModel::UniformInt { lo: 5, hi: 9 }, 42);
        assert_eq!(w.num_edges(), g.num_edges());
        for (u, v, wt) in w.all_arcs() {
            assert!((5..=9).contains(&wt));
            assert_eq!(w.arc_weight(v, u), Some(wt));
        }
        w.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let g = sample_graph();
        let model = WeightModel::paper_weighted();
        assert_eq!(reweight(&g, model, 7), reweight(&g, model, 7));
        // Different seeds give different weights with overwhelming probability.
        assert_ne!(reweight(&g, model, 7), reweight(&g, model, 8));
    }

    #[test]
    fn paper_model_range() {
        let m = WeightModel::paper_weighted();
        assert_eq!(m.max_weight(), 10_000);
    }
}
