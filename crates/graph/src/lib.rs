//! Graph substrate for the radius-stepping workspace.
//!
//! Everything the paper's evaluation needs from a graph library:
//!
//! * [`csr`] — a compact compressed-sparse-row graph over `u32` vertex ids
//!   and `u32` edge weights (distances are `u64`, see [`Dist`]).
//! * [`builder`] — symmetrising builder with minimum-weight deduplication,
//!   the invariant-enforcing path by which every graph here is constructed.
//! * [`gen`] — seeded synthetic generators, including the stand-ins for the
//!   paper's SNAP datasets (road networks, webgraphs, grids) and the
//!   pathological Figure-2 gadget.
//! * [`weights`] — the paper's weight models (unit, uniform integers in
//!   `[1, 10_000]`).
//! * [`edge_map`] — Ligra-style frontier traversal with sparse/dense
//!   switching, used by the parallel engines and baselines.
//! * [`io`] — DIMACS `.gr` and fast binary serialisation.
//! * [`analysis`] — connectivity, largest-component extraction, degree and
//!   eccentricity statistics.
//! * [`partition`] — vertex→part assignments and induced subgraph views
//!   with global↔local remapping (the substrate under `rs_shard`).

pub mod analysis;
pub mod builder;
pub mod csr;
pub mod edge_map;
pub mod gen;
pub mod io;
pub mod partition;
pub mod weights;

pub use builder::EdgeListBuilder;
pub use csr::CsrGraph;
pub use edge_map::{edge_map, EdgeMapResult};
pub use partition::{induced_subgraph, PartitionAssignment, SubgraphView};
pub use weights::WeightModel;

/// Vertex identifier. Graphs are limited to `u32::MAX - 1` vertices.
pub type VertexId = u32;

/// Edge weight. The paper assumes the lightest nonzero weight is 1 and
/// calls the heaviest weight `L`; uniform integers in `[1, 10^4]` in the
/// experiments.
pub type Weight = u32;

/// Shortest-path distance. `u64` holds any sum of `< 2^32` weights of
/// `< 2^32` each that arises at our scales without overflow.
pub type Dist = u64;

/// Distance value meaning "unreached".
pub const INF: Dist = u64::MAX;

/// A weighted edge `(u, v, w)` in either direction.
pub type Edge = (VertexId, VertexId, Weight);
