//! Graph serialisation: DIMACS `.gr` text and a fast binary format.
//!
//! DIMACS is the interchange format of the 9th DIMACS shortest-path
//! challenge (road networks ship in it); the binary format is for caching
//! generated suites between experiment runs.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::build_symmetric;
use crate::{CsrGraph, Edge, VertexId, Weight};

/// Writes `g` in DIMACS `.gr` format (1-indexed, both arc directions).
pub fn write_dimacs<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "c radius-stepping export")?;
    writeln!(w, "p sp {} {}", g.num_vertices(), g.num_arcs())?;
    for (u, v, wt) in g.all_arcs() {
        writeln!(w, "a {} {} {}", u + 1, v + 1, wt)?;
    }
    w.flush()
}

/// Reads a DIMACS `.gr` file, symmetrising and deduplicating through the
/// canonical builder (so one-directional files become undirected graphs).
pub fn read_dimacs<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    let reader = BufReader::new(File::open(path)?);
    let mut n: Option<usize> = None;
    let mut edges: Vec<Edge> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let mut it = line.split_whitespace();
        match it.next() {
            Some("c") | None => {}
            Some("p") => {
                let _sp = it.next();
                let nv: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad p line"))?;
                n = Some(nv);
            }
            Some("a") => {
                let mut next_num = || -> io::Result<u64> {
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad a line"))
                };
                let u = next_num()? as VertexId;
                let v = next_num()? as VertexId;
                let w = next_num()? as Weight;
                if u == 0 || v == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "DIMACS ids are 1-based",
                    ));
                }
                edges.push((u - 1, v - 1, w.max(1)));
            }
            Some(_) => {} // ignore unknown directives
        }
    }
    let n = n.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing p line"))?;
    Ok(build_symmetric(n, &edges))
}

const BIN_MAGIC: &[u8; 4] = b"RSG1";

/// Writes `g` in the fast binary format.
pub fn write_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_binary_to(g, &mut w)?;
    w.flush()
}

/// Writer-based form of [`write_binary`], for embedding a graph inside a
/// larger file (e.g. a saved preprocessing).
pub fn write_binary_to<W: Write>(g: &CsrGraph, w: &mut W) -> io::Result<()> {
    w.write_all(BIN_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_arcs() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &t in g.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    for &wt in g.raw_weights() {
        w.write_all(&wt.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    read_binary_from(&mut BufReader::new(File::open(path)?))
}

/// Reader-based form of [`read_binary`].
pub fn read_binary_from<R: Read>(r: &mut R) -> io::Result<CsrGraph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut R| -> io::Result<u64> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let n = read_u64(r)? as usize;
    let arcs = read_u64(r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(r)? as usize);
    }
    let mut u32buf = [0u8; 4];
    let mut targets = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        r.read_exact(&mut u32buf)?;
        targets.push(u32::from_le_bytes(u32buf));
    }
    let mut weights = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        r.read_exact(&mut u32buf)?;
        weights.push(u32::from_le_bytes(u32buf));
    }
    Ok(CsrGraph::from_parts(offsets, targets, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, weights, WeightModel};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rs_graph_io_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = weights::reweight(&gen::grid2d(6, 7), WeightModel::paper_weighted(), 3);
        let path = temp_path("roundtrip.gr");
        write_dimacs(&g, &path).unwrap();
        let g2 = read_dimacs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_reads_one_directional_files() {
        let path = temp_path("oneway.gr");
        std::fs::write(&path, "c test\np sp 3 2\na 1 2 5\na 2 3 7\n").unwrap();
        let g = read_dimacs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.arc_weight(1, 0), Some(5), "symmetrised");
    }

    #[test]
    fn dimacs_rejects_garbage() {
        let path = temp_path("bad.gr");
        std::fs::write(&path, "a 1 2 3\n").unwrap(); // no p line
        assert!(read_dimacs(&path).is_err());
        std::fs::write(&path, "p sp 3 1\na 0 2 3\n").unwrap(); // 0-based id
        assert!(read_dimacs(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let g = weights::reweight(&gen::scale_free(300, 3, 1), WeightModel::paper_weighted(), 9);
        let path = temp_path("roundtrip.bin");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = temp_path("badmagic.bin");
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
