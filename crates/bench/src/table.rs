//! Paper-style table rendering and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], width: &[usize], out: &mut String| {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:>w$}", c, w = width[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&self.header, &width, &mut out);
        let sep: Vec<String> = width.iter().map(|&w| "-".repeat(w)).collect();
        line(&sep, &width, &mut out);
        for row in &self.rows {
            line(row, &width, &mut out);
        }
        out
    }

    /// Writes `title.csv` under `dir` (creating it), RFC-4180-ish.
    pub fn write_csv(&self, dir: &Path, file_stem: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        fs::write(dir.join(format!("{file_stem}.csv")), out)
    }
}

/// Formats a float the way the paper's tables do (2 decimals, or compact
/// scientific-ish for big values like "986K").
pub fn fmt_count(x: f64) -> String {
    if x >= 100_000.0 {
        format!("{:.0}K", x / 1000.0)
    } else if x >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("Demo", &["rho", "steps"]);
        t.push_row(vec!["1".into(), "1504.0".into()]);
        t.push_row(vec!["1000".into(), "64.88".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // All table lines equal width.
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip_escaping() {
        let dir = std::env::temp_dir().join(format!("rs_bench_csv_{}", std::process::id()));
        let mut t = Table::new("x", &["name", "value"]);
        t.push_row(vec!["has,comma".into(), "2".into()]);
        t.write_csv(&dir, "test").unwrap();
        let content = std::fs::read_to_string(dir.join("test.csv")).unwrap();
        assert!(content.contains("\"has,comma\",2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn count_formats() {
        assert_eq!(fmt_count(986_000.0), "986K");
        assert_eq!(fmt_count(1504.0), "1504.0");
        assert_eq!(fmt_count(64.88), "64.88");
    }
}
