//! Figure 3 and Tables 2–3: edges added by the shortcut heuristics (§5.2).
//!
//! For each of the three representative graphs (road / web / grid), each
//! k ∈ {2..5} and each ρ ∈ {10..1000}: run the ball search once per
//! (graph, ρ) and evaluate both heuristics at every k on the same
//! shortest-path trees, reporting added edges as a fraction of |E|.
//! Unweighted graphs, as in the paper ("the performance of the heuristics
//! is independent of edge weights").
//!
//! The "red. rounds" column reproduces the step-reduction factors those
//! tables carry (identical to Table 5's unweighted factors).

use rayon::prelude::*;

use rs_core::preprocess::{ball_search, dp_shortcuts, greedy_count, BallScratch};
use rs_graph::{CsrGraph, VertexId};

use crate::paper::{K_SHORTCUT, RHO_SHORTCUT, TABLE2_GREEDY, TABLE3_DP};
use crate::suite::{build_graph, SHORTCUT_SUITE};
use crate::table::Table;

use super::steps::mean_steps;
use super::ExpConfig;
use crate::sample_sources;

/// Added-edge totals for one (graph, ρ): greedy and DP counts per k, from
/// a single ball pass over all sources.
pub fn shortcut_counts(g: &CsrGraph, rho: usize, ks: &[u32]) -> (Vec<u64>, Vec<u64>) {
    let (greedy, dp, _) = shortcut_counts_and_radii(g, rho, ks);
    (greedy, dp)
}

/// [`shortcut_counts`] that also yields `r_ρ(v)` from the same ball pass,
/// so the "red. rounds" column doesn't need a second pass.
pub fn shortcut_counts_and_radii(
    g: &CsrGraph,
    rho: usize,
    ks: &[u32],
) -> (Vec<u64>, Vec<u64>, Vec<rs_graph::Dist>) {
    let ws = g.weight_sorted();
    let n = g.num_vertices();
    let per_source: Vec<(Vec<u64>, Vec<u64>, rs_graph::Dist)> = (0..n as VertexId)
        .into_par_iter()
        .map_init(
            || BallScratch::new(n),
            |scratch, v| {
                let ball = ball_search(&ws, v, rho, rho, scratch);
                let greedy: Vec<u64> = ks.iter().map(|&k| greedy_count(&ball, k) as u64).collect();
                let dp: Vec<u64> =
                    ks.iter().map(|&k| dp_shortcuts(&ball, k).len() as u64).collect();
                (greedy, dp, ball.radius)
            },
        )
        .collect();
    let mut greedy = vec![0u64; ks.len()];
    let mut dp = vec![0u64; ks.len()];
    let mut radii = Vec::with_capacity(n);
    for (gs, ds, r) in per_source {
        for i in 0..ks.len() {
            greedy[i] += gs[i];
            dp[i] += ds[i];
        }
        radii.push(r);
    }
    (greedy, dp, radii)
}

/// Output bundle: Tables 2, 3 and the Figure 3 panels.
pub struct ShortcutReport {
    pub table2_greedy: Vec<Table>,
    pub table3_dp: Vec<Table>,
    pub fig3_panels: Vec<Table>,
}

/// Runs the full §5.2 experiment.
pub fn run(cfg: &ExpConfig) -> ShortcutReport {
    let mut table2 = Vec::new();
    let mut table3 = Vec::new();
    let mut fig3 = Vec::new();

    for (panel, name) in SHORTCUT_SUITE.iter().enumerate() {
        let sg = build_graph(name, cfg.scale_denom);
        let g = &sg.graph;
        let n = g.num_vertices();
        let m = g.num_edges() as f64;
        let sources = sample_sources(n, cfg.sources, cfg.seed);
        let base_steps = mean_steps(g, 1, &sources);

        let mut header: Vec<String> = vec!["rho".into()];
        for &k in &K_SHORTCUT {
            header.push(format!("k={k}"));
        }
        header.push("red. rounds".into());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let title = |which: &str| {
            format!("{which} factors of additional edges — {name} (n={n}, |E|={})", g.num_edges())
        };
        let mut t2 = Table::new(format!("Table 2 (Greedy): {}", title("greedy")), &header_refs);
        let mut t3 = Table::new(format!("Table 3 (DP): {}", title("DP")), &header_refs);
        let mut f3 = Table::new(
            format!(
                "Figure 3 ({}): {name} — added-edge factor at k=3 (ours | paper)",
                ["a", "b", "c"][panel]
            ),
            &["rho", "Greedy ours", "Greedy paper", "DP ours", "DP paper"],
        );

        for (ri, &rho) in RHO_SHORTCUT.iter().enumerate() {
            if !cfg.rho_usable(rho, n) {
                continue;
            }
            let (greedy, dp, radii) = shortcut_counts_and_radii(g, rho, &K_SHORTCUT);
            let spec = rs_core::RadiiSpec::PerVertex(&radii);
            let steps_at_rho = crate::mean(
                &sources
                    .iter()
                    .map(|&s| rs_core::radius_stepping(g, &spec, s).stats.steps as f64)
                    .collect::<Vec<_>>(),
            );
            let red = base_steps / steps_at_rho;

            let mut row2 = vec![rho.to_string()];
            let mut row3 = vec![rho.to_string()];
            for i in 0..K_SHORTCUT.len() {
                row2.push(format!("{:.2}", greedy[i] as f64 / m));
                row3.push(format!("{:.2}", dp[i] as f64 / m));
            }
            row2.push(format!("{red:.2}"));
            row3.push(format!("{red:.2}"));
            t2.push_row(row2);
            t3.push_row(row3);

            // Figure 3 series (k = 3 is K_SHORTCUT[1]).
            let paper_greedy = TABLE2_GREEDY.iter().find(|(g, _)| g == name).map(|(_, t)| t[ri][1]);
            let paper_dp = TABLE3_DP.iter().find(|(g, _)| g == name).map(|(_, t)| t[ri][1]);
            f3.push_row(vec![
                rho.to_string(),
                format!("{:.2}", greedy[1] as f64 / m),
                paper_greedy.map_or("-".into(), |v| format!("{v:.2}")),
                format!("{:.2}", dp[1] as f64 / m),
                paper_dp.map_or("-".into(), |v| format!("{v:.2}")),
            ]);
        }
        table2.push(t2);
        table3.push(t3);
        fig3.push(f3);
    }

    ShortcutReport { table2_greedy: table2, table3_dp: table3, fig3_panels: fig3 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::gen;

    #[test]
    fn dp_at_most_greedy_everywhere() {
        let g = gen::grid2d(20, 20);
        let (greedy, dp) = shortcut_counts(&g, 12, &[2, 3, 4]);
        for i in 0..3 {
            assert!(dp[i] <= greedy[i], "k index {i}: dp {} > greedy {}", dp[i], greedy[i]);
        }
        assert!(greedy[0] > 0, "rho=12 on a grid must need shortcuts at k=2");
    }

    #[test]
    fn larger_k_adds_fewer_edges() {
        // §5.4: "a larger k will reduce the number of added edges".
        let g = gen::grid2d(24, 24);
        let (greedy, dp) = shortcut_counts(&g, 20, &[2, 3, 4, 5]);
        assert!(greedy.windows(2).all(|w| w[0] >= w[1]), "greedy not decreasing: {greedy:?}");
        assert!(dp.windows(2).all(|w| w[0] >= w[1]), "dp not decreasing: {dp:?}");
    }

    #[test]
    fn webgraph_dp_far_below_greedy() {
        // The paper's headline §5.2 contrast: on hubby graphs DP ≪ Greedy,
        // because Greedy misses hubs sitting off the (k·i+1)-hop levels.
        // Needs balls deeper than k hops: sparse BA (3 edges/vertex) with
        // ρ = 300 ≫ 2-hop neighbourhood.
        let g = gen::scale_free(3000, 3, 42);
        let (greedy, dp) = shortcut_counts(&g, 300, &[2]);
        assert!(greedy[0] > 0, "balls must be deeper than k");
        assert!(
            (dp[0] as f64) < 0.6 * greedy[0] as f64,
            "dp {} vs greedy {}: hubs should collapse DP cost",
            dp[0],
            greedy[0]
        );
    }

    #[test]
    fn tiny_full_run() {
        let report = run(&ExpConfig::tiny());
        assert_eq!(report.table2_greedy.len(), 3);
        assert_eq!(report.fig3_panels.len(), 3);
        assert!(!report.table2_greedy[0].rows.is_empty());
    }
}
