//! Query-plane throughput experiment: the serving-path numbers the paper
//! does not report but a production deployment lives by.
//!
//! Runs three realistic batch mixes through `QueryBatch` on a preprocessed
//! solver — point-to-point traffic, one-to-many fan-out traffic, and a
//! mixed stream — and measures batch queries/second, physical solves per
//! query (the fan-out economy: a one-to-many query with k goals costs one
//! solve, not k), and the warm/cold scratch split. Results are printed as
//! a table and emitted as machine-readable `BENCH_queries.json`, so the
//! query plane's performance trajectory has data points across PRs.

use std::time::Instant;

use rs_baselines::solver::BuildSolver;
use rs_core::solver::{BatchStats, Query, QueryBatch, SolverBuilder};
use rs_core::PreprocessConfig;

use crate::sample_sources;
use crate::suite::build_graph;
use crate::table::Table;

use super::ExpConfig;

/// One measured batch mix.
#[derive(Debug, Clone)]
pub struct BatchMeasurement {
    /// Mix label (`point_to_point` / `one_to_many` / `mixed`).
    pub name: String,
    /// Requested queries in the batch.
    pub requests: usize,
    /// Batch wall-clock seconds.
    pub seconds: f64,
    /// Requested queries per second.
    pub qps: f64,
    /// Aggregated batch counters.
    pub stats: BatchStats,
}

/// The experiment's output: per-mix measurements plus graph metadata.
#[derive(Debug, Clone)]
pub struct QueriesRun {
    pub graph_name: String,
    pub vertices: usize,
    pub edges: usize,
    pub threads: usize,
    pub measurements: Vec<BatchMeasurement>,
}

/// Runs the three batch mixes and writes `BENCH_queries.json` into
/// `cfg.out_dir`.
pub fn run(cfg: &ExpConfig) -> QueriesRun {
    let sg = build_graph("Penn", cfg.scale_denom.max(64));
    let g = sg.weighted();
    let solver = SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 32)).build();
    let picks = sample_sources(g.num_vertices(), (4 * cfg.sources).clamp(8, 64), cfg.seed);
    let vertex = |i: usize| picks[i % picks.len()];
    let fan_goals = |i: usize| -> Vec<u32> { (0..8).map(|j| vertex(i * 7 + j * 3 + 1)).collect() };

    // Mix 1: pure point-to-point traffic (with a hot duplicated pair).
    let p2p: Vec<Query> = (0..picks.len() * 4)
        .map(|i| {
            if i % 5 == 0 {
                Query::point_to_point(vertex(0), vertex(1)) // the hot pair
            } else {
                Query::point_to_point(vertex(i), vertex(i + 3))
            }
        })
        .collect();
    // Mix 2: one-to-many fan-out — each query answers 8 goals in 1 solve.
    let fan: Vec<Query> =
        (0..picks.len()).map(|i| Query::one_to_many(vertex(i), fan_goals(i))).collect();
    // Mix 3: mixed stream (p2p-dominated, fan-out and analytics mixed in).
    let mixed: Vec<Query> = (0..picks.len() * 2)
        .map(|i| match i % 8 {
            0 => Query::single_source(vertex(i)),
            1 | 2 => Query::one_to_many(vertex(i), fan_goals(i)),
            _ => Query::point_to_point(vertex(i), vertex(i + 5)),
        })
        .collect();

    let mut out = QueriesRun {
        graph_name: sg.name.to_string(),
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        threads: rs_par::num_threads(),
        measurements: Vec::new(),
    };
    for (name, queries) in [("point_to_point", &p2p), ("one_to_many", &fan), ("mixed", &mixed)] {
        let batch = QueryBatch::new(queries);
        let t = Instant::now();
        let outcome = batch.execute(&*solver);
        let seconds = t.elapsed().as_secs_f64();
        out.measurements.push(BatchMeasurement {
            name: name.into(),
            requests: queries.len(),
            seconds,
            qps: queries.len() as f64 / seconds.max(1e-9),
            stats: outcome.stats,
        });
    }

    if let Err(e) = write_json(cfg, &out) {
        eprintln!("warning: failed to write BENCH_queries.json: {e}");
    }
    out
}

/// Renders the run as a display table.
pub fn table(run: &QueriesRun) -> Table {
    let mut t = Table::new(
        format!(
            "Query throughput on {} (n={}, m={}, {} threads, preprocessed k=1 rho=32)",
            run.graph_name, run.vertices, run.edges, run.threads
        ),
        &[
            "mix",
            "requests",
            "unique",
            "solves",
            "solves/query",
            "goals reached",
            "warm",
            "cold",
            "qps",
        ],
    );
    for m in &run.measurements {
        t.push_row(vec![
            m.name.clone(),
            m.requests.to_string(),
            m.stats.unique_solves.to_string(),
            m.stats.executed_solves.to_string(),
            format!("{:.3}", m.stats.mean_solves_per_query()),
            format!("{}/{}", m.stats.goals_reached, m.stats.goals_requested),
            m.stats.scratch_reuses.to_string(),
            m.stats.cold_solves.to_string(),
            format!("{:.0}", m.qps),
        ]);
    }
    t
}

/// Hand-rolled JSON (the workspace is offline — no serde): one object per
/// batch mix under a `batches` array, graph metadata at the top level.
fn write_json(cfg: &ExpConfig, run: &QueriesRun) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"graph\": \"{}\",", run.graph_name);
    let _ = writeln!(s, "  \"vertices\": {},", run.vertices);
    let _ = writeln!(s, "  \"edges\": {},", run.edges);
    let _ = writeln!(s, "  \"threads\": {},", run.threads);
    let _ = writeln!(s, "  \"batches\": [");
    for (i, m) in run.measurements.iter().enumerate() {
        let st = &m.stats;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(s, "      \"requests\": {},", m.requests);
        let _ = writeln!(s, "      \"seconds\": {:.6},", m.seconds);
        let _ = writeln!(s, "      \"qps\": {:.1},", m.qps);
        let _ = writeln!(s, "      \"unique_solves\": {},", st.unique_solves);
        let _ = writeln!(s, "      \"executed_solves\": {},", st.executed_solves);
        let _ = writeln!(s, "      \"mean_solves_per_query\": {:.4},", st.mean_solves_per_query());
        let _ = writeln!(s, "      \"one_to_many\": {},", st.one_to_many);
        let _ = writeln!(s, "      \"goals_requested\": {},", st.goals_requested);
        let _ = writeln!(s, "      \"goals_reached\": {},", st.goals_reached);
        let _ = writeln!(s, "      \"warm_scratch_reuses\": {},", st.scratch_reuses);
        let _ = writeln!(s, "      \"cold_solves\": {},", st.cold_solves);
        let _ = writeln!(s, "      \"mean_steps\": {:.3}", st.mean_steps());
        let _ = writeln!(s, "    }}{}", if i + 1 == run.measurements.len() { "" } else { "," });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    std::fs::create_dir_all(&cfg.out_dir)?;
    std::fs::write(cfg.out_dir.join("BENCH_queries.json"), s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_tiny_and_emits_json() {
        let mut cfg = ExpConfig::tiny();
        cfg.out_dir = std::env::temp_dir().join(format!("rs_bench_q_{}", std::process::id()));
        let run = run(&cfg);
        assert_eq!(run.measurements.len(), 3);
        for m in &run.measurements {
            assert!(m.requests > 0);
            assert_eq!(m.stats.solves, m.requests);
            assert_eq!(m.stats.goals_reached, m.stats.goals_requested, "connected suite graph");
            assert!(
                m.stats.executed_solves <= m.stats.unique_solves,
                "single-solve shapes: at most one physical solve per unique query"
            );
        }
        let fan = &run.measurements[1];
        assert!(
            fan.stats.mean_solves_per_query() <= 1.0,
            "a one-to-many query must not cost more than one solve"
        );
        assert!(fan.stats.goals_requested >= 8 * fan.stats.one_to_many.min(1));
        let json =
            std::fs::read_to_string(cfg.out_dir.join("BENCH_queries.json")).expect("json emitted");
        assert!(json.contains("\"mean_solves_per_query\""));
        assert!(json.contains("\"batches\""));
        let table = table(&run);
        assert_eq!(table.rows.len(), 3);
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
