//! Query-plane throughput experiment: the serving-path numbers the paper
//! does not report but a production deployment lives by.
//!
//! Runs three realistic batch mixes through `QueryBatch` on a preprocessed
//! solver — point-to-point traffic, one-to-many fan-out traffic, and a
//! mixed stream — and measures batch queries/second, physical solves per
//! query (the fan-out economy: a one-to-many query with k goals costs one
//! solve, not k), and the warm/cold scratch split.
//!
//! On top of the closed-loop batches, a **sustained-load** window drives
//! the `rs_serve` server loop open-loop: requests arrive at a fixed
//! target rate (`--rate`) for a fixed window (`--duration`) regardless
//! of completions — the serving regime, where admission control and the
//! response cache earn their keep. Reported per shape: completions,
//! cache hits, and p50/p95/p99 latency from the lane histograms; plus
//! whole-run qps, rejection count, and the executed-vs-requested solve
//! gap (the work the cache saved).
//!
//! Results are printed as tables and emitted as machine-readable
//! `BENCH_queries.json`, so the query plane's performance trajectory has
//! data points across PRs.

use std::time::{Duration, Instant};

use rs_baselines::solver::BuildSolver;
use rs_core::solver::{BatchStats, Query, QueryBatch, SolverBuilder};
use rs_core::PreprocessConfig;
use rs_serve::{serve, Reply, ServerConfig, ServerStats};

use crate::sample_sources;
use crate::suite::build_graph;
use crate::table::Table;

use super::ExpConfig;

/// One measured batch mix.
#[derive(Debug, Clone)]
pub struct BatchMeasurement {
    /// Mix label (`point_to_point` / `one_to_many` / `mixed`).
    pub name: String,
    /// Requested queries in the batch.
    pub requests: usize,
    /// Batch wall-clock seconds.
    pub seconds: f64,
    /// Requested queries per second.
    pub qps: f64,
    /// Aggregated batch counters.
    pub stats: BatchStats,
}

/// The sustained-load window's outcome: open-loop arrival against the
/// server loop, per-shape SLOs from the lane histograms.
#[derive(Debug, Clone)]
pub struct SustainedMeasurement {
    /// Target open-loop arrival rate (requests/second).
    pub target_rate: f64,
    /// Requested window length in seconds.
    pub window_secs: f64,
    /// Wall-clock seconds from first arrival to last reply.
    pub seconds: f64,
    /// Requests offered (submitted or refused).
    pub offered: usize,
    /// Requests answered.
    pub answered: u64,
    /// Requests refused at admission (open loop: dropped, not retried).
    pub rejected: u64,
    /// Answered requests per wall-clock second.
    pub qps: f64,
    /// The full server snapshot (lanes, cache, rolled-up ledger).
    pub stats: ServerStats,
}

/// The experiment's output: per-mix measurements plus graph metadata.
#[derive(Debug, Clone)]
pub struct QueriesRun {
    pub graph_name: String,
    pub vertices: usize,
    pub edges: usize,
    pub threads: usize,
    pub measurements: Vec<BatchMeasurement>,
    pub sustained: SustainedMeasurement,
}

/// Runs the three batch mixes and writes `BENCH_queries.json` into
/// `cfg.out_dir`.
pub fn run(cfg: &ExpConfig) -> QueriesRun {
    let sg = build_graph("Penn", cfg.scale_denom.max(64));
    let g = sg.weighted();
    let solver = SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 32)).build();
    let picks = sample_sources(g.num_vertices(), (4 * cfg.sources).clamp(8, 64), cfg.seed);
    let vertex = |i: usize| picks[i % picks.len()];
    let fan_goals = |i: usize| -> Vec<u32> { (0..8).map(|j| vertex(i * 7 + j * 3 + 1)).collect() };

    // Mix 1: pure point-to-point traffic (with a hot duplicated pair).
    let p2p: Vec<Query> = (0..picks.len() * 4)
        .map(|i| {
            if i % 5 == 0 {
                Query::point_to_point(vertex(0), vertex(1)) // the hot pair
            } else {
                Query::point_to_point(vertex(i), vertex(i + 3))
            }
        })
        .collect();
    // Mix 2: one-to-many fan-out — each query answers 8 goals in 1 solve.
    let fan: Vec<Query> =
        (0..picks.len()).map(|i| Query::one_to_many(vertex(i), fan_goals(i))).collect();
    // Mix 3: mixed stream (p2p-dominated, fan-out and analytics mixed in).
    let mixed: Vec<Query> = (0..picks.len() * 2)
        .map(|i| match i % 8 {
            0 => Query::single_source(vertex(i)),
            1 | 2 => Query::one_to_many(vertex(i), fan_goals(i)),
            _ => Query::point_to_point(vertex(i), vertex(i + 5)),
        })
        .collect();

    let mut measurements = Vec::new();
    for (name, queries) in [("point_to_point", &p2p), ("one_to_many", &fan), ("mixed", &mixed)] {
        let batch = QueryBatch::new(queries);
        let t = Instant::now();
        let outcome = batch.execute(&*solver);
        let seconds = t.elapsed().as_secs_f64();
        measurements.push(BatchMeasurement {
            name: name.into(),
            requests: queries.len(),
            seconds,
            qps: queries.len() as f64 / seconds.max(1e-9),
            stats: outcome.stats,
        });
    }

    let sustained = run_sustained(cfg, &*solver, &picks);
    let out = QueriesRun {
        graph_name: sg.name.to_string(),
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        threads: rs_par::num_threads(),
        measurements,
        sustained,
    };

    if let Err(e) = write_json(cfg, &out) {
        eprintln!("warning: failed to write BENCH_queries.json: {e}");
    }
    out
}

/// Drives the server loop open-loop: arrivals at `cfg.sustain_rate` for
/// `cfg.sustain_secs`, repeat-heavy (every third request replays an
/// earlier one, so the response cache sees serving-shaped traffic).
/// Refused requests are dropped, as an open-loop client would — the
/// rejection count *is* a result, the admission lanes shedding load.
fn run_sustained(
    cfg: &ExpConfig,
    solver: &dyn rs_core::SsspSolver,
    picks: &[u32],
) -> SustainedMeasurement {
    let vertex = |i: usize| picks[i % picks.len()];
    let offered = (cfg.sustain_rate * cfg.sustain_secs).ceil().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / cfg.sustain_rate.max(1.0));
    // Pre-generate the arrival schedule's queries (seeded, repeat-heavy).
    let mut state = cfg.seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut history: Vec<Query> = Vec::new();
    let queries: Vec<Query> = (0..offered)
        .map(|i| {
            let q = if i % 3 == 0 && !history.is_empty() {
                history[next() % history.len()].clone()
            } else {
                match next() % 10 {
                    0 => Query::single_source(vertex(next())),
                    1..=2 => Query::one_to_many(
                        vertex(next()),
                        vec![vertex(next()), vertex(next()), vertex(next()), vertex(next())],
                    ),
                    3 => Query::many_to_many(
                        vec![vertex(next()), vertex(next())],
                        vec![vertex(next()), vertex(next())],
                    ),
                    _ => Query::point_to_point(vertex(next()), vertex(next())),
                }
            };
            history.push(q.clone());
            q
        })
        .collect();

    let ((seconds, rejected), stats) = serve(solver, &ServerConfig::default(), |server| {
        let (tx, rx) = std::sync::mpsc::channel::<Reply>();
        let start = Instant::now();
        let mut rejected = 0u64;
        for (i, q) in queries.iter().enumerate() {
            // Open loop: hold the arrival schedule, never wait for
            // completions. If the wall clock is behind schedule the
            // submit happens immediately (a burst, as in real traffic).
            let due = interval.checked_mul(i as u32).unwrap_or_default();
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            if server.submit(q.clone(), tx.clone()).is_err() {
                rejected += 1;
            }
        }
        drop(tx);
        // Drain every reply; wall clock covers arrival + drain.
        let answered = rx.iter().count() as u64;
        let seconds = start.elapsed().as_secs_f64();
        debug_assert_eq!(answered, queries.len() as u64 - rejected);
        (seconds, rejected)
    });
    let answered = stats.completed();
    SustainedMeasurement {
        target_rate: cfg.sustain_rate,
        window_secs: cfg.sustain_secs,
        seconds,
        offered,
        answered,
        rejected,
        qps: answered as f64 / seconds.max(1e-9),
        stats,
    }
}

/// Renders the run as a display table.
pub fn table(run: &QueriesRun) -> Table {
    let mut t = Table::new(
        format!(
            "Query throughput on {} (n={}, m={}, {} threads, preprocessed k=1 rho=32)",
            run.graph_name, run.vertices, run.edges, run.threads
        ),
        &[
            "mix",
            "requests",
            "unique",
            "solves",
            "solves/query",
            "goals reached",
            "warm",
            "cold",
            "qps",
        ],
    );
    for m in &run.measurements {
        t.push_row(vec![
            m.name.clone(),
            m.requests.to_string(),
            m.stats.unique_solves.to_string(),
            m.stats.executed_solves.to_string(),
            format!("{:.3}", m.stats.mean_solves_per_query()),
            format!("{}/{}", m.stats.goals_reached, m.stats.goals_requested),
            m.stats.scratch_reuses.to_string(),
            m.stats.cold_solves.to_string(),
            format!("{:.0}", m.qps),
        ]);
    }
    t
}

/// Renders the sustained-load window as a per-lane SLO table.
pub fn sustained_table(run: &QueriesRun) -> Table {
    let su = &run.sustained;
    let mut t = Table::new(
        format!(
            "Sustained load: {:.0} req/s offered for {:.1}s | answered {} / offered {} \
             (rejected {}) | {:.0} qps | cache hit-rate {:.3} | solves {} requested, {} executed",
            su.target_rate,
            su.window_secs,
            su.answered,
            su.offered,
            su.rejected,
            su.qps,
            su.stats.cache.hit_rate(),
            su.stats.totals.solves,
            su.stats.totals.executed_solves,
        ),
        &["lane", "admitted", "rejected", "completed", "cache hits", "p50 us", "p95 us", "p99 us"],
    );
    for lane in &su.stats.lanes {
        let (p50, p95, p99) = lane.latency_percentiles();
        t.push_row(vec![
            lane.shape.name().to_string(),
            lane.admitted.to_string(),
            lane.rejected.to_string(),
            lane.completed.to_string(),
            lane.cache_hits.to_string(),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
        ]);
    }
    t
}

/// Hand-rolled JSON (the workspace is offline — no serde): one object per
/// batch mix under a `batches` array, graph metadata at the top level.
fn write_json(cfg: &ExpConfig, run: &QueriesRun) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"graph\": \"{}\",", run.graph_name);
    let _ = writeln!(s, "  \"vertices\": {},", run.vertices);
    let _ = writeln!(s, "  \"edges\": {},", run.edges);
    let _ = writeln!(s, "  \"threads\": {},", run.threads);
    let _ = writeln!(s, "  \"batches\": [");
    for (i, m) in run.measurements.iter().enumerate() {
        let st = &m.stats;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(s, "      \"requests\": {},", m.requests);
        let _ = writeln!(s, "      \"seconds\": {:.6},", m.seconds);
        let _ = writeln!(s, "      \"qps\": {:.1},", m.qps);
        let _ = writeln!(s, "      \"unique_solves\": {},", st.unique_solves);
        let _ = writeln!(s, "      \"executed_solves\": {},", st.executed_solves);
        let _ = writeln!(s, "      \"mean_solves_per_query\": {:.4},", st.mean_solves_per_query());
        let _ = writeln!(s, "      \"one_to_many\": {},", st.one_to_many);
        let _ = writeln!(s, "      \"goals_requested\": {},", st.goals_requested);
        let _ = writeln!(s, "      \"goals_reached\": {},", st.goals_reached);
        let _ = writeln!(s, "      \"warm_scratch_reuses\": {},", st.scratch_reuses);
        let _ = writeln!(s, "      \"cold_solves\": {},", st.cold_solves);
        let _ = writeln!(s, "      \"mean_steps\": {:.3}", st.mean_steps());
        let _ = writeln!(s, "    }}{}", if i + 1 == run.measurements.len() { "" } else { "," });
    }
    let _ = writeln!(s, "  ],");
    let su = &run.sustained;
    let _ = writeln!(s, "  \"sustained\": {{");
    let _ = writeln!(s, "    \"target_rate\": {:.1},", su.target_rate);
    let _ = writeln!(s, "    \"window_secs\": {:.3},", su.window_secs);
    let _ = writeln!(s, "    \"seconds\": {:.6},", su.seconds);
    let _ = writeln!(s, "    \"offered\": {},", su.offered);
    let _ = writeln!(s, "    \"answered\": {},", su.answered);
    let _ = writeln!(s, "    \"rejected\": {},", su.rejected);
    let _ = writeln!(s, "    \"qps\": {:.1},", su.qps);
    let _ = writeln!(s, "    \"requested_solves\": {},", su.stats.totals.solves);
    let _ = writeln!(s, "    \"executed_solves\": {},", su.stats.totals.executed_solves);
    let _ = writeln!(s, "    \"cold_solves\": {},", su.stats.totals.cold_solves);
    let _ = writeln!(s, "    \"cache\": {{");
    let _ = writeln!(s, "      \"hits\": {},", su.stats.cache.hits);
    let _ = writeln!(s, "      \"misses\": {},", su.stats.cache.misses);
    let _ = writeln!(s, "      \"evictions\": {},", su.stats.cache.evictions);
    let _ = writeln!(s, "      \"hit_rate\": {:.4},", su.stats.cache.hit_rate());
    let _ = writeln!(s, "      \"entries\": {}", su.stats.cache.entries);
    let _ = writeln!(s, "    }},");
    let _ = writeln!(s, "    \"lanes\": [");
    for (i, lane) in su.stats.lanes.iter().enumerate() {
        let (p50, p95, p99) = lane.latency_percentiles();
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"shape\": \"{}\",", lane.shape.name());
        let _ = writeln!(s, "        \"admitted\": {},", lane.admitted);
        let _ = writeln!(s, "        \"rejected\": {},", lane.rejected);
        let _ = writeln!(s, "        \"completed\": {},", lane.completed);
        let _ = writeln!(s, "        \"cache_hits\": {},", lane.cache_hits);
        let _ = writeln!(s, "        \"p50_us\": {p50},");
        let _ = writeln!(s, "        \"p95_us\": {p95},");
        let _ = writeln!(s, "        \"p99_us\": {p99}");
        let _ = writeln!(s, "      }}{}", if i + 1 == su.stats.lanes.len() { "" } else { "," });
    }
    let _ = writeln!(s, "    ]");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    std::fs::create_dir_all(&cfg.out_dir)?;
    std::fs::write(cfg.out_dir.join("BENCH_queries.json"), s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_tiny_and_emits_json() {
        let mut cfg = ExpConfig::tiny();
        cfg.out_dir = std::env::temp_dir().join(format!("rs_bench_q_{}", std::process::id()));
        let run = run(&cfg);
        assert_eq!(run.measurements.len(), 3);
        for m in &run.measurements {
            assert!(m.requests > 0);
            assert_eq!(m.stats.solves, m.requests);
            assert_eq!(m.stats.goals_reached, m.stats.goals_requested, "connected suite graph");
            assert!(
                m.stats.executed_solves <= m.stats.unique_solves,
                "single-solve shapes: at most one physical solve per unique query"
            );
        }
        let fan = &run.measurements[1];
        assert!(
            fan.stats.mean_solves_per_query() <= 1.0,
            "a one-to-many query must not cost more than one solve"
        );
        assert!(fan.stats.goals_requested >= 8 * fan.stats.one_to_many.min(1));
        let su = &run.sustained;
        assert_eq!(su.answered + su.rejected, su.offered as u64, "every request accounted for");
        assert!(su.answered > 0, "the window answered something");
        assert!(su.stats.cache.hits > 0, "repeat-heavy traffic must hit the cache");
        assert!(
            su.stats.totals.executed_solves < su.stats.totals.solves,
            "cache + dedup must save physical solves ({} executed vs {} requested)",
            su.stats.totals.executed_solves,
            su.stats.totals.solves
        );
        let json =
            std::fs::read_to_string(cfg.out_dir.join("BENCH_queries.json")).expect("json emitted");
        assert!(json.contains("\"mean_solves_per_query\""));
        assert!(json.contains("\"batches\""));
        assert!(json.contains("\"sustained\""));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"hit_rate\""));
        let table = table(&run);
        assert_eq!(table.rows.len(), 3);
        let slo = sustained_table(&run);
        assert_eq!(slo.rows.len(), 4, "one row per lane");
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
