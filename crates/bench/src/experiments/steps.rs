//! Figures 4–5 and Tables 4–7: the number of radius-stepping steps as ρ
//! varies (§5.3).
//!
//! For each suite graph and each ρ, compute `r(v) = r_ρ(v)` with the
//! truncated-Dijkstra preprocessing and run Algorithm 1 from sampled
//! sources, counting outer-loop steps. As in the paper, the step count
//! depends only on ρ (Theorem 3.3) and not on k, so the radii are computed
//! without materialising shortcut edges — which is also what makes
//! ρ = 10⁴ feasible (`n·ρ` edges would not fit at paper scale; see
//! DESIGN.md substitution S3).
//!
//! The scale-robust comparison against the paper is the *reduction factor*
//! (Tables 5 and 7): steps(ρ=1) / steps(ρ), where ρ=1 is standard BFS
//! (unweighted) or a Dijkstra that extracts equal distances together
//! (weighted).

use rs_baselines::solver::BuildSolver;
use rs_core::preprocess::compute_radii;
use rs_core::solver::{Algorithm, QueryBatch, Radii, SolverBuilder};
use rs_core::EngineKind;
use rs_graph::{CsrGraph, VertexId};

use crate::paper::{self, RHO_UNWEIGHTED, RHO_WEIGHTED};
use crate::sample_sources;
use crate::suite::{full_suite, SuiteGraph};
use crate::table::{fmt_count, Table};

use super::ExpConfig;

/// Mean number of steps over `sources`, with `r(v) = r_ρ(v)`: one solver
/// built per (graph, ρ), sources fanned out through a [`QueryBatch`] —
/// duplicate samples are answered once, every pool task reuses one
/// pre-warmed scratch, and the mean comes straight from the batch's
/// aggregated [`rs_core::StepStats`].
pub fn mean_steps(g: &CsrGraph, rho: usize, sources: &[VertexId]) -> f64 {
    let radii = if rho == 1 {
        // r_1(v) = 0 for every v (the source itself is its closest vertex):
        // exactly Dijkstra-with-batched-ties / standard BFS.
        Radii::Zero
    } else {
        Radii::PerVertex(compute_radii(g, rho))
    };
    let solver = SolverBuilder::new(g)
        .algorithm(Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii })
        .build();
    QueryBatch::from_sources(sources).execute(&*solver).stats.mean_steps()
}

/// One suite graph's step-count column over a ρ grid (`None` = skipped
/// because ρ is too large for the scaled graph).
pub fn steps_column(g: &CsrGraph, rhos: &[usize], cfg: &ExpConfig) -> Vec<Option<f64>> {
    let sources = sample_sources(g.num_vertices(), cfg.sources, cfg.seed);
    rhos.iter()
        .map(|&rho| cfg.rho_usable(rho, g.num_vertices()).then(|| mean_steps(g, rho, &sources)))
        .collect()
}

/// Shared engine for the unweighted (Fig 4, Tables 4–5) and weighted
/// (Fig 5, Tables 6–7) experiments.
pub struct StepsReport {
    /// Table N: mean rounds per (ρ, graph).
    pub rounds: Table,
    /// Table N+1: reduction factor vs ρ=1, ours and the paper's.
    pub reduction: Table,
    /// Figure panels (a) roads, (b) webs, (c) grids — same series split by
    /// group, for plotting.
    pub figure_panels: Vec<Table>,
}

/// Runs the experiment over the whole suite.
pub fn run(cfg: &ExpConfig, weighted: bool) -> StepsReport {
    let rhos: &[usize] = if weighted { &RHO_WEIGHTED } else { &RHO_UNWEIGHTED };
    let (fig, tab_rounds, tab_red) = if weighted {
        ("Figure 5", "Table 6", "Table 7")
    } else {
        ("Figure 4", "Table 4", "Table 5")
    };
    let suite = full_suite(cfg.scale_denom);

    let columns: Vec<(String, Vec<Option<f64>>)> = suite
        .iter()
        .map(|sg| {
            let g = if weighted { sg.weighted() } else { sg.graph.clone() };
            (sg.name.to_string(), steps_column(&g, rhos, cfg))
        })
        .collect();

    // Rounds table.
    let mut header: Vec<&str> = vec!["rho"];
    for (name, _) in &columns {
        header.push(name);
    }
    let mut rounds = Table::new(
        format!(
            "{tab_rounds}: avg rounds, {} graphs (scale 1/{}, {} sources)",
            if weighted { "weighted" } else { "unweighted" },
            cfg.scale_denom,
            cfg.sources
        ),
        &header,
    );
    for (i, &rho) in rhos.iter().enumerate() {
        let mut row = vec![rho.to_string()];
        for (_, col) in &columns {
            row.push(col[i].map_or("-".into(), fmt_count));
        }
        rounds.push_row(row);
    }

    // Reduction table, ours vs paper.
    let mut red_header: Vec<String> = vec!["rho".into()];
    for (name, _) in &columns {
        red_header.push(format!("{name} ours"));
        red_header.push("paper".into());
    }
    let red_header_refs: Vec<&str> = red_header.iter().map(|s| s.as_str()).collect();
    let mut reduction = Table::new(
        format!("{tab_red}: reduction factor vs rho=1 (ours | paper@full-scale)"),
        &red_header_refs,
    );
    for (i, &rho) in rhos.iter().enumerate().skip(1) {
        let mut row = vec![rho.to_string()];
        for (name, col) in &columns {
            let ours = match (col[0], col[i]) {
                (Some(base), Some(v)) if v > 0.0 => Some(base / v),
                _ => None,
            };
            row.push(ours.map_or("-".into(), |f| format!("{f:.2}")));
            let paper = if weighted {
                paper::table6_value(name, 1).zip(paper::table6_value(name, rho))
            } else {
                paper::table4_value(name, 1).zip(paper::table4_value(name, rho))
            };
            row.push(paper.map_or("-".into(), |(b, v)| format!("{:.2}", b / v)));
        }
        reduction.push_row(row);
    }

    // Figure panels by group.
    let mut figure_panels = Vec::new();
    for (panel, group) in [("a", "road"), ("b", "web"), ("c", "grid")] {
        let members: Vec<&SuiteGraph> = suite.iter().filter(|sg| sg.group == group).collect();
        let mut h: Vec<String> = vec!["rho".into()];
        for m in &members {
            h.push(m.name.to_string());
        }
        let h_refs: Vec<&str> = h.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(format!("{fig} ({panel}): {group}s — avg steps vs rho"), &h_refs);
        for (i, &rho) in rhos.iter().enumerate() {
            let mut row = vec![rho.to_string()];
            for m in &members {
                let col = &columns.iter().find(|(n, _)| n == m.name).unwrap().1;
                row.push(col[i].map_or("-".into(), fmt_count));
            }
            t.push_row(row);
        }
        figure_panels.push(t);
    }

    StepsReport { rounds, reduction, figure_panels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, weights, WeightModel};

    #[test]
    fn steps_decrease_with_rho_unweighted() {
        let g = gen::grid2d(40, 40);
        let sources = sample_sources(1600, 3, 1);
        let s1 = mean_steps(&g, 1, &sources);
        let s10 = mean_steps(&g, 10, &sources);
        let s50 = mean_steps(&g, 50, &sources);
        assert!(s1 > s10 && s10 > s50, "{s1} > {s10} > {s50} expected");
        // rho=1 on a unit grid is plain BFS: steps = eccentricity.
        assert!(s1 >= 39.0);
    }

    #[test]
    fn steps_decrease_with_rho_weighted() {
        let g = weights::reweight(&gen::grid2d(24, 24), WeightModel::paper_weighted(), 5);
        let sources = sample_sources(576, 3, 2);
        let s1 = mean_steps(&g, 1, &sources);
        let s10 = mean_steps(&g, 10, &sources);
        assert!(s1 / s10 > 5.0, "weighted reduction at rho=10 should be large, got {s1}/{s10}");
    }

    #[test]
    fn rho2_halves_unweighted_steps() {
        // The paper's crispest invariant (Table 5, every graph): rho = 2
        // gives r(v) = 1, settling exactly two BFS levels per step.
        let g = gen::grid2d(30, 30);
        let sources = sample_sources(900, 3, 3);
        let s1 = mean_steps(&g, 1, &sources);
        let s2 = mean_steps(&g, 2, &sources);
        assert!((s1 / s2 - 2.0).abs() < 0.05, "expected 2x, got {}", s1 / s2);
    }

    #[test]
    fn full_run_tiny() {
        let cfg = ExpConfig::tiny();
        let report = run(&cfg, false);
        assert_eq!(report.rounds.rows.len(), RHO_UNWEIGHTED.len());
        assert_eq!(report.figure_panels.len(), 3);
        let report_w = run(&cfg, true);
        assert_eq!(report_w.rounds.rows.len(), RHO_WEIGHTED.len());
    }
}
