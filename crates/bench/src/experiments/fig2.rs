//! Figure 2: the sparse graph on which reaching ρ vertices costs Θ(ρ²)
//! edge visits (§4.1).
//!
//! Builds the gadget (three columns of `d` vertices with complete bipartite
//! edges between adjacent columns), runs a ball search with ρ = 3d, and
//! reports edges explored per d² — a flat series confirms the quadratic
//! lower bound that makes Lemma 4.2's `O(nρ²)` preprocessing work tight.

use rs_core::preprocess::{ball_search, BallScratch};
use rs_graph::gen;

use crate::table::Table;

use super::ExpConfig;

/// Runs the Figure-2 experiment for a geometric ladder of gadget sizes.
pub fn run(cfg: &ExpConfig) -> Table {
    let sizes: &[usize] =
        if cfg.scale_denom >= 256 { &[8, 16, 32] } else { &[16, 32, 64, 128, 256] };
    let mut t = Table::new(
        "Figure 2: ball search must explore Θ(d²) edges to reach 3d vertices",
        &["d", "n=3d", "rho", "explored edges", "explored / d^2"],
    );
    for &d in sizes {
        let g = gen::fig2_gadget(d, 3);
        let rho = 3 * d;
        let mut scratch = BallScratch::new(g.num_vertices());
        let ball = ball_search(&g.weight_sorted(), 0, rho, rho, &mut scratch);
        assert_eq!(ball.members.len(), 3 * d, "gadget ball must cover the graph");
        t.push_row(vec![
            d.to_string(),
            g.num_vertices().to_string(),
            rho.to_string(),
            ball.explored_edges.to_string(),
            format!("{:.2}", ball.explored_edges as f64 / (d * d) as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_column_is_flat() {
        let t = run(&ExpConfig::tiny());
        let ratios: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(ratios.len() >= 3);
        let (lo, hi) = ratios.iter().fold((f64::MAX, f64::MIN), |(l, h), &r| (l.min(r), h.max(r)));
        assert!(hi / lo < 3.0, "Θ(d²) ratio should be flat, got {ratios:?}");
    }
}
