//! Sharded-serving experiment: partition + boundary-skeleton routing vs
//! a flat solve, at P ∈ {1, 4, 16} parts.
//!
//! Three workloads per part count, all self-checked for bit-identical
//! goal distances against the flat baseline before any number is
//! reported:
//!
//! * **cross-part point-to-point** — diagonal grid pairs, the shape the
//!   three-phase route (intra-part → skeleton → intra-part) exists for;
//! * **same-part point-to-point** — the fallback path; the
//!   `sharded_not_slower_same_part` flag asserts delegation keeps the
//!   fallback within a tolerant factor of the flat baseline (CI smokes
//!   grep it);
//! * **many-to-many** — table rows pinned to their source's part and
//!   executed over the per-part scratch pools.
//!
//! Results land in `BENCH_shard.json` (hand-rolled JSON, like the other
//! experiments) with per-P blocks plus the headline flag.

use std::time::Instant;

use rs_core::solver::{Query, SolverBuilder, SsspSolver};
use rs_core::SolverScratch;
use rs_graph::{gen, weights, CsrGraph, Dist, VertexId, WeightModel};
use rs_shard::{Partitioner, ShardedSolver};

use crate::table::Table;

use super::ExpConfig;

/// One part count's measurements (sharded and flat on identical work).
#[derive(Debug, Clone)]
pub struct PartMeasurement {
    /// Number of parts.
    pub parts: usize,
    /// Skeleton size: boundary vertices.
    pub boundary_nodes: usize,
    /// Skeleton size: symmetrised arcs (cut arcs + boundary cliques).
    pub boundary_arcs: usize,
    /// Partition + skeleton build, seconds.
    pub build_seconds: f64,
    /// Cross-part point-to-point queries per second, sharded.
    pub cross_qps: f64,
    /// Same work, flat baseline.
    pub flat_cross_qps: f64,
    /// Same-part point-to-point queries per second, sharded (fallback).
    pub same_qps: f64,
    /// Same work, flat baseline.
    pub flat_same_qps: f64,
    /// Many-to-many table rows per second, sharded.
    pub mm_rows_per_sec: f64,
    /// Same table, flat baseline.
    pub flat_mm_rows_per_sec: f64,
}

/// The experiment's output.
#[derive(Debug, Clone)]
pub struct ShardRun {
    pub side: usize,
    pub vertices: usize,
    pub edges: usize,
    pub pairs: usize,
    pub runs: Vec<PartMeasurement>,
}

impl ShardRun {
    /// The CI flag: the same-part fallback must stay within a tolerant
    /// factor of the flat baseline at every part count (it *is* a flat
    /// solve plus a partition lookup, so 2x headroom absorbs noise).
    pub fn not_slower_same_part(&self) -> bool {
        self.runs.iter().all(|r| r.same_qps >= 0.5 * r.flat_same_qps)
    }
}

/// Grid side for the configured scale (same sizing as the p2p
/// experiment: paper scale is the 256×256 acceptance grid).
fn grid_side(cfg: &ExpConfig) -> usize {
    let target = (256 * 256) / cfg.scale_denom.max(1);
    ((target as f64).sqrt() as usize).max(16)
}

/// Times `queries` through `solver` with a warm scratch, returning
/// (goal distances, seconds).
fn time_queries(solver: &dyn SsspSolver, queries: &[Query]) -> (Vec<Vec<Vec<Option<Dist>>>>, f64) {
    let mut scratch = SolverScratch::new();
    solver.warm_scratch(&mut scratch);
    let mut tables = Vec::with_capacity(queries.len());
    let t = Instant::now();
    for q in queries {
        tables.push(solver.execute(q, &mut scratch).distance_table());
    }
    (tables, t.elapsed().as_secs_f64())
}

/// Runs sharded vs flat at P ∈ {1, 4, 16} and writes `BENCH_shard.json`
/// into `cfg.out_dir`.
pub fn run(cfg: &ExpConfig) -> ShardRun {
    let side = grid_side(cfg);
    let g: CsrGraph =
        weights::reweight(&gen::grid2d(side, side), WeightModel::paper_weighted(), cfg.seed);
    let n = g.num_vertices() as u32;
    // Same construction as the sharded solver's internal fallback, so
    // the same-part comparison isolates routing overhead, not engine
    // choice.
    let flat = SolverBuilder::new(&g).radius_stepping_solver_from_algorithm();
    let num_pairs = cfg.sources.max(2);

    // Diagonal pairs span the grid; with P > 1 they cross parts.
    let diagonal: Vec<Query> = (0..num_pairs)
        .map(|i| {
            let s = (i as u32 * 37) % side as u32;
            Query::point_to_point(s, n - 1 - s)
        })
        .collect();
    // One modest table: rows spread over the grid (and thus the parts).
    let mm_sources: Vec<VertexId> = (0..num_pairs as u32 * 2).map(|i| (i * 41) % n).collect();
    let mm_goals: Vec<VertexId> = (0..num_pairs as u32).map(|i| (i * 59 + 3) % n).collect();
    let mm_rows = mm_sources.len();
    let table_query = vec![Query::many_to_many(mm_sources, mm_goals)];

    let mut runs = Vec::new();
    for parts in [1usize, 4, 16] {
        let t = Instant::now();
        let pg = Partitioner::new(parts).partition(&g);
        let build_seconds = t.elapsed().as_secs_f64();
        let sharded = ShardedSolver::new(&g, &pg);

        // Same-part pairs for *this* partition: each source paired with
        // the next vertex sharing its part.
        let same: Vec<Query> = (0..num_pairs)
            .map(|i| {
                let s = (i as u32 * 53) % n;
                let (p, _) = pg.locate(s);
                let t = (1..n)
                    .map(|d| (s + d) % n)
                    .find(|&v| pg.locate(v).0 == p)
                    .unwrap_or((s + 1) % n);
                Query::point_to_point(s, t)
            })
            .collect();

        let (s_cross, cross_secs) = time_queries(&sharded, &diagonal);
        let (f_cross, flat_cross_secs) = time_queries(&flat, &diagonal);
        assert_eq!(s_cross, f_cross, "P={parts}: cross-part distances diverged from flat");
        let (s_same, same_secs) = time_queries(&sharded, &same);
        let (f_same, flat_same_secs) = time_queries(&flat, &same);
        assert_eq!(s_same, f_same, "P={parts}: same-part distances diverged from flat");
        let (s_mm, mm_secs) = time_queries(&sharded, &table_query);
        let (f_mm, flat_mm_secs) = time_queries(&flat, &table_query);
        assert_eq!(s_mm, f_mm, "P={parts}: many-to-many table diverged from flat");

        runs.push(PartMeasurement {
            parts,
            boundary_nodes: pg.boundary().num_nodes(),
            boundary_arcs: pg.boundary().num_edges(),
            build_seconds,
            cross_qps: diagonal.len() as f64 / cross_secs.max(1e-9),
            flat_cross_qps: diagonal.len() as f64 / flat_cross_secs.max(1e-9),
            same_qps: same.len() as f64 / same_secs.max(1e-9),
            flat_same_qps: same.len() as f64 / flat_same_secs.max(1e-9),
            mm_rows_per_sec: mm_rows as f64 / mm_secs.max(1e-9),
            flat_mm_rows_per_sec: mm_rows as f64 / flat_mm_secs.max(1e-9),
        });
    }

    let out =
        ShardRun { side, vertices: g.num_vertices(), edges: g.num_edges(), pairs: num_pairs, runs };
    if let Err(e) = write_json(cfg, &out) {
        eprintln!("warning: failed to write BENCH_shard.json: {e}");
    }
    out
}

/// Renders the run as a display table.
pub fn table(run: &ShardRun) -> Table {
    let mut t = Table::new(
        format!(
            "Sharded serving on a {s}x{s} grid (n={}, m={}, {} pairs/workload) — \
             same-part fallback not slower: {}",
            run.vertices,
            run.edges,
            run.pairs,
            run.not_slower_same_part(),
            s = run.side,
        ),
        &[
            "parts",
            "boundary n",
            "boundary m",
            "build s",
            "cross qps",
            "flat cross",
            "same qps",
            "flat same",
            "mm rows/s",
            "flat mm",
        ],
    );
    for r in &run.runs {
        t.push_row(vec![
            r.parts.to_string(),
            r.boundary_nodes.to_string(),
            r.boundary_arcs.to_string(),
            format!("{:.4}", r.build_seconds),
            format!("{:.0}", r.cross_qps),
            format!("{:.0}", r.flat_cross_qps),
            format!("{:.0}", r.same_qps),
            format!("{:.0}", r.flat_same_qps),
            format!("{:.0}", r.mm_rows_per_sec),
            format!("{:.0}", r.flat_mm_rows_per_sec),
        ]);
    }
    t
}

/// Hand-rolled JSON (no serde in the workspace).
fn write_json(cfg: &ExpConfig, run: &ShardRun) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"grid_side\": {},", run.side);
    let _ = writeln!(s, "  \"vertices\": {},", run.vertices);
    let _ = writeln!(s, "  \"edges\": {},", run.edges);
    let _ = writeln!(s, "  \"pairs\": {},", run.pairs);
    let _ = writeln!(s, "  \"part_counts\": [");
    for (i, r) in run.runs.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"parts\": {},", r.parts);
        let _ = writeln!(s, "      \"boundary_nodes\": {},", r.boundary_nodes);
        let _ = writeln!(s, "      \"boundary_arcs\": {},", r.boundary_arcs);
        let _ = writeln!(s, "      \"build_seconds\": {:.6},", r.build_seconds);
        let _ = writeln!(s, "      \"cross_part_qps\": {:.1},", r.cross_qps);
        let _ = writeln!(s, "      \"flat_cross_part_qps\": {:.1},", r.flat_cross_qps);
        let _ = writeln!(s, "      \"same_part_qps\": {:.1},", r.same_qps);
        let _ = writeln!(s, "      \"flat_same_part_qps\": {:.1},", r.flat_same_qps);
        let _ = writeln!(s, "      \"many_to_many_rows_per_sec\": {:.1},", r.mm_rows_per_sec);
        let _ =
            writeln!(s, "      \"flat_many_to_many_rows_per_sec\": {:.1}", r.flat_mm_rows_per_sec);
        let _ = writeln!(s, "    }}{}", if i + 1 == run.runs.len() { "" } else { "," });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"sharded_not_slower_same_part\": {}", run.not_slower_same_part());
    let _ = writeln!(s, "}}");
    std::fs::create_dir_all(&cfg.out_dir)?;
    std::fs::write(cfg.out_dir.join("BENCH_shard.json"), s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_tiny_and_emits_json() {
        let mut cfg = ExpConfig::tiny();
        cfg.out_dir = std::env::temp_dir().join(format!("rs_bench_shard_{}", std::process::id()));
        let run = run(&cfg);
        assert_eq!(run.runs.len(), 3);
        assert_eq!(run.runs.iter().map(|r| r.parts).collect::<Vec<_>>(), vec![1, 4, 16]);
        // P = 1 has no boundary; P > 1 must have one on a connected grid.
        assert_eq!(run.runs[0].boundary_nodes, 0);
        assert!(run.runs[1].boundary_nodes > 0);
        let json =
            std::fs::read_to_string(cfg.out_dir.join("BENCH_shard.json")).expect("json emitted");
        assert!(json.contains("\"sharded_not_slower_same_part\""));
        assert!(json.contains("\"part_counts\""));
        let t = table(&run);
        assert_eq!(t.rows.len(), 3);
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
