//! The paper's motivating contrast (§1): ∆-stepping's steps can take many
//! substeps (light-edge phases bounded only by chain length inside a
//! bucket), while radius stepping's are bounded by `k + 2` (Theorem 3.2).
//!
//! Measures both algorithms' step/substep structure on one weighted graph:
//! buckets & phases for ∆-stepping across ∆, steps & substeps for radius
//! stepping across k.

use rs_baselines::delta_stepping;
use rs_core::preprocess::{PreprocessConfig, Preprocessed, ShortcutHeuristic};
use rs_core::{EngineConfig, EngineKind};

use crate::suite::build_graph;
use crate::table::Table;

use super::ExpConfig;

/// Runs the substep-structure comparison.
pub fn run(cfg: &ExpConfig) -> Table {
    let sg = build_graph("Penn", cfg.scale_denom.max(64));
    let g = sg.weighted();
    let mut t = Table::new(
        format!(
            "Substep structure: Delta-stepping vs radius stepping on {} (n={}, weighted)",
            sg.name,
            g.num_vertices()
        ),
        &["algorithm", "parameter", "steps", "total substeps", "max substeps/step", "bound"],
    );

    for delta in [100u64, 1_000, 10_000, 100_000] {
        let out = delta_stepping(&g, 0, delta);
        t.push_row(vec![
            "delta-stepping".into(),
            format!("delta={delta}"),
            out.buckets.to_string(),
            out.phases.to_string(),
            out.max_phases_in_bucket.to_string(),
            "none (Θ(n) worst case)".into(),
        ]);
    }

    for k in [1u32, 2, 4] {
        let h = if k == 1 { ShortcutHeuristic::Full } else { ShortcutHeuristic::Dp };
        let pre = Preprocessed::build(&g, &PreprocessConfig { k, rho: 32, heuristic: h });
        let out = pre.sssp_with(0, EngineKind::Frontier, EngineConfig::with_trace());
        assert!(out.stats.max_substeps_in_step <= k as usize + 2, "Theorem 3.2");
        t.push_row(vec![
            "radius-stepping".into(),
            format!("k={k}, rho=32"),
            out.stats.steps.to_string(),
            out.stats.substeps.to_string(),
            out.stats.max_substeps_in_step.to_string(),
            format!("k+2 = {}", k + 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_stepping_substep_bound_binds_delta_does_not() {
        let t = run(&ExpConfig::tiny());
        assert_eq!(t.rows.len(), 7);
        // All radius-stepping rows respect k+2 (asserted inside run); the
        // delta rows exist for contrast.
        assert!(t.rows.iter().any(|r| r[0] == "delta-stepping"));
        assert!(t.rows.iter().any(|r| r[0] == "radius-stepping"));
    }
}
