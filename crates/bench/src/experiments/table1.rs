//! Table 1: work/depth bounds of exact sub-cubic SSSP algorithms.
//!
//! The table itself is analytic; we reproduce it as a rendered table and
//! back the two "this work" rows with measured proxies on a suite graph:
//! total relaxations against the `O((m + nρ) log n)` work term and
//! steps·substeps against the `O((n/ρ) log n log ρL)` depth term.

use rs_core::preprocess::{PreprocessConfig, Preprocessed};
use rs_core::verify::ceil_log2;
use rs_core::{EngineConfig, EngineKind};

use crate::suite::build_graph;
use crate::table::Table;

use super::ExpConfig;

/// The static bounds table (paper Table 1, abridged to the exact-SSSP
/// rows).
pub fn bounds_table() -> Table {
    let mut t = Table::new(
        "Table 1: work/depth bounds for exact Sssp with subcubic work",
        &["setting", "algorithm", "work", "depth"],
    );
    let rows: [[&str; 4]; 9] = [
        ["unweighted", "standard BFS", "O(m+n)", "O(n)"],
        ["unweighted", "Ullman & Yannakakis", "~O(m√n + nm/t + n³/t⁴)", "~O(t)"],
        ["unweighted", "Spencer", "O(m log ρ + nρ² log² ρ)", "O((n/ρ) log² ρ)"],
        [
            "unweighted",
            "this work",
            "O(m + nρ)  [preproc O(nρ²)]",
            "O((n/ρ) log ρ log* ρ)  [preproc O(ρ log* ρ)]",
        ],
        ["weighted", "parallel Dijkstra (Paige-Kruskal)", "O(m + n log n)", "O(n log n)"],
        ["weighted", "Klein & Subramanian", "O(m√n log K log n)", "O(√n log K log n)"],
        ["weighted", "Spencer", "O((nρ² log ρ + m) log(nρL))", "O((n/ρ) log n log(ρL))"],
        ["weighted", "Cohen", "O(n² + n³/ρ²)", "O(ρ · polylog(n))"],
        [
            "weighted",
            "this work",
            "O((m + nρ) log n)  [preproc O(m log n + nρ²)]",
            "O((n/ρ) log n log ρL)  [preproc O(ρ²)]",
        ],
    ];
    for r in rows {
        t.push_row(r.iter().map(|s| s.to_string()).collect());
    }
    t
}

/// Measured work/depth proxies backing the "this work" rows.
pub fn measured_table(cfg: &ExpConfig) -> Table {
    let sg = build_graph("2D", cfg.scale_denom.max(64));
    let g = sg.weighted();
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut t = Table::new(
        format!("Table 1 (empirical): work/depth proxies on 2D grid (n={n}, m={m})"),
        &[
            "rho",
            "preproc edges explored",
            "n*rho^2 bound",
            "relaxations",
            "(m+n*rho)log n bound",
            "steps*substeps",
            "(n/rho)log n log(rhoL) bound",
        ],
    );
    for rho in [4usize, 16, 64] {
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, rho));
        let out = pre.sssp_with(0, EngineKind::Frontier, EngineConfig::with_trace());
        let log_n = ceil_log2(n as u64) as usize;
        let log_rho_l = ceil_log2(rho as u64 * pre.graph.max_weight() as u64) as usize;
        let depth_proxy = out.stats.substeps;
        t.push_row(vec![
            rho.to_string(),
            pre.stats.explored_edges.to_string(),
            (n * rho * rho).to_string(),
            out.stats.relaxations.to_string(),
            ((m + n * rho) * log_n).to_string(),
            depth_proxy.to_string(),
            (n / rho * log_n * log_rho_l).to_string(),
        ]);
        // The bounds must actually bound the measurements (constants are 1
        // here, which empirically suffices on these inputs).
        assert!(pre.stats.explored_edges <= (n * rho * rho) as u64, "Lemma 4.2 work bound");
        assert!(depth_proxy <= n / rho * log_n * log_rho_l, "depth proxy exceeds bound shape");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_renders() {
        let t = bounds_table();
        assert_eq!(t.rows.len(), 9);
        assert!(t.render().contains("this work"));
    }

    #[test]
    fn measured_proxies_within_bounds() {
        // `measured_table` asserts the bounds internally.
        let t = measured_table(&ExpConfig::tiny());
        assert_eq!(t.rows.len(), 3);
    }
}
