//! Point-to-point mode experiment: forward early-exit vs bidirectional
//! vs goal-directed (ALT) on far-apart grid pairs.
//!
//! The paper's engines answer point-to-point queries by early-exiting a
//! single-source solve — a ball of radius `d(s, t)` around the source.
//! This experiment measures what the PR-8 kernels buy on the worst shape
//! for that strategy: far-apart endpoints on a square grid, where the
//! forward ball covers essentially the whole graph. Reported per mode:
//! edges relaxed (`StepStats::relaxed_edges`), vertices settled, and
//! wall-clock solve rate; the run also asserts all three modes return
//! bit-identical goal distances, so the speed numbers can never drift
//! away from correctness.
//!
//! Results land in `BENCH_p2p.json` (hand-rolled JSON, like the other
//! experiments) with a precomputed `goal_directed_fewer` flag and the
//! forward/goal-directed relaxed-edge ratio — the CI smoke greps these.

use std::time::Instant;

use rs_baselines::solver::BuildSolver;
use rs_core::solver::{P2pMode, Query, SolverBuilder};
use rs_core::SolverScratch;
use rs_graph::{gen, weights, CsrGraph, WeightModel};

use crate::table::Table;

use super::ExpConfig;

/// One mode's aggregate over every measured pair.
#[derive(Debug, Clone)]
pub struct ModeMeasurement {
    /// Mode label (`forward` / `bidirectional` / `goal_directed`).
    pub name: String,
    /// Edges relaxed across all pairs.
    pub relaxed_edges: u64,
    /// Vertices settled across all pairs.
    pub settled: u64,
    /// Wall-clock seconds for all pairs (warm scratch).
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
}

/// The experiment's output.
#[derive(Debug, Clone)]
pub struct P2pRun {
    pub side: usize,
    pub vertices: usize,
    pub edges: usize,
    pub pairs: usize,
    pub modes: Vec<ModeMeasurement>,
}

impl P2pRun {
    fn mode(&self, name: &str) -> &ModeMeasurement {
        self.modes.iter().find(|m| m.name == name).expect("all three modes measured")
    }

    /// Forward-over-goal-directed relaxed-edge ratio (the headline).
    pub fn speedup(&self) -> f64 {
        self.mode("forward").relaxed_edges as f64
            / (self.mode("goal_directed").relaxed_edges as f64).max(1.0)
    }
}

/// Grid side length for the configured scale: the paper-scale run uses
/// the 256×256 acceptance grid; scaled-down runs shrink the area by
/// `scale_denom` (floor 16×16 so "far apart" still means something).
fn grid_side(cfg: &ExpConfig) -> usize {
    let target = (256 * 256) / cfg.scale_denom.max(1);
    ((target as f64).sqrt() as usize).max(16)
}

/// Runs all three modes over mirrored far-apart pairs and writes
/// `BENCH_p2p.json` into `cfg.out_dir`.
pub fn run(cfg: &ExpConfig) -> P2pRun {
    let side = grid_side(cfg);
    let g: CsrGraph =
        weights::reweight(&gen::grid2d(side, side), WeightModel::paper_weighted(), cfg.seed);
    let n = g.num_vertices() as u32;
    // Mirrored pairs: source walks the top edge, goal is the diagonally
    // opposite vertex — every pair spans the full grid diameter.
    let pairs: Vec<(u32, u32)> = (0..cfg.sources.max(2))
        .map(|i| {
            let s = (i as u32 * 37) % side as u32;
            (s, n - 1 - s)
        })
        .collect();

    let modes: [(&str, P2pMode); 3] = [
        ("forward", P2pMode::Forward),
        ("bidirectional", P2pMode::Bidirectional),
        ("goal_directed", P2pMode::GoalDirected),
    ];
    let mut reference: Option<Vec<u64>> = None;
    let mut measurements = Vec::new();
    for (name, mode) in modes {
        let solver = SolverBuilder::new(&g).p2p_mode(mode).build();
        let mut scratch = SolverScratch::new();
        solver.warm_scratch(&mut scratch);
        let mut relaxed = 0u64;
        let mut settled = 0u64;
        let mut goals = Vec::with_capacity(pairs.len());
        let t = Instant::now();
        for &(s, goal) in &pairs {
            let resp = solver.execute(&Query::point_to_point(s, goal), &mut scratch);
            relaxed += resp.stats().relaxed_edges;
            settled += resp.stats().settled as u64;
            goals.push(resp.dist()[goal as usize]);
        }
        let seconds = t.elapsed().as_secs_f64();
        // Self-check: every mode must return the same goal distances.
        match &reference {
            None => reference = Some(goals),
            Some(truth) => assert_eq!(&goals, truth, "{name}: goal distances diverged"),
        }
        measurements.push(ModeMeasurement {
            name: name.into(),
            relaxed_edges: relaxed,
            settled,
            seconds,
            qps: pairs.len() as f64 / seconds.max(1e-9),
        });
    }

    let out = P2pRun {
        side,
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        pairs: pairs.len(),
        modes: measurements,
    };
    if let Err(e) = write_json(cfg, &out) {
        eprintln!("warning: failed to write BENCH_p2p.json: {e}");
    }
    out
}

/// Renders the run as a display table.
pub fn table(run: &P2pRun) -> Table {
    let mut t = Table::new(
        format!(
            "Point-to-point modes on a {s}x{s} grid (n={}, m={}, {} far pairs) — \
             forward relaxes {:.1}x the edges of goal-directed",
            run.vertices,
            run.edges,
            run.pairs,
            run.speedup(),
            s = run.side,
        ),
        &["mode", "relaxed edges", "settled", "seconds", "qps"],
    );
    for m in &run.modes {
        t.push_row(vec![
            m.name.clone(),
            m.relaxed_edges.to_string(),
            m.settled.to_string(),
            format!("{:.4}", m.seconds),
            format!("{:.0}", m.qps),
        ]);
    }
    t
}

/// Hand-rolled JSON (no serde in the workspace).
fn write_json(cfg: &ExpConfig, run: &P2pRun) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let fwd = run.mode("forward").relaxed_edges;
    let gd = run.mode("goal_directed").relaxed_edges;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"grid_side\": {},", run.side);
    let _ = writeln!(s, "  \"vertices\": {},", run.vertices);
    let _ = writeln!(s, "  \"edges\": {},", run.edges);
    let _ = writeln!(s, "  \"pairs\": {},", run.pairs);
    let _ = writeln!(s, "  \"modes\": [");
    for (i, m) in run.modes.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(s, "      \"relaxed_edges\": {},", m.relaxed_edges);
        let _ = writeln!(s, "      \"settled\": {},", m.settled);
        let _ = writeln!(s, "      \"seconds\": {:.6},", m.seconds);
        let _ = writeln!(s, "      \"qps\": {:.1}", m.qps);
        let _ = writeln!(s, "    }}{}", if i + 1 == run.modes.len() { "" } else { "," });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"forward_over_goal_directed\": {:.2},", run.speedup());
    let _ = writeln!(s, "  \"goal_directed_fewer\": {}", gd < fwd);
    let _ = writeln!(s, "}}");
    std::fs::create_dir_all(&cfg.out_dir)?;
    std::fs::write(cfg.out_dir.join("BENCH_p2p.json"), s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_tiny_and_emits_json() {
        let mut cfg = ExpConfig::tiny();
        cfg.out_dir = std::env::temp_dir().join(format!("rs_bench_p2p_{}", std::process::id()));
        let run = run(&cfg);
        assert_eq!(run.modes.len(), 3);
        assert!(
            run.mode("goal_directed").relaxed_edges < run.mode("forward").relaxed_edges,
            "goal-directed must relax fewer edges than forward even at tiny scale"
        );
        assert!(run.speedup() > 1.0);
        let json =
            std::fs::read_to_string(cfg.out_dir.join("BENCH_p2p.json")).expect("json emitted");
        assert!(json.contains("\"goal_directed_fewer\": true"));
        assert!(json.contains("\"forward_over_goal_directed\""));
        let t = table(&run);
        assert_eq!(t.rows.len(), 3);
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
