//! Theorem validation: the bounds behind Table 1's "this work" rows.
//!
//! For a grid of (k, ρ) configurations on small suite graphs, verify with
//! exact brute force that preprocessing establishes the (k, ρ)-graph
//! preconditions (Lemma 4.1), then run the solver and report measured
//! steps / substeps against the Theorem 3.2 and 3.3 bounds, plus
//! correctness against Dijkstra.

use rs_baselines::dijkstra_default;
use rs_core::preprocess::{PreprocessConfig, Preprocessed, ShortcutHeuristic};
use rs_core::verify::{check_k_rho_graph, step_bound, substep_bound};
use rs_core::{EngineConfig, EngineKind};
use rs_graph::{gen, weights, WeightModel};

use crate::sample_sources;
use crate::table::Table;

use super::ExpConfig;

/// Runs the bound-validation sweep.
pub fn run(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Theorem validation: measured vs bounds (Thm 3.2: substeps ≤ k+2; Thm 3.3: steps ≤ ⌈n/ρ⌉(1+⌈log₂ ρL⌉))",
        &[
            "graph", "k", "rho", "heuristic", "(k,rho)-graph", "steps", "step bound",
            "max substeps", "substep bound", "== dijkstra",
        ],
    );
    let graphs: Vec<(&str, rs_graph::CsrGraph)> = vec![
        ("grid2d", weights::reweight(&gen::grid2d(18, 18), WeightModel::paper_weighted(), 3)),
        (
            "scale_free",
            weights::reweight(&gen::scale_free(320, 3, 9), WeightModel::paper_weighted(), 4),
        ),
        ("road", weights::reweight(&gen::road_network(18, 5), WeightModel::paper_weighted(), 5)),
    ];
    for (name, g) in &graphs {
        let n = g.num_vertices();
        for (k, rho, h) in [
            (1u32, 4usize, ShortcutHeuristic::Full),
            (1, 16, ShortcutHeuristic::Full),
            (2, 16, ShortcutHeuristic::Greedy),
            (3, 16, ShortcutHeuristic::Dp),
            (3, 48, ShortcutHeuristic::Dp),
        ] {
            let pre = Preprocessed::build(g, &PreprocessConfig { k, rho, heuristic: h });
            let valid = check_k_rho_graph(&pre.graph, &pre.radii, k, rho).is_ok();
            let bound = step_bound(n, rho, pre.graph.max_weight() as u64);
            let mut worst_steps = 0usize;
            let mut worst_sub = 0usize;
            let mut all_correct = true;
            for &s in &sample_sources(n, cfg.sources.max(2), cfg.seed) {
                let out = pre.sssp_with(s, EngineKind::Frontier, EngineConfig::with_trace());
                worst_steps = worst_steps.max(out.stats.steps);
                worst_sub = worst_sub.max(out.stats.max_substeps_in_step);
                all_correct &= out.dist == dijkstra_default(g, s);
            }
            assert!(valid, "{name} k={k} rho={rho}: preprocessing must yield a (k,rho)-graph");
            assert!(worst_steps <= bound, "{name}: steps {worst_steps} > bound {bound}");
            assert!(
                worst_sub <= substep_bound(k),
                "{name}: substeps {worst_sub} > {}",
                substep_bound(k)
            );
            assert!(all_correct, "{name}: distance mismatch vs dijkstra");
            t.push_row(vec![
                name.to_string(),
                k.to_string(),
                rho.to_string(),
                format!("{h:?}"),
                "yes".into(),
                worst_steps.to_string(),
                bound.to_string(),
                worst_sub.to_string(),
                substep_bound(k).to_string(),
                "yes".into(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bounds_hold() {
        // `run` asserts internally; 15 rows = 3 graphs × 5 configs.
        let t = run(&ExpConfig::tiny());
        assert_eq!(t.rows.len(), 15);
    }
}
