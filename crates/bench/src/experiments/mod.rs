//! One driver per paper table/figure; see DESIGN.md §6 for the index.

pub mod bounds;
pub mod fig2;
pub mod p2p;
pub mod queries;
pub mod shard;
pub mod shortcuts;
pub mod steps;
pub mod substeps;
pub mod table1;

use std::path::PathBuf;

/// Shared experiment configuration (set from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Divides the paper's vertex counts (32 → ~34k-vertex road networks;
    /// 1 → paper scale).
    pub scale_denom: usize,
    /// Sample sources per graph (paper: 1000; scaled default: 5).
    pub sources: usize,
    /// Where CSV outputs land.
    pub out_dir: PathBuf,
    /// Source-sampling seed.
    pub seed: u64,
    /// Sustained-load window for the `queries` experiment, in seconds
    /// (`--duration`).
    pub sustain_secs: f64,
    /// Open-loop target arrival rate for the sustained-load window, in
    /// requests/second (`--rate`).
    pub sustain_rate: f64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale_denom: 32,
            sources: 5,
            out_dir: PathBuf::from("results"),
            seed: 0x5eed,
            sustain_secs: 2.0,
            sustain_rate: 3_000.0,
        }
    }
}

impl ExpConfig {
    /// A tiny configuration for tests and criterion benches.
    pub fn tiny() -> Self {
        ExpConfig {
            scale_denom: 1024,
            sources: 2,
            sustain_secs: 0.4,
            sustain_rate: 1_500.0,
            ..Default::default()
        }
    }

    /// Largest ρ that is meaningful for a graph of `n` vertices: beyond
    /// `n/4` the "ball" covers most of the graph and the paper's regime
    /// (ρ ≪ n) no longer holds, so those rows are skipped.
    pub fn rho_usable(&self, rho: usize, n: usize) -> bool {
        rho <= n / 4
    }
}
