//! Experiment harness reproducing the paper's evaluation (§5 + Appendix A).
//!
//! Every table and figure has a driver here (see DESIGN.md §6 for the
//! index); the `repro` binary runs them and prints paper-style tables plus
//! CSV files. Graphs are scaled-down stand-ins for the paper's datasets
//! (DESIGN.md §5): the paper's quantities that are *ratios* (reduction
//! factors, added-edge factors, steps-vs-ρ slopes) are the reproduction
//! targets, not absolute step counts at million-vertex scale.
//!
//! ```text
//! cargo run --release -p rs-bench --bin repro -- --all --scale 16
//! ```

pub mod experiments;
pub mod paper;
pub mod suite;
pub mod table;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rs_graph::VertexId;

/// Deterministically samples `count` distinct source vertices.
pub fn sample_sources(n: usize, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = count.min(n);
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < count {
        picked.insert(rng.random_range(0..n as VertexId));
    }
    picked.into_iter().collect()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_distinct_and_deterministic() {
        let a = sample_sources(100, 10, 7);
        let b = sample_sources(100, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(a.iter().all(|&v| v < 100));
    }

    #[test]
    fn sources_clamped_to_n() {
        assert_eq!(sample_sources(3, 10, 1).len(), 3);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
