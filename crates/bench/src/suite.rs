//! The six-graph evaluation suite of §5.1, at a configurable scale.
//!
//! | Paper dataset        | n (paper) | stand-in                               |
//! |----------------------|-----------|----------------------------------------|
//! | roadNet-PA           | 1.09M     | `road_network` (deg ≈ 2.8)             |
//! | roadNet-TX           | 1.39M     | `road_network`, other seed/size        |
//! | web-NotreDame        | 325k      | `webgraph` (hubs + whiskers, deg ≈ 6)  |
//! | web-Stanford         | 281k      | `webgraph` (hubs + whiskers, deg ≈ 14) |
//! | 2D grid (1000×1000)  | 1M        | `grid2d` (identical)                   |
//! | 3D grid              | 1M        | `grid3d` (identical)                   |
//!
//! `scale_denom` divides the paper's vertex counts: `32` (the default)
//! yields ~34k-vertex road networks; `1` is full paper scale.

use rs_graph::{analysis, gen, weights, CsrGraph, WeightModel};

/// One suite member: unit-weight topology plus metadata.
#[derive(Debug, Clone)]
pub struct SuiteGraph {
    /// Paper-style name, e.g. "Penn" or "2D".
    pub name: &'static str,
    /// Group for figure panels: "road", "web", or "grid".
    pub group: &'static str,
    /// Connected, unit-weighted topology.
    pub graph: CsrGraph,
}

impl SuiteGraph {
    /// The weighted variant: uniform integer weights in `[1, 10^4]` (§5.1),
    /// seeded per graph name for determinism.
    pub fn weighted(&self) -> CsrGraph {
        weights::reweight(&self.graph, WeightModel::paper_weighted(), name_seed(self.name))
    }
}

fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1_0000_01b3))
}

/// Builds one suite graph by paper name at the given scale divisor.
pub fn build_graph(name: &str, scale_denom: usize) -> SuiteGraph {
    let d = scale_denom.max(1);
    let side = |paper_n: usize| ((paper_n / d) as f64).sqrt().round().max(2.0) as usize;
    let (name, group, graph) = match name {
        "Penn" => ("Penn", "road", gen::road_network(side(1_090_000), 0xa11ce)),
        "Texas" => ("Texas", "road", gen::road_network(side(1_390_000), 0xbeef)),
        // Webgraph parameters are calibrated to the SNAP originals' average
        // degree and BFS depth (Table 4's ρ=1 column: ~28 rounds on
        // NotreDame, ~109 on Stanford); see gen::webgraph.
        "NotreDame" => {
            ("NotreDame", "web", gen::webgraph((325_000 / d).max(64), 4, 0.30, 25, 0x0d0d))
        }
        "Stanford" => {
            ("Stanford", "web", gen::webgraph((281_000 / d).max(128), 10, 0.35, 100, 0x57a2))
        }
        "2D" => {
            let s = side(1_000_000);
            ("2D", "grid", gen::grid2d(s, s))
        }
        "3D" => {
            let s = ((1_000_000 / d) as f64).cbrt().round().max(2.0) as usize;
            ("3D", "grid", gen::grid3d(s, s, s))
        }
        other => panic!("unknown suite graph {other:?}"),
    };
    // §2 assumes connected inputs; generators already guarantee it, but
    // normalise defensively (scale-free/road are connected by construction).
    let graph =
        if analysis::is_connected(&graph) { graph } else { analysis::largest_component(&graph).0 };
    SuiteGraph { name, group, graph }
}

/// All six paper graphs.
pub const SUITE_NAMES: [&str; 6] = ["Penn", "Texas", "NotreDame", "Stanford", "2D", "3D"];

/// The three-graph subset §5.2 uses for the shortcut experiments
/// (Figure 3, Tables 2–3).
pub const SHORTCUT_SUITE: [&str; 3] = ["Penn", "Stanford", "2D"];

/// Builds the full suite.
pub fn full_suite(scale_denom: usize) -> Vec<SuiteGraph> {
    SUITE_NAMES.iter().map(|n| build_graph(n, scale_denom)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::analysis::{degree_stats, is_connected};

    #[test]
    fn suite_members_connected_and_sized() {
        for name in SUITE_NAMES {
            let sg = build_graph(name, 256); // tiny for test speed
            assert!(is_connected(&sg.graph), "{name} must be connected");
            assert!(sg.graph.num_vertices() > 500, "{name} too small");
        }
    }

    #[test]
    fn densities_match_paper_regimes() {
        let road = build_graph("Penn", 128);
        let d = degree_stats(&road.graph);
        assert!((2.2..3.8).contains(&d.mean), "road degree {}", d.mean);
        let web = build_graph("Stanford", 128);
        let dw = degree_stats(&web.graph);
        assert!((10.0..16.0).contains(&dw.mean), "Stanford degree {}", dw.mean);
        assert!(dw.max > 50, "webgraph needs hubs, max degree {}", dw.max);
        let nd = build_graph("NotreDame", 128);
        let dn = degree_stats(&nd.graph);
        assert!((4.5..8.0).contains(&dn.mean), "NotreDame degree {}", dn.mean);
    }

    #[test]
    fn weighted_variant_deterministic_and_in_range() {
        let sg = build_graph("2D", 1024);
        let w1 = sg.weighted();
        let w2 = sg.weighted();
        assert_eq!(w1, w2);
        assert!(w1.max_weight() <= 10_000);
        assert!(!w1.is_unit_weighted());
    }

    #[test]
    fn scale_changes_size() {
        let big = build_graph("2D", 64);
        let small = build_graph("2D", 256);
        assert!(big.graph.num_vertices() > 2 * small.graph.num_vertices());
    }
}
