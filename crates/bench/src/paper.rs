//! The paper's reported numbers (Appendix A), embedded for side-by-side
//! comparison columns in the reproduced tables.
//!
//! These values were measured by the authors on the full-scale SNAP/grid
//! datasets (≈0.3–1.4M vertices, 1000 sources); our runs use scaled-down
//! synthetic stand-ins, so *ratios and trends* are comparable, absolute
//! step counts shift with `n` as `steps ≈ (n/ρ)·log(ρL)` predicts.

/// ρ grid of Tables 4–5 (unweighted).
pub const RHO_UNWEIGHTED: [usize; 13] =
    [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000];

/// ρ grid of Tables 6–7 (weighted).
pub const RHO_WEIGHTED: [usize; 10] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];

/// ρ grid of Figure 3 / Tables 2–3 (shortcut heuristics).
pub const RHO_SHORTCUT: [usize; 7] = [10, 20, 50, 100, 200, 500, 1000];

/// k grid of Tables 2–3.
pub const K_SHORTCUT: [u32; 4] = [2, 3, 4, 5];

/// Table 4: average rounds, unweighted, per suite graph (paper scale).
pub const TABLE4: [(&str, [f64; 13]); 6] = [
    (
        "Penn",
        [
            619.12, 309.32, 308.47, 206.30, 165.73, 123.01, 101.41, 78.61, 58.44, 45.95, 35.66,
            24.95, 18.54,
        ],
    ),
    (
        "Texas",
        [
            761.06, 380.31, 379.34, 253.71, 196.30, 151.13, 124.07, 96.92, 70.75, 55.39, 42.58,
            29.17, 21.33,
        ],
    ),
    (
        "NotreDame",
        [28.09, 13.77, 13.44, 13.32, 13.17, 12.38, 9.78, 8.47, 6.63, 5.69, 5.27, 4.14, 3.83],
    ),
    (
        "Stanford",
        [108.92, 54.23, 43.27, 31.29, 21.67, 14.13, 10.63, 8.56, 7.30, 7.18, 6.72, 5.84, 5.76],
    ),
    (
        "2D",
        [
            1504.0, 751.76, 751.74, 501.14, 375.62, 250.32, 187.46, 136.24, 87.86, 64.88, 44.82,
            28.82, 20.18,
        ],
    ),
    (
        "3D",
        [
            223.50, 111.50, 111.50, 74.50, 74.48, 55.48, 44.08, 36.48, 27.36, 21.74, 17.94, 12.50,
            10.00,
        ],
    ),
];

/// Table 6: average rounds, weighted (paper scale).
pub const TABLE6: [(&str, [f64; 10]); 6] = [
    ("Penn", [986_000.0, 26479.9, 2294.5, 872.6, 455.0, 245.0, 167.2, 119.8, 81.1, 61.1]),
    ("Texas", [1_252_000.0, 34673.4, 3123.5, 1206.5, 634.1, 343.0, 233.7, 166.9, 111.3, 83.2]),
    ("NotreDame", [35_600.0, 1953.7, 571.3, 387.2, 274.9, 174.6, 118.8, 83.7, 58.4, 45.0]),
    ("Stanford", [30_000.0, 2203.3, 759.2, 562.3, 432.2, 293.7, 219.3, 166.0, 120.0, 93.6]),
    ("2D", [965_000.0, 33592.2, 3495.8, 1385.0, 722.9, 375.1, 246.9, 166.9, 102.1, 71.1]),
    ("3D", [239_000.0, 11046.1, 722.4, 261.9, 137.8, 76.1, 54.1, 40.2, 28.1, 21.7]),
];

/// Table 2: factors of additional edges, Greedy heuristic. Rows are the
/// [`RHO_SHORTCUT`] grid; columns the [`K_SHORTCUT`] grid.
pub const TABLE2_GREEDY: [(&str, [[f64; 4]; 7]); 3] = [
    (
        "Penn",
        [
            [1.67, 0.41, 0.05, 0.01],
            [3.79, 2.38, 0.84, 0.23],
            [10.34, 6.05, 5.65, 3.71],
            [20.33, 13.64, 8.85, 8.16],
            [39.92, 26.35, 20.15, 14.51],
            [97.58, 64.72, 48.49, 37.64],
            [192.00, 127.45, 95.55, 75.84],
        ],
    ),
    (
        "Stanford",
        [
            [3.11, 0.02, 0.01, 0.00],
            [9.91, 3.06, 0.09, 0.01],
            [47.57, 10.74, 3.40, 0.13],
            [109.98, 39.99, 20.96, 8.73],
            [188.92, 67.25, 45.54, 17.96],
            [337.34, 141.58, 119.03, 63.69],
            [529.14, 208.66, 219.21, 149.20],
        ],
    ),
    (
        "2D",
        [
            [0.36, 0.00, 0.00, 0.00],
            [5.75, 0.46, 0.00, 0.00],
            [16.05, 8.40, 9.54, 0.67],
            [29.59, 22.02, 10.52, 11.43],
            [48.40, 41.34, 28.03, 12.73],
            [126.09, 99.22, 55.62, 64.75],
            [243.12, 181.50, 129.26, 108.37],
        ],
    ),
];

/// Table 3: factors of additional edges, DP heuristic (same grids).
pub const TABLE3_DP: [(&str, [[f64; 4]; 7]); 3] = [
    (
        "Penn",
        [
            [0.95, 0.12, 0.01, 0.00],
            [2.70, 0.90, 0.18, 0.04],
            [7.78, 3.59, 1.89, 0.72],
            [16.09, 8.09, 4.40, 2.58],
            [32.60, 17.04, 9.89, 6.03],
            [81.75, 44.14, 26.65, 17.11],
            [162.91, 89.30, 54.82, 35.95],
        ],
    ),
    (
        "Stanford",
        [
            [0.02, 0.01, 0.01, 0.00],
            [0.05, 0.02, 0.01, 0.01],
            [0.20, 0.06, 0.04, 0.03],
            [0.51, 0.13, 0.08, 0.06],
            [0.99, 0.25, 0.15, 0.11],
            [2.18, 0.50, 0.30, 0.22],
            [3.92, 0.66, 0.34, 0.24],
        ],
    ),
    (
        "2D",
        [
            [0.25, 0.00, 0.00, 0.00],
            [3.95, 0.25, 0.00, 0.00],
            [12.16, 6.21, 4.06, 0.36],
            [24.22, 14.27, 8.32, 6.06],
            [48.35, 30.23, 20.28, 12.45],
            [125.96, 80.09, 54.44, 42.26],
            [241.30, 154.97, 110.87, 84.87],
        ],
    ),
];

/// Paper value lookup for Table 4 by graph name and ρ.
pub fn table4_value(name: &str, rho: usize) -> Option<f64> {
    let col = RHO_UNWEIGHTED.iter().position(|&r| r == rho)?;
    TABLE4.iter().find(|(n, _)| *n == name).map(|(_, row)| row[col])
}

/// Paper value lookup for Table 6 by graph name and ρ.
pub fn table6_value(name: &str, rho: usize) -> Option<f64> {
    let col = RHO_WEIGHTED.iter().position(|&r| r == rho)?;
    TABLE6.iter().find(|(n, _)| *n == name).map(|(_, row)| row[col])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        assert_eq!(table4_value("Penn", 1), Some(619.12));
        assert_eq!(table4_value("3D", 10000), Some(10.00));
        assert_eq!(table6_value("2D", 1000), Some(71.1));
        assert_eq!(table4_value("Penn", 3), None);
        assert_eq!(table4_value("Mars", 1), None);
    }

    #[test]
    fn internal_consistency_with_reduction_tables() {
        // Table 5's reduction factors are Table 4 ÷ BFS rounds (the ρ=1
        // row); spot-check the paper's own numbers agree (ρ=2 on Penn:
        // 619.12 / 309.32 ≈ 2.00 as printed in Table 5).
        let penn = &TABLE4[0].1;
        assert!((penn[0] / penn[1] - 2.00).abs() < 0.02);
        let grid2 = &TABLE4[4].1;
        assert!((grid2[0] / grid2[9] - 23.18).abs() < 0.05, "2D rho=1000 factor");
        // Table 7 consistency (weighted): Penn rho=10 factor 1130.0.
        let pennw = &TABLE6[0].1;
        assert!((pennw[0] / pennw[3] - 1130.0).abs() < 5.0);
    }
}
