//! Reproduces every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [EXPERIMENTS...] [--scale N] [--sources N] [--out DIR] [--seed N]
//!       [--duration SECS] [--rate QPS]
//!
//! EXPERIMENTS: fig2 fig3 fig4 fig5 table1 table2 table3 table4 table5
//!              table6 table7 bounds queries p2p shard | --all (default)
//! --scale N    divide the paper's graph sizes by N (default 16; 1 = paper scale)
//! --sources N  sampled sources per graph (default 5; paper used 1000)
//! --out DIR    CSV output directory (default results/)
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

use rs_bench::experiments::{
    bounds, fig2, p2p, queries, shard, shortcuts, steps, substeps, table1, ExpConfig,
};
use rs_bench::table::Table;

const ALL: [&str; 16] = [
    "fig2", "fig3", "fig4", "fig5", "table1", "table2", "table3", "table4", "table5", "table6",
    "table7", "bounds", "substeps", "queries", "p2p", "shard",
];

fn main() {
    let (wanted, cfg) = parse_args();
    println!(
        "radius-stepping repro | scale 1/{} | {} sources | out {}",
        cfg.scale_denom,
        cfg.sources,
        cfg.out_dir.display()
    );
    let t0 = Instant::now();
    let mut emitted: Vec<(String, Table)> = Vec::new();

    if wanted.iter().any(|w| ["fig3", "table2", "table3"].contains(&w.as_str())) {
        let run = timed("shortcut heuristics (fig3/table2/table3)", || shortcuts::run(&cfg));
        for (i, t) in run.table2_greedy.into_iter().enumerate() {
            if wanted.contains("table2") {
                emitted.push((format!("table2_{i}"), t));
            }
        }
        for (i, t) in run.table3_dp.into_iter().enumerate() {
            if wanted.contains("table3") {
                emitted.push((format!("table3_{i}"), t));
            }
        }
        for (i, t) in run.fig3_panels.into_iter().enumerate() {
            if wanted.contains("fig3") {
                emitted.push((format!("fig3_{}", ["a", "b", "c"][i]), t));
            }
        }
    }
    if wanted.iter().any(|w| ["fig4", "table4", "table5"].contains(&w.as_str())) {
        let run = timed("unweighted steps (fig4/table4/table5)", || steps::run(&cfg, false));
        if wanted.contains("table4") {
            emitted.push(("table4".into(), run.rounds));
        }
        if wanted.contains("table5") {
            emitted.push(("table5".into(), run.reduction));
        }
        if wanted.contains("fig4") {
            for (i, t) in run.figure_panels.into_iter().enumerate() {
                emitted.push((format!("fig4_{}", ["a", "b", "c"][i]), t));
            }
        }
    }
    if wanted.iter().any(|w| ["fig5", "table6", "table7"].contains(&w.as_str())) {
        let run = timed("weighted steps (fig5/table6/table7)", || steps::run(&cfg, true));
        if wanted.contains("table6") {
            emitted.push(("table6".into(), run.rounds));
        }
        if wanted.contains("table7") {
            emitted.push(("table7".into(), run.reduction));
        }
        if wanted.contains("fig5") {
            for (i, t) in run.figure_panels.into_iter().enumerate() {
                emitted.push((format!("fig5_{}", ["a", "b", "c"][i]), t));
            }
        }
    }
    if wanted.contains("fig2") {
        emitted.push(("fig2".into(), timed("fig2 gadget", || fig2::run(&cfg))));
    }
    if wanted.contains("table1") {
        emitted.push(("table1_bounds".into(), table1::bounds_table()));
        emitted.push((
            "table1_empirical".into(),
            timed("table1 empirical", || table1::measured_table(&cfg)),
        ));
    }
    if wanted.contains("bounds") {
        emitted.push(("bounds".into(), timed("theorem validation", || bounds::run(&cfg))));
    }
    if wanted.contains("substeps") {
        emitted.push((
            "substeps".into(),
            timed("substep structure vs delta-stepping", || substeps::run(&cfg)),
        ));
    }
    if wanted.contains("queries") {
        let run = timed("query-plane throughput (BENCH_queries.json)", || queries::run(&cfg));
        emitted.push(("queries".into(), queries::table(&run)));
        emitted.push(("queries_sustained".into(), queries::sustained_table(&run)));
    }
    if wanted.contains("p2p") {
        let run = timed("point-to-point modes (BENCH_p2p.json)", || p2p::run(&cfg));
        emitted.push(("p2p".into(), p2p::table(&run)));
    }
    if wanted.contains("shard") {
        let run = timed("sharded serving (BENCH_shard.json)", || shard::run(&cfg));
        emitted.push(("shard".into(), shard::table(&run)));
    }

    for (stem, table) in &emitted {
        println!("\n{}", table.render());
        if let Err(e) = table.write_csv(&cfg.out_dir, stem) {
            eprintln!("warning: failed to write {stem}.csv: {e}");
        }
    }
    println!(
        "\ndone: {} tables in {:.1}s -> {}",
        emitted.len(),
        t0.elapsed().as_secs_f64(),
        cfg.out_dir.display()
    );
}

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    eprintln!("[running] {label} ...");
    let out = f();
    eprintln!("[done]    {label} in {:.1}s", t.elapsed().as_secs_f64());
    out
}

fn parse_args() -> (BTreeSet<String>, ExpConfig) {
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut cfg = ExpConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut need = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            "--scale" => cfg.scale_denom = need("--scale").parse().expect("--scale N"),
            "--sources" => cfg.sources = need("--sources").parse().expect("--sources N"),
            "--seed" => cfg.seed = need("--seed").parse().expect("--seed N"),
            "--out" => cfg.out_dir = PathBuf::from(need("--out")),
            "--duration" => cfg.sustain_secs = need("--duration").parse().expect("--duration SECS"),
            "--rate" => cfg.sustain_rate = need("--rate").parse().expect("--rate QPS"),
            "--help" | "-h" => {
                println!(
                    "usage: repro [{}|--all] [--scale N] [--sources N] [--out DIR] [--seed N] \
                     [--duration SECS] [--rate QPS]",
                    ALL.join("|")
                );
                std::process::exit(0);
            }
            name if ALL.contains(&name) => {
                wanted.insert(name.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL.iter().map(|s| s.to_string()));
    }
    (wanted, cfg)
}
