//! Engine ablation: the parallel frontier engine (Algorithm 1) vs the
//! treap-based Algorithm 2, on identical preprocessed inputs. Step counts
//! are equal by construction (tested); this measures the constant-factor
//! cost of the faithful BST bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rs_core::preprocess::{PreprocessConfig, Preprocessed};
use rs_core::{EngineConfig, EngineKind};
use rs_graph::{gen, weights, WeightModel};

fn engines(c: &mut Criterion) {
    let graphs = vec![
        ("grid2d_3600", weights::reweight(&gen::grid2d(60, 60), WeightModel::paper_weighted(), 2)),
        (
            "scale_free_4k",
            weights::reweight(&gen::scale_free(4000, 5, 8), WeightModel::paper_weighted(), 6),
        ),
    ];
    for (name, g) in graphs {
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 16));
        let mut group = c.benchmark_group(format!("engine/{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("frontier"), |b| {
            b.iter(|| {
                black_box(
                    pre.sssp_with(0, EngineKind::Frontier, EngineConfig::default()).stats.steps,
                )
            })
        });
        group.bench_function(BenchmarkId::from_parameter("bst"), |b| {
            b.iter(|| {
                black_box(pre.sssp_with(0, EngineKind::Bst, EngineConfig::default()).stats.steps)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, engines);
criterion_main!(benches);
