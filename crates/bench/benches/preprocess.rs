//! Preprocessing cost (§4): ball searches, heuristics, and radii-only mode,
//! as ρ and the heuristic vary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rs_core::preprocess::{compute_radii, PreprocessConfig, Preprocessed, ShortcutHeuristic};
use rs_graph::{gen, weights, WeightModel};

fn preprocess(c: &mut Criterion) {
    let g = weights::reweight(&gen::grid2d(60, 60), WeightModel::paper_weighted(), 7);
    let mut group = c.benchmark_group("preprocess/grid60x60");
    group.sample_size(10);
    for rho in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("full_k1", rho), &rho, |b, &rho| {
            b.iter(|| {
                black_box(
                    Preprocessed::build(&g, &PreprocessConfig::new(1, rho)).stats.raw_shortcuts,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("dp_k3", rho), &rho, |b, &rho| {
            b.iter(|| {
                let cfg = PreprocessConfig { k: 3, rho, heuristic: ShortcutHeuristic::Dp };
                black_box(Preprocessed::build(&g, &cfg).stats.raw_shortcuts)
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy_k3", rho), &rho, |b, &rho| {
            b.iter(|| {
                let cfg = PreprocessConfig { k: 3, rho, heuristic: ShortcutHeuristic::Greedy };
                black_box(Preprocessed::build(&g, &cfg).stats.raw_shortcuts)
            })
        });
        group.bench_with_input(BenchmarkId::new("radii_only", rho), &rho, |b, &rho| {
            b.iter(|| black_box(compute_radii(&g, rho)[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, preprocess);
criterion_main!(benches);
