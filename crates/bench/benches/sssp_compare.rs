//! Wall-clock comparison: radius stepping (after preprocessing) vs
//! Dijkstra, ∆-stepping and Bellman–Ford — the end-to-end race the paper's
//! work/depth analysis predicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rs_baselines::{bellman_ford, delta_stepping, dijkstra_default};
use rs_core::preprocess::{PreprocessConfig, Preprocessed};
use rs_graph::{gen, weights, WeightModel};

fn sssp_compare(c: &mut Criterion) {
    let graphs = vec![
        (
            "grid2d_100x100",
            weights::reweight(&gen::grid2d(100, 100), WeightModel::paper_weighted(), 1),
        ),
        (
            "scale_free_10k",
            weights::reweight(&gen::scale_free(10_000, 5, 2), WeightModel::paper_weighted(), 3),
        ),
        (
            "road_10k",
            weights::reweight(&gen::road_network(100, 4), WeightModel::paper_weighted(), 5),
        ),
    ];
    for (name, g) in graphs {
        let mut group = c.benchmark_group(format!("sssp/{name}"));
        group.sample_size(10);
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 32));
        group.bench_function(BenchmarkId::from_parameter("radius_stepping_rho32"), |b| {
            b.iter(|| black_box(pre.sssp(0).dist[g.num_vertices() - 1]))
        });
        group.bench_function(BenchmarkId::from_parameter("dijkstra"), |b| {
            b.iter(|| black_box(dijkstra_default(&g, 0)[g.num_vertices() - 1]))
        });
        group.bench_function(BenchmarkId::from_parameter("delta_stepping"), |b| {
            b.iter(|| black_box(delta_stepping(&g, 0, 2_000).dist[g.num_vertices() - 1]))
        });
        group.bench_function(BenchmarkId::from_parameter("bellman_ford"), |b| {
            b.iter(|| black_box(bellman_ford(&g, 0).dist[g.num_vertices() - 1]))
        });
        group.finish();
    }
}

criterion_group!(benches, sssp_compare);
criterion_main!(benches);
