//! Parallel-primitive microbenchmarks: scan, pack, write-min, treap bulk
//! ops, and edge_map direction ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rs_ds::Treap;
use rs_graph::{edge_map::edge_map_dense, edge_map::edge_map_sparse, gen};
use rs_par::{atomic_vec, exclusive_scan, pack_indices, par_min, VertexSubset};

fn primitives(c: &mut Criterion) {
    let n = 1 << 20;
    let data: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();

    let mut group = c.benchmark_group("primitives");
    group.sample_size(10);
    group.bench_function("scan_1M", |b| b.iter(|| black_box(exclusive_scan(&data).1)));
    group
        .bench_function("pack_1M", |b| b.iter(|| black_box(pack_indices(n, |i| i % 3 == 0).len())));
    group.bench_function("par_min_1M", |b| b.iter(|| black_box(par_min(n, |i| data[i]))));
    group.bench_function("write_min_1M", |b| {
        let cells = atomic_vec(n, u64::MAX);
        b.iter(|| {
            for i in 0..n {
                cells[i].write_min(data[i]);
            }
            black_box(cells[0].load())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("treap");
    group.sample_size(10);
    for size in [1usize << 12, 1 << 16] {
        let a: Treap = (0..size as u32).map(|i| (i as u64 * 2, i)).collect();
        let b_t: Treap = (0..size as u32).map(|i| (i as u64 * 2 + 1, i)).collect();
        group.bench_with_input(BenchmarkId::new("union", size), &size, |bch, _| {
            bch.iter(|| black_box(Treap::union(a.clone(), b_t.clone()).len()))
        });
        group.bench_with_input(BenchmarkId::new("difference", size), &size, |bch, _| {
            bch.iter(|| black_box(Treap::difference(a.clone(), a.clone()).len()))
        });
    }
    group.finish();

    // Ligra direction ablation on a grid frontier.
    let g = gen::grid2d(300, 300);
    let frontier_ids: Vec<u32> = (0..9000u32).map(|i| i * 10).collect();
    let frontier = VertexSubset::from_ids(g.num_vertices(), frontier_ids.clone());
    let mut group = c.benchmark_group("edge_map");
    group.sample_size(10);
    group.bench_function("sparse", |b| {
        b.iter(|| {
            black_box(
                edge_map_sparse(
                    &g,
                    g.num_vertices(),
                    &frontier_ids,
                    |_, _, _| true,
                    |v| v % 2 == 0,
                )
                .len(),
            )
        })
    });
    group.bench_function("dense", |b| {
        b.iter(|| black_box(edge_map_dense(&g, &frontier, |_, _, _| true, |v| v % 2 == 0).len()))
    });
    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
