//! Exercises every experiment driver at tiny scale, so `cargo bench` runs
//! the same code paths that regenerate each paper table/figure, and times
//! the step-count measurement itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rs_bench::experiments::{bounds, fig2, shortcuts, steps, table1, ExpConfig};
use rs_bench::sample_sources;
use rs_graph::{gen, weights, WeightModel};

fn step_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    let cfg = ExpConfig::tiny();

    group.bench_function(BenchmarkId::from_parameter("fig4_table45_unweighted"), |b| {
        b.iter(|| black_box(steps::run(&cfg, false).rounds.rows.len()))
    });
    group.bench_function(BenchmarkId::from_parameter("fig5_table67_weighted"), |b| {
        b.iter(|| black_box(steps::run(&cfg, true).rounds.rows.len()))
    });
    group.bench_function(BenchmarkId::from_parameter("fig3_table23_shortcuts"), |b| {
        b.iter(|| black_box(shortcuts::run(&cfg).fig3_panels.len()))
    });
    group.bench_function(BenchmarkId::from_parameter("fig2_gadget"), |b| {
        b.iter(|| black_box(fig2::run(&cfg).rows.len()))
    });
    group.bench_function(BenchmarkId::from_parameter("table1_empirical"), |b| {
        b.iter(|| black_box(table1::measured_table(&cfg).rows.len()))
    });
    group.bench_function(BenchmarkId::from_parameter("bounds_validation"), |b| {
        b.iter(|| black_box(bounds::run(&cfg).rows.len()))
    });
    group.finish();

    // The core measurement primitive on a mid-size graph.
    let g = weights::reweight(&gen::grid2d(50, 50), WeightModel::paper_weighted(), 9);
    let sources = sample_sources(2500, 3, 1);
    let mut group = c.benchmark_group("mean_steps/grid50x50");
    group.sample_size(10);
    for rho in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, &rho| {
            b.iter(|| black_box(steps::mean_steps(&g, rho, &sources)))
        });
    }
    group.finish();
}

criterion_group!(benches, step_experiments);
criterion_main!(benches);
