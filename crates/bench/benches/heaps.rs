//! Heap ablation (DESIGN.md substitution S2): Lemma 4.2 prescribes
//! Fibonacci heaps; this measures Fibonacci vs pairing vs 4-ary both as
//! Dijkstra's queue and under a decrease-key-heavy synthetic storm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rs_baselines::dijkstra;
use rs_ds::{DaryHeap, DecreaseKeyHeap, FibonacciHeap, PairingHeap};
use rs_graph::{gen, weights, WeightModel};

fn storm<H: DecreaseKeyHeap>(n: u32, ops: usize, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heap = H::with_capacity(n as usize);
    let mut acc = 0u64;
    for i in 0..n {
        heap.push_or_decrease(i, 1 << 40);
    }
    for _ in 0..ops {
        match rng.random_range(0..4u32) {
            0 => {
                if let Some((_, k)) = heap.pop_min() {
                    acc ^= k;
                }
            }
            _ => {
                heap.push_or_decrease(rng.random_range(0..n), rng.random_range(0..1 << 40));
            }
        }
    }
    acc
}

fn heaps(c: &mut Criterion) {
    let g = weights::reweight(&gen::grid2d(80, 80), WeightModel::paper_weighted(), 3);
    let mut group = c.benchmark_group("dijkstra_heap");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("dary"), |b| {
        b.iter(|| black_box(dijkstra::<DaryHeap>(&g, 0)[6399]))
    });
    group.bench_function(BenchmarkId::from_parameter("pairing"), |b| {
        b.iter(|| black_box(dijkstra::<PairingHeap>(&g, 0)[6399]))
    });
    group.bench_function(BenchmarkId::from_parameter("fibonacci"), |b| {
        b.iter(|| black_box(dijkstra::<FibonacciHeap>(&g, 0)[6399]))
    });
    group.finish();

    let mut group = c.benchmark_group("heap_storm");
    group.sample_size(10);
    group.bench_function("dary", |b| b.iter(|| black_box(storm::<DaryHeap>(10_000, 100_000, 1))));
    group.bench_function("pairing", |b| {
        b.iter(|| black_box(storm::<PairingHeap>(10_000, 100_000, 1)))
    });
    group.bench_function("fibonacci", |b| {
        b.iter(|| black_box(storm::<FibonacciHeap>(10_000, 100_000, 1)))
    });
    group.finish();
}

criterion_group!(benches, heaps);
criterion_main!(benches);
