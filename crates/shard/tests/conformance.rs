//! Sharded conformance: [`ShardedSolver`] answers must match the
//! flat-graph reference for **every** query shape — `SingleSource`,
//! `PointToPoint`, `OneToMany`, `ManyToMany` — on grid, random, and
//! disconnected graphs, including queries whose endpoints share a part.
//!
//! What "match" means, precisely:
//! * goal **distances** are bit-identical to the flat reference
//!   (`distance_table()` compared directly; `SingleSource` compares the
//!   full distance array);
//! * **paths** are exact input-graph routes: every hop is an input edge
//!   and the hop weights telescope to exactly the flat distance (two
//!   exact solvers may pick different equal-length routes under ties, so
//!   path *bytes* are compared only where a single shortest route can be
//!   certified — telescoped length is asserted always);
//! * unreachable goals answer `None` on both sides;
//! * repeated sharded executions are bit-identical (the CI `shard` job
//!   runs this suite at `RS_NUM_THREADS=1` and `nproc`, so determinism
//!   across pool sizes is asserted by transitivity).

use rs_core::solver::{Query, QueryResponse, SolverBuilder, SsspSolver};
use rs_core::SolverScratch;
use rs_graph::{gen, weights, CsrGraph, Dist, EdgeListBuilder, VertexId, WeightModel};
use rs_shard::{
    Coordinates, PartitionConfig, PartitionStrategy, PartitionedGraph, Partitioner, ShardedSolver,
};

/// Sums a path's hop weights, asserting every hop is an input edge.
fn path_length(g: &CsrGraph, path: &[VertexId]) -> Dist {
    assert!(!path.is_empty(), "paths are never empty");
    path.windows(2)
        .map(|hop| {
            g.arc_weight(hop[0], hop[1])
                .unwrap_or_else(|| panic!("hop {} -> {} is not an input edge", hop[0], hop[1]))
                as Dist
        })
        .sum()
}

/// Asserts a goal-bounded sharded response matches the flat reference on
/// every goal: bit-identical distances, and paths that are valid
/// input-graph routes telescoping to the flat distance.
fn assert_goals_match(g: &CsrGraph, query: &Query, sharded: &QueryResponse, flat: &QueryResponse) {
    assert_eq!(
        sharded.distance_table(),
        flat.distance_table(),
        "goal distances diverged for {query:?}"
    );
    if !query.want_paths {
        return;
    }
    for (row, &source) in query.sources().iter().enumerate() {
        for (j, &goal) in query.goals().iter().enumerate() {
            let truth = flat.distance_table()[row][j];
            let s_path = sharded.path_in_row(row, goal);
            let f_path = flat.path_in_row(row, goal);
            match truth {
                None => {
                    assert!(s_path.is_none(), "sharded path to unreachable goal {goal}");
                    assert!(f_path.is_none(), "flat path to unreachable goal {goal}");
                }
                Some(d) => {
                    let s_path = s_path.expect("reachable goal must have a sharded path");
                    let f_path = f_path.expect("reachable goal must have a flat path");
                    for path in [&s_path, &f_path] {
                        assert_eq!(path.first(), Some(&source));
                        assert_eq!(path.last(), Some(&goal));
                        assert_eq!(
                            path_length(g, path),
                            d,
                            "path must telescope to d({source}, {goal})"
                        );
                    }
                }
            }
        }
    }
}

/// The three test graphs: paper-weighted grid, random, and a
/// disconnected multigraph (two islands + an isolated vertex).
fn graphs() -> Vec<(&'static str, CsrGraph)> {
    let grid = weights::reweight(&gen::grid2d(9, 11), WeightModel::paper_weighted(), 0x5eed);
    let random =
        weights::reweight(&gen::erdos_renyi(140, 420, 7), WeightModel::paper_weighted(), 3);
    let mut b = EdgeListBuilder::new(61);
    // Island A: vertices 0..30 as a weighted ring with chords.
    for v in 0..30u32 {
        b.add_edge(v, (v + 1) % 30, 2 + v % 7);
        if v % 5 == 0 {
            b.add_edge(v, (v + 13) % 30, 9 + v % 3);
        }
    }
    // Island B: vertices 30..60 as a path with a few shortcuts; 60 isolated.
    for v in 30..59u32 {
        b.add_edge(v, v + 1, 1 + v % 4);
    }
    b.add_edge(31, 44, 5);
    b.add_edge(35, 58, 40);
    let disconnected = b.build();
    vec![("grid", grid), ("random", random), ("disconnected", disconnected)]
}

/// A pair of vertices in different parts (None when P = 1 or one part
/// holds everything).
fn cross_part_pair(pg: &PartitionedGraph) -> Option<(VertexId, VertexId)> {
    let n = pg.vertex_map().len() as VertexId;
    let (p0, _) = pg.locate(0);
    (1..n).find(|&v| pg.locate(v).0 != p0).map(|v| (0, v))
}

/// A pair of distinct vertices sharing a part.
fn same_part_pair(pg: &PartitionedGraph) -> Option<(VertexId, VertexId)> {
    let n = pg.vertex_map().len() as VertexId;
    let (p0, _) = pg.locate(0);
    (1..n).find(|&v| pg.locate(v).0 == p0).map(|v| (0, v))
}

#[test]
fn sharded_matches_flat_on_every_shape() {
    for (name, g) in graphs() {
        let n = g.num_vertices() as VertexId;
        let flat = SolverBuilder::new(&g).radius_stepping_solver_from_algorithm();
        for parts in [1usize, 3, 5] {
            let pg = Partitioner::new(parts).partition(&g);
            let sharded = ShardedSolver::new(&g, &pg);
            let mut scratch = SolverScratch::new();
            let mut flat_scratch = SolverScratch::new();

            // SingleSource: full distance arrays bit-identical.
            for source in [0, n / 2, n - 1] {
                let q = Query::single_source(source);
                let sr = sharded.execute(&q, &mut scratch);
                let fr = flat.execute(&q, &mut flat_scratch);
                assert_eq!(sr.dist(), fr.dist(), "{name}/P={parts}: single-source from {source}");
            }

            // PointToPoint: same-part (flat fallback) and cross-part
            // (three-phase route), both with paths.
            let mut pairs: Vec<(VertexId, VertexId)> = vec![(0, n - 1), (n / 3, 2 * n / 3)];
            pairs.extend(same_part_pair(&pg));
            pairs.extend(cross_part_pair(&pg));
            for (s, t) in pairs {
                if s == t {
                    continue;
                }
                let q = Query::point_to_point(s, t).with_paths();
                let sr = sharded.execute(&q, &mut scratch);
                let fr = flat.execute(&q, &mut flat_scratch);
                assert_goals_match(&g, &q, &sr, &fr);
            }

            // OneToMany: goals spread over parts, including the source's
            // own part, the source itself, and (on the disconnected
            // graph) unreachable goals.
            let goals: Vec<VertexId> = vec![0, 1, n / 4, n / 2, 3 * n / 4, n - 1];
            let q = Query::one_to_many(0, goals.clone()).with_paths();
            let sr = sharded.execute(&q, &mut scratch);
            let fr = flat.execute(&q, &mut flat_scratch);
            assert_goals_match(&g, &q, &sr, &fr);

            // ManyToMany: rows pinned to their sources' parts.
            let sources: Vec<VertexId> = vec![0, n / 2, n - 1, 1];
            let q = Query::many_to_many(sources, goals).with_paths();
            let sr = sharded.execute(&q, &mut scratch);
            let fr = flat.execute(&q, &mut flat_scratch);
            assert_goals_match(&g, &q, &sr, &fr);

            // Determinism: a repeated table run is bit-identical.
            let sr2 = sharded.execute(&q, &mut scratch);
            assert_eq!(sr.distance_table(), sr2.distance_table(), "{name}/P={parts}");
            for (row, _) in sr.query.sources().iter().enumerate() {
                for &goal in sr.query.goals() {
                    assert_eq!(
                        sr.path_in_row(row, goal),
                        sr2.path_in_row(row, goal),
                        "{name}/P={parts}: repeated run changed a path"
                    );
                }
            }
        }
    }
}

#[test]
fn spatial_partition_conforms_on_the_grid() {
    let (rows, cols) = (10, 12);
    let g = weights::reweight(&gen::grid2d(rows, cols), WeightModel::paper_weighted(), 11);
    let cfg = PartitionConfig::new(4)
        .with_strategy(PartitionStrategy::Spatial(Coordinates::grid(rows, cols)));
    let pg = Partitioner::with_config(cfg).partition(&g);
    let sharded = ShardedSolver::new(&g, &pg);
    let flat = SolverBuilder::new(&g).radius_stepping_solver_from_algorithm();
    let mut scratch = SolverScratch::new();
    let mut flat_scratch = SolverScratch::new();
    let n = g.num_vertices() as VertexId;
    let q = Query::many_to_many(vec![0, n - 1, n / 2], vec![1, n / 3, n - 2, 0]).with_paths();
    let sr = sharded.execute(&q, &mut scratch);
    let fr = flat.execute(&q, &mut flat_scratch);
    assert_goals_match(&g, &q, &sr, &fr);
}

#[test]
fn plain_skeleton_solver_conforms_without_preprocessing() {
    // skeleton_preprocess = None exercises the plain-frontier
    // construction path; answers must be identical either way.
    let g = weights::reweight(&gen::grid2d(8, 8), WeightModel::paper_weighted(), 23);
    let cfg = PartitionConfig::new(3).with_skeleton_preprocess(None);
    let pg = Partitioner::with_config(cfg).partition(&g);
    let sharded = ShardedSolver::new(&g, &pg);
    let flat = SolverBuilder::new(&g).radius_stepping_solver_from_algorithm();
    let mut scratch = SolverScratch::new();
    let mut flat_scratch = SolverScratch::new();
    let q = Query::one_to_many(5, vec![63, 32, 7, 5]).with_paths();
    let sr = sharded.execute(&q, &mut scratch);
    let fr = flat.execute(&q, &mut flat_scratch);
    assert_goals_match(&g, &q, &sr, &fr);
}

#[test]
fn many_to_many_rows_reuse_part_pools() {
    let g = weights::reweight(&gen::grid2d(8, 8), WeightModel::paper_weighted(), 5);
    let pg = Partitioner::new(4).partition(&g);
    let sharded = ShardedSolver::new(&g, &pg);
    let mut scratch = SolverScratch::new();
    let sources: Vec<VertexId> = (0..16).collect();
    let goals: Vec<VertexId> = vec![60, 61, 62, 63];
    let q = Query::many_to_many(sources, goals);
    sharded.execute(&q, &mut scratch);
    sharded.execute(&q, &mut scratch);
    let (created, reused) = sharded.pool_counters();
    assert!(created > 0, "part solves must draw pooled scratch");
    assert!(reused > 0, "a second table run must reuse part-pool scratch, got created={created}");
}
