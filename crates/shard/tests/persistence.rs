//! RSP5 partition-cache persistence: a saved [`PartitionedGraph`]
//! round-trips to an identical in-memory structure, and anything
//! incompatible at the cache path — an RSP4 preprocessing file, garbage,
//! a stale graph hash, or different partition knobs — rebuilds
//! transparently through [`PartitionedGraph::load_or_build`].

use rs_core::solver::{Query, SsspSolver};
use rs_core::SolverScratch;
use rs_graph::{gen, weights, CsrGraph, WeightModel};
use rs_shard::{PartitionConfig, PartitionedGraph, Partitioner, ShardedSolver};

fn test_graph() -> CsrGraph {
    weights::reweight(&gen::grid2d(9, 9), WeightModel::paper_weighted(), 77)
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rsp5-{name}-{}", std::process::id()));
    p
}

/// Structural equality for partitions: assignment, skeleton CSR, and
/// chain tables all byte-for-byte identical.
fn assert_identical(a: &PartitionedGraph, b: &PartitionedGraph) {
    assert_eq!(a.input_hash(), b.input_hash());
    assert_eq!(a.num_parts(), b.num_parts());
    assert_eq!(a.assignment().as_slice(), b.assignment().as_slice());
    assert_eq!(a.boundary().node_globals(), b.boundary().node_globals());
    assert_eq!(a.boundary().raw_parts(), b.boundary().raw_parts());
    assert_eq!(a.boundary().chains().len(), b.boundary().chains().len());
    for (ca, cb) in a.boundary().chains().iter().zip(b.boundary().chains()) {
        assert_eq!(ca.sorted_links(), cb.sorted_links());
    }
}

#[test]
fn rsp5_roundtrip_is_identity() {
    let g = test_graph();
    let built = Partitioner::new(4).partition(&g);
    let path = tmp_path("roundtrip");
    built.save(&path).expect("save must succeed in temp dir");
    let loaded = PartitionedGraph::load(&path, &g).expect("load must succeed");
    assert_identical(&built, &loaded);

    // The loaded partition serves identical answers.
    let s_built = ShardedSolver::new(&g, &built);
    let s_loaded = ShardedSolver::new(&g, &loaded);
    let mut scratch = SolverScratch::new();
    let q = Query::many_to_many(vec![0, 40, 80], vec![80, 0, 17]).with_paths();
    let rb = s_built.execute(&q, &mut scratch);
    let rl = s_loaded.execute(&q, &mut scratch);
    assert_eq!(rb.distance_table(), rl.distance_table());
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_and_rsp4_magic_rebuild_transparently() {
    let g = test_graph();
    let cfg = PartitionConfig::new(3);
    let reference = Partitioner::with_config(cfg.clone()).partition(&g);

    for (name, bytes) in [
        ("rsp4", b"RSP4 pretend preprocessing payload".to_vec()),
        ("garbage", vec![0xAB; 512]),
        ("truncated", b"RSP5".to_vec()),
        ("empty", Vec::new()),
    ] {
        let path = tmp_path(name);
        std::fs::write(&path, &bytes).expect("fixture write");
        assert!(
            PartitionedGraph::load(&path, &g).is_err(),
            "{name}: incompatible file must not parse as RSP5"
        );
        let pg = PartitionedGraph::load_or_build(&g, &cfg, &path);
        assert_identical(&reference, &pg);
        // load_or_build rewrote a valid cache over the bad file.
        let reloaded = PartitionedGraph::load(&path, &g).expect("rewritten cache must load");
        assert_identical(&reference, &reloaded);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn stale_hash_and_knob_mismatch_rebuild() {
    let g = test_graph();
    let other = weights::reweight(&gen::grid2d(9, 9), WeightModel::paper_weighted(), 78);
    let cfg = PartitionConfig::new(4);
    let path = tmp_path("stale");
    Partitioner::with_config(cfg.clone()).partition(&other).save(&path).expect("save");

    // Hash mismatch: cache built for a different graph must not load.
    assert!(PartitionedGraph::load(&path, &g).is_err());
    let pg = PartitionedGraph::load_or_build(&g, &cfg, &path);
    assert_eq!(pg.input_hash(), g.content_hash());

    // Knob mismatch: same graph, different P → rebuild with the new P.
    let pg2 = PartitionedGraph::load_or_build(&g, &PartitionConfig::new(2), &path);
    assert_eq!(pg2.num_parts(), 2);
    // And the rewritten cache now satisfies the new knobs directly.
    let pg3 = PartitionedGraph::load_or_build(&g, &PartitionConfig::new(2), &path);
    assert_identical(&pg2, &pg3);
    std::fs::remove_file(&path).ok();
}
