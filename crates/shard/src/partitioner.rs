//! Splitting a [`CsrGraph`] into parts: BFS/geometric growth seeded
//! round-robin, plus a quad-tree spatial index for coordinate graphs.
//!
//! Both strategies are deterministic functions of the graph (and, for the
//! spatial strategy, the coordinates): re-partitioning the same input
//! always yields the same [`PartitionAssignment`], which is what lets the
//! RSP5 cache treat the assignment array as the partition's identity.

use std::collections::VecDeque;

use rs_graph::partition::PartitionAssignment;
use rs_graph::{CsrGraph, VertexId};

/// Per-vertex planar coordinates for the spatial strategy (road networks
/// and grids embed naturally; any graph can fall back to
/// [`PartitionStrategy::BfsGrowth`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Coordinates {
    xy: Vec<(f64, f64)>,
}

impl Coordinates {
    /// Wraps one `(x, y)` per vertex.
    pub fn new(xy: Vec<(f64, f64)>) -> Coordinates {
        Coordinates { xy }
    }

    /// Row-major grid embedding: vertex `v` of a `rows x cols` grid sits
    /// at `(v % cols, v / cols)` — matches `rs_graph::gen::grid2d`'s
    /// vertex numbering.
    pub fn grid(rows: usize, cols: usize) -> Coordinates {
        let xy = (0..rows * cols).map(|v| ((v % cols) as f64, (v / cols) as f64)).collect();
        Coordinates { xy }
    }

    /// Number of embedded vertices.
    pub fn len(&self) -> usize {
        self.xy.len()
    }

    /// True when no coordinates are present.
    pub fn is_empty(&self) -> bool {
        self.xy.is_empty()
    }

    /// The position of vertex `v`.
    pub fn position(&self, v: VertexId) -> (f64, f64) {
        self.xy[v as usize]
    }
}

/// How the partitioner assigns vertices to parts.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionStrategy {
    /// Geometric BFS growth: each part grows a breadth-first frontier and
    /// the parts claim one vertex per round-robin turn, re-seeding an
    /// exhausted frontier at the lowest-id unassigned vertex (so
    /// disconnected components are always absorbed). Graph-only — needs
    /// no embedding — and produces balanced parts with locality along
    /// the BFS metric.
    BfsGrowth,
    /// Quad-tree split of the coordinate plane: the bounding box is
    /// recursively quartered (most-populous leaf first) until at least
    /// one leaf per part exists, then leaves are packed onto parts
    /// largest-first onto the currently smallest part.
    Spatial(Coordinates),
}

impl PartitionStrategy {
    /// Stable tag persisted in the RSP5 header.
    pub fn tag(&self) -> u8 {
        match self {
            PartitionStrategy::BfsGrowth => 0,
            PartitionStrategy::Spatial(_) => 1,
        }
    }

    /// Computes the assignment (see the variant docs).
    pub fn assign(&self, g: &CsrGraph, num_parts: usize) -> PartitionAssignment {
        let num_parts = num_parts.max(1);
        let part_of = match self {
            PartitionStrategy::BfsGrowth => bfs_growth(g, num_parts),
            PartitionStrategy::Spatial(coords) => {
                assert_eq!(
                    coords.len(),
                    g.num_vertices(),
                    "spatial partitioning needs one coordinate per vertex"
                );
                quad_tree_assign(coords, num_parts)
            }
        };
        PartitionAssignment::new(part_of, num_parts)
    }
}

/// Round-robin BFS growth (see [`PartitionStrategy::BfsGrowth`]).
fn bfs_growth(g: &CsrGraph, num_parts: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let mut part_of = vec![u32::MAX; n];
    let mut frontiers: Vec<VecDeque<VertexId>> = vec![VecDeque::new(); num_parts];
    let mut cursor: usize = 0; // lowest vertex that might still be unassigned
    let mut assigned = 0usize;
    while assigned < n {
        for (p, frontier) in frontiers.iter_mut().enumerate() {
            if assigned == n {
                break;
            }
            // Claim exactly one vertex for part p this turn: pop frontier
            // candidates (skipping ones another part claimed first), or
            // re-seed at the lowest unassigned vertex.
            let claimed = loop {
                match frontier.pop_front() {
                    Some(v) if part_of[v as usize] == u32::MAX => break Some(v),
                    Some(_) => continue,
                    None => {
                        while cursor < n && part_of[cursor] != u32::MAX {
                            cursor += 1;
                        }
                        break (cursor < n).then_some(cursor as VertexId);
                    }
                }
            };
            let Some(v) = claimed else { continue };
            part_of[v as usize] = p as u32;
            assigned += 1;
            for &t in g.neighbors(v) {
                if part_of[t as usize] == u32::MAX {
                    frontier.push_back(t);
                }
            }
        }
    }
    part_of
}

/// One quad-tree leaf during subdivision.
struct Leaf {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    points: Vec<VertexId>,
    /// False once a split attempt failed to separate the points (all at
    /// one position): never retried.
    splittable: bool,
}

/// Quad-tree subdivision assignment (see [`PartitionStrategy::Spatial`]).
fn quad_tree_assign(coords: &Coordinates, num_parts: usize) -> Vec<u32> {
    let n = coords.len();
    if n == 0 {
        return Vec::new();
    }
    let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for v in 0..n as VertexId {
        let (x, y) = coords.position(v);
        x0 = x0.min(x);
        y0 = y0.min(y);
        x1 = x1.max(x);
        y1 = y1.max(y);
    }
    let mut leaves =
        vec![Leaf { x0, y0, x1, y1, points: (0..n as VertexId).collect(), splittable: true }];
    while leaves.len() < num_parts {
        // Split the most-populous splittable leaf (ties toward the first).
        let Some(i) = leaves
            .iter()
            .enumerate()
            .filter(|(_, l)| l.splittable && l.points.len() > 1)
            .max_by_key(|(_, l)| l.points.len())
            .map(|(i, _)| i)
        else {
            break;
        };
        let leaf = leaves.swap_remove(i);
        let (mx, my) = ((leaf.x0 + leaf.x1) / 2.0, (leaf.y0 + leaf.y1) / 2.0);
        let mut quads: [Vec<VertexId>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for &v in &leaf.points {
            let (x, y) = coords.position(v);
            let q = (usize::from(x > mx)) | (usize::from(y > my) << 1);
            quads[q].push(v);
        }
        if quads.iter().filter(|q| !q.is_empty()).count() < 2 {
            // Degenerate cell (all points on one quadrant boundary side):
            // keep it whole and stop retrying it.
            leaves.push(Leaf { splittable: false, ..leaf });
            continue;
        }
        let bounds = [
            (leaf.x0, leaf.y0, mx, my),
            (mx, leaf.y0, leaf.x1, my),
            (leaf.x0, my, mx, leaf.y1),
            (mx, my, leaf.x1, leaf.y1),
        ];
        for (points, (qx0, qy0, qx1, qy1)) in quads.into_iter().zip(bounds) {
            if !points.is_empty() {
                leaves.push(Leaf { x0: qx0, y0: qy0, x1: qx1, y1: qy1, points, splittable: true });
            }
        }
    }
    // Pack leaves onto parts: largest leaf first, onto the currently
    // smallest part (ties toward the lowest part id). Deterministic given
    // the deterministic subdivision above.
    let mut order: Vec<usize> = (0..leaves.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(leaves[i].points.len()), leaves[i].points[0]));
    let mut part_size = vec![0usize; num_parts];
    let mut part_of = vec![0u32; n];
    for i in order {
        let p = (0..num_parts).min_by_key(|&p| part_size[p]).unwrap_or(0);
        part_size[p] += leaves[i].points.len();
        for &v in &leaves[i].points {
            part_of[v as usize] = p as u32;
        }
    }
    part_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::gen;

    #[test]
    fn bfs_growth_is_total_balanced_and_deterministic() {
        let g = gen::grid2d(10, 10);
        let a = PartitionStrategy::BfsGrowth.assign(&g, 4);
        let b = PartitionStrategy::BfsGrowth.assign(&g, 4);
        assert_eq!(a, b, "deterministic");
        let sizes: Vec<usize> = a.members().iter().map(|m| m.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        // One claim per turn keeps parts within one vertex of each other.
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
    }

    #[test]
    fn bfs_growth_covers_disconnected_components() {
        // Two 3x3 islands, no edges between them.
        let mut b = rs_graph::EdgeListBuilder::new(18);
        for base in [0u32, 9] {
            for r in 0..3u32 {
                for c in 0..3u32 {
                    let v = base + 3 * r + c;
                    if c + 1 < 3 {
                        b.add_edge(v, v + 1, 1);
                    }
                    if r + 1 < 3 {
                        b.add_edge(v, v + 3, 1);
                    }
                }
            }
        }
        let g = b.build();
        let asg = PartitionStrategy::BfsGrowth.assign(&g, 3);
        assert_eq!(asg.members().iter().map(|m| m.len()).sum::<usize>(), 18, "every vertex owned");
    }

    #[test]
    fn quad_tree_splits_the_plane() {
        let g = gen::grid2d(8, 8);
        let coords = Coordinates::grid(8, 8);
        let asg = PartitionStrategy::Spatial(coords).assign(&g, 4);
        let sizes: Vec<usize> = asg.members().iter().map(|m| m.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        // Four quadrants of an 8x8 grid pack evenly.
        assert!(sizes.iter().all(|&s| s == 16), "{sizes:?}");
    }

    #[test]
    fn quad_tree_degenerate_coordinates_fall_back_to_one_leaf() {
        let g = gen::path(5);
        let coords = Coordinates::new(vec![(1.0, 1.0); 5]);
        let asg = PartitionStrategy::Spatial(coords).assign(&g, 3);
        // Unsplittable cloud: everything lands in one part, others empty.
        assert_eq!(asg.members()[0].len(), 5);
    }
}
