//! The boundary skeleton: an overlay graph over boundary vertices whose
//! distances equal the input graph's distances exactly.
//!
//! **Nodes** are the boundary vertices — every vertex with at least one
//! cut arc (an arc whose endpoints live in different parts). **Edges**
//! are (a) every cut arc, at its input weight, and (b) for each part, a
//! clique over that part's boundary vertices weighted by *within-part*
//! distances (shortest paths in the part's induced subgraph).
//!
//! Exactness: a shortest path between boundary vertices decomposes at its
//! cut arcs into maximal within-part segments; each segment joins two
//! boundary vertices of one part and is no shorter than their within-part
//! distance (it lies entirely inside the part), so the skeleton never
//! underestimates — and every skeleton edge is realised by an actual
//! input-graph path, so it never overestimates either.
//!
//! The within-part distances are produced by the existing (k, ρ)
//! preprocessing + one-to-many machinery: each part is preprocessed with
//! [`Preprocessed`]-backed solvers and each boundary vertex runs one
//! `OneToMany` solve over its part. The solves request paths, and the
//! returned input-graph routes are recorded as per-part [`ChainTable`]s —
//! the same parent-link discipline as
//! [`rs_core::ShortcutExpander`] — so a skeleton hop can later be
//! unrolled into exact input-graph edges.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rs_core::solver::{Query, SolverBuilder, SsspSolver};
use rs_core::{PreprocessConfig, SolverScratch, StepStats};
use rs_graph::partition::SubgraphView;
use rs_graph::{CsrGraph, Dist, VertexId, INF};

/// Per-part parent links for expanding a within-part skeleton hop into
/// input-graph edges: `(boundary_source_local, v_local) → parent_local`
/// along a shortest within-part path — the [`rs_core::ShortcutExpander`]
/// discipline, keyed in part-local ids.
///
/// Links from different goals may overwrite each other at shared
/// vertices; every recorded link satisfies
/// `d(b, parent) + w(parent, v) = d(b, v)` exactly, so any walk
/// telescopes correctly and strictly descends toward `b`.
#[derive(Debug, Clone, Default)]
pub struct ChainTable {
    links: HashMap<(VertexId, VertexId), VertexId>,
}

impl ChainTable {
    /// An empty table.
    pub fn new() -> ChainTable {
        ChainTable::default()
    }

    /// Records `parent` as the predecessor of `v` on a shortest
    /// within-part path from boundary source `b` (all part-local ids).
    pub fn insert(&mut self, b: VertexId, v: VertexId, parent: VertexId) {
        self.links.insert((b, v), parent);
    }

    /// The recorded predecessor of `v` on the path from `b`.
    pub fn parent(&self, b: VertexId, v: VertexId) -> Option<VertexId> {
        self.links.get(&(b, v)).copied()
    }

    /// Number of recorded links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no links are recorded.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Deterministically ordered link list (for persistence).
    pub fn sorted_links(&self) -> Vec<(VertexId, VertexId, VertexId)> {
        let mut out: Vec<_> = self.links.iter().map(|(&(b, v), &p)| (b, v, p)).collect();
        out.sort_unstable();
        out
    }

    /// Walks the chain from `v` back to `b`, returning the *forward*
    /// local path `b … v`. `None` when the chain is broken (never happens
    /// for pairs the skeleton recorded).
    pub fn walk(&self, b: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        let mut path = vec![v];
        let mut cur = v;
        while cur != b {
            cur = self.parent(b, cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// The boundary-skeleton graph: CSR over skeleton node ids with `u64`
/// weights (within-part distances can exceed any single edge weight), the
/// node↔global mapping, and the per-part [`ChainTable`]s.
#[derive(Debug, Clone)]
pub struct SkeletonGraph {
    /// `node_global[node]` = the input graph's vertex id; sorted
    /// ascending, so node lookup is a binary search.
    node_global: Vec<VertexId>,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<Dist>,
    chains: Vec<ChainTable>,
}

/// Counters from one skeleton solve, folded into the sharded response's
/// [`StepStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SkeletonSolve {
    /// Skeleton nodes settled.
    pub settled: usize,
    /// Successful relaxations.
    pub relaxations: u64,
    /// Skeleton edges examined.
    pub relaxed_edges: u64,
}

impl SkeletonGraph {
    /// Assembles a skeleton from raw parts (the build path and the RSP5
    /// loader). `edges` are directed `(node, node, dist)` entries; they
    /// are symmetrised and min-deduplicated here.
    pub fn from_edges(
        node_global: Vec<VertexId>,
        edges: Vec<(u32, u32, Dist)>,
        chains: Vec<ChainTable>,
    ) -> SkeletonGraph {
        let nodes = node_global.len();
        debug_assert!(node_global.windows(2).all(|w| w[0] < w[1]), "nodes sorted");
        let mut arcs: Vec<(u32, u32, Dist)> = Vec::with_capacity(edges.len() * 2);
        for (u, v, w) in edges {
            debug_assert!((u as usize) < nodes && (v as usize) < nodes && u != v);
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        arcs.sort_unstable();
        arcs.dedup_by_key(|&mut (u, v, _)| (u, v)); // sorted: keeps the min weight
        let mut offsets = vec![0usize; nodes + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let targets = arcs.iter().map(|&(_, v, _)| v).collect();
        let weights = arcs.iter().map(|&(_, _, w)| w).collect();
        SkeletonGraph { node_global, offsets, targets, weights, chains }
    }

    /// Number of skeleton nodes (boundary vertices).
    pub fn num_nodes(&self) -> usize {
        self.node_global.len()
    }

    /// Number of undirected skeleton edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// The input-graph vertex behind skeleton node `node`.
    pub fn global_of_node(&self, node: u32) -> VertexId {
        self.node_global[node as usize]
    }

    /// The skeleton node of input vertex `global`, if it is a boundary
    /// vertex.
    pub fn node_of_global(&self, global: VertexId) -> Option<u32> {
        self.node_global.binary_search(&global).ok().map(|i| i as u32)
    }

    /// The sorted boundary vertex ids (node order).
    pub fn node_globals(&self) -> &[VertexId] {
        &self.node_global
    }

    /// The per-part chain tables (index = part id).
    pub fn chains(&self) -> &[ChainTable] {
        &self.chains
    }

    /// Raw CSR views (for persistence).
    pub fn raw_parts(&self) -> (&[usize], &[u32], &[Dist]) {
        (&self.offsets, &self.targets, &self.weights)
    }

    /// Multi-source Dijkstra over the skeleton with per-seed distance
    /// offsets: computes `dist[node] = min_seed (offset + d_skel(seed,
    /// node))`. With the offsets set to within-part distances from a
    /// query source `s` to its part's boundary, `dist[node]` is the
    /// *exact input-graph* distance `d(s, node)` for every skeleton node
    /// (see the module docs). Deterministic: the heap breaks distance
    /// ties toward the lowest node id, and parents are fixed at first
    /// settle.
    pub fn multi_source(
        &self,
        seeds: &[(u32, Dist)],
        want_parents: bool,
    ) -> (Vec<Dist>, Option<Vec<u32>>, SkeletonSolve) {
        let nodes = self.num_nodes();
        let mut dist = vec![INF; nodes];
        let mut parent = want_parents.then(|| vec![u32::MAX; nodes]);
        let mut stats = SkeletonSolve::default();
        let mut heap: BinaryHeap<Reverse<(Dist, u32)>> = BinaryHeap::new();
        for &(node, offset) in seeds {
            if offset < dist[node as usize] {
                dist[node as usize] = offset;
                if let Some(p) = parent.as_mut() {
                    p[node as usize] = node; // seed: self-parented root
                }
                heap.push(Reverse((offset, node)));
            }
        }
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue; // stale entry
            }
            stats.settled += 1;
            let (lo, hi) = (self.offsets[u as usize], self.offsets[u as usize + 1]);
            for (&v, &w) in self.targets[lo..hi].iter().zip(&self.weights[lo..hi]) {
                stats.relaxed_edges += 1;
                let cand = d.saturating_add(w);
                if cand < dist[v as usize] {
                    dist[v as usize] = cand;
                    if let Some(p) = parent.as_mut() {
                        p[v as usize] = u;
                    }
                    stats.relaxations += 1;
                    heap.push(Reverse((cand, v)));
                }
            }
        }
        (dist, parent, stats)
    }
}

/// Builds the skeleton for a partition: identifies boundary vertices,
/// collects cut arcs, and runs one `OneToMany` solve per boundary vertex
/// over its part — through a per-part (k, ρ)-preprocessed solver when
/// `pre_cfg` is given (the preprocessing's `ShortcutExpander` makes the
/// recorded chain paths input-graph exact automatically), a plain
/// frontier solver otherwise. Also returns the accumulated solve stats
/// for telemetry.
pub fn build_skeleton(
    g: &CsrGraph,
    part_of: &[u32],
    parts: &[SubgraphView],
    pre_cfg: Option<&PreprocessConfig>,
) -> (SkeletonGraph, StepStats) {
    // Boundary nodes: tails of cut arcs (heads are covered by symmetry).
    let mut node_global: Vec<VertexId> = Vec::new();
    for u in 0..g.num_vertices() as VertexId {
        if g.neighbors(u).iter().any(|&t| part_of[t as usize] != part_of[u as usize]) {
            node_global.push(u);
        }
    }
    let node_of = |global: VertexId| -> u32 {
        node_global.binary_search(&global).expect("boundary vertex has a node") as u32
    };

    let mut edges: Vec<(u32, u32, Dist)> = Vec::new();
    // Cut arcs at input weight (one direction; from_edges symmetrises).
    for &u in &node_global {
        for (t, w) in g.edges(u) {
            if part_of[t as usize] != part_of[u as usize] && u < t {
                edges.push((node_of(u), node_of(t), w as Dist));
            }
        }
    }

    // Per-part boundary cliques via one OneToMany solve per boundary
    // vertex, recording the solved paths as chain links.
    let mut chains: Vec<ChainTable> = vec![ChainTable::new(); parts.len()];
    let mut stats = StepStats::default();
    for (p, view) in parts.iter().enumerate() {
        let boundary_locals: Vec<VertexId> = view
            .to_global
            .iter()
            .enumerate()
            .filter(|&(_, &gv)| node_global.binary_search(&gv).is_ok())
            .map(|(local, _)| local as VertexId)
            .collect();
        if boundary_locals.len() < 2 {
            continue;
        }
        let solver = match pre_cfg {
            Some(cfg) => SolverBuilder::new(&view.graph)
                .preprocess(*cfg)
                .radius_stepping_solver_from_algorithm(),
            None => SolverBuilder::new(&view.graph).radius_stepping_solver_from_algorithm(),
        };
        let mut scratch = SolverScratch::new();
        solver.warm_scratch(&mut scratch);
        for &b in &boundary_locals {
            let goals: Vec<VertexId> =
                boundary_locals.iter().copied().filter(|&o| o != b).collect();
            let resp =
                solver.execute(&Query::one_to_many(b, goals.clone()).with_paths(), &mut scratch);
            absorb_stats(&mut stats, resp.stats());
            for &o in &goals {
                let d = resp.dist()[o as usize];
                if d == INF {
                    continue;
                }
                edges.push((node_of(view.to_global(b)), node_of(view.to_global(o)), d));
                // goal_path_to expands shortcut hops through the part
                // preprocessing's expander, so these links ride input
                // edges only.
                if let Some(path) = resp.goal_path_to(o) {
                    for hop in path.windows(2) {
                        chains[p].insert(b, hop[1], hop[0]);
                    }
                }
            }
        }
    }
    (SkeletonGraph::from_edges(node_global, edges, chains), stats)
}

/// Folds one solve's counters into an accumulator (steps are summed — a
/// sharded answer is a sequence of small solves).
pub fn absorb_stats(acc: &mut StepStats, one: &StepStats) {
    acc.steps += one.steps;
    acc.substeps += one.substeps;
    acc.max_substeps_in_step = acc.max_substeps_in_step.max(one.max_substeps_in_step);
    acc.relaxations += one.relaxations;
    acc.relaxed_edges += one.relaxed_edges;
    acc.settled += one.settled;
    acc.scratch_reused &= one.scratch_reused;
}
