//! [`PartitionedGraph`]: the partition layer's product — part views, the
//! boundary skeleton, and the vertex map — plus its RSP5 on-disk cache.
//!
//! The RSP5 file persists the partition's *identity* (input content hash,
//! knobs, the assignment array) and its *expensive artifacts* (skeleton
//! nodes/edges and chain tables). Part views are cheap `O(m)` induced
//! subgraphs and are rebuilt from the assignment on load. Any
//! non-matching file — an RSP4 preprocessing cache, garbage, a stale
//! hash, different knobs — fails the load and
//! [`PartitionedGraph::load_or_build`] transparently rebuilds and
//! rewrites, mirroring the RSP4 discipline of
//! `rs_core::solver::resolve_preprocessed`.

use std::io::{Read, Write};
use std::path::Path;

use rs_core::{PreprocessConfig, StepStats};
use rs_graph::partition::{induced_subgraph, PartitionAssignment, SubgraphView};
use rs_graph::{CsrGraph, Dist, VertexId};

use crate::partitioner::PartitionStrategy;
use crate::skeleton::{build_skeleton, ChainTable, SkeletonGraph};

/// Partitioning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Number of parts `P`.
    pub num_parts: usize,
    /// Assignment strategy.
    pub strategy: PartitionStrategy,
    /// Per-part (k, ρ)-preprocessing used while computing the skeleton's
    /// within-part boundary distances; `None` solves each part with the
    /// plain frontier engine. Either way the skeleton is exact — the
    /// preprocessing only changes how the construction solves run.
    pub skeleton_preprocess: Option<PreprocessConfig>,
}

impl PartitionConfig {
    /// BFS-growth partitioning into `num_parts` parts with the default
    /// `(k, ρ) = (1, 16)` skeleton preprocessing.
    pub fn new(num_parts: usize) -> PartitionConfig {
        PartitionConfig {
            num_parts: num_parts.max(1),
            strategy: PartitionStrategy::BfsGrowth,
            skeleton_preprocess: Some(PreprocessConfig::new(1, 16)),
        }
    }

    /// Replaces the assignment strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> PartitionConfig {
        self.strategy = strategy;
        self
    }

    /// Replaces (or disables, with `None`) the skeleton-construction
    /// preprocessing.
    pub fn with_skeleton_preprocess(mut self, cfg: Option<PreprocessConfig>) -> PartitionConfig {
        self.skeleton_preprocess = cfg;
        self
    }
}

/// Splits graphs according to a [`PartitionConfig`].
#[derive(Debug, Clone)]
pub struct Partitioner {
    cfg: PartitionConfig,
}

impl Partitioner {
    /// A BFS-growth partitioner into `num_parts` parts.
    pub fn new(num_parts: usize) -> Partitioner {
        Partitioner { cfg: PartitionConfig::new(num_parts) }
    }

    /// A partitioner with explicit knobs.
    pub fn with_config(cfg: PartitionConfig) -> Partitioner {
        Partitioner { cfg }
    }

    /// The configured knobs.
    pub fn config(&self) -> &PartitionConfig {
        &self.cfg
    }

    /// Partitions `g`: assignment → part views → boundary skeleton.
    pub fn partition(&self, g: &CsrGraph) -> PartitionedGraph {
        PartitionedGraph::build(g, &self.cfg)
    }
}

/// A graph split into parts with a boundary skeleton over the cut.
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    input_hash: u64,
    num_parts: usize,
    strategy_tag: u8,
    skeleton_preprocess: Option<PreprocessConfig>,
    assignment: PartitionAssignment,
    /// One induced subgraph per part, local ids in ascending-global order.
    parts: Vec<SubgraphView>,
    /// The boundary skeleton (exact distances; see [`SkeletonGraph`]).
    boundary: SkeletonGraph,
    /// `vertex_map[global] = (part, local)`.
    vertex_map: Vec<(u32, u32)>,
    /// Per part: `(local, skeleton node)` for each boundary vertex, in
    /// ascending local order — the seed/goal list of every routed solve.
    part_boundary: Vec<Vec<(VertexId, u32)>>,
    /// Construction-time solve counters (telemetry).
    build_stats: StepStats,
}

impl PartitionedGraph {
    /// Partitions `g` and builds the boundary skeleton.
    pub fn build(g: &CsrGraph, cfg: &PartitionConfig) -> PartitionedGraph {
        let assignment = cfg.strategy.assign(g, cfg.num_parts);
        let parts: Vec<SubgraphView> =
            assignment.members().iter().map(|m| induced_subgraph(g, m)).collect();
        let (boundary, build_stats) =
            build_skeleton(g, assignment.as_slice(), &parts, cfg.skeleton_preprocess.as_ref());
        Self::assemble(
            g.content_hash(),
            cfg.num_parts,
            cfg.strategy.tag(),
            cfg.skeleton_preprocess,
            assignment,
            parts,
            boundary,
            build_stats,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        input_hash: u64,
        num_parts: usize,
        strategy_tag: u8,
        skeleton_preprocess: Option<PreprocessConfig>,
        assignment: PartitionAssignment,
        parts: Vec<SubgraphView>,
        boundary: SkeletonGraph,
        build_stats: StepStats,
    ) -> PartitionedGraph {
        let vertex_map: Vec<(u32, u32)> = (0..assignment.len() as VertexId)
            .map(|v| {
                let p = assignment.part_of(v);
                let local = parts[p as usize].to_local(v).expect("assigned vertex is in its part");
                (p, local)
            })
            .collect();
        let part_boundary: Vec<Vec<(VertexId, u32)>> = parts
            .iter()
            .map(|view| {
                view.to_global
                    .iter()
                    .enumerate()
                    .filter_map(|(local, &gv)| {
                        boundary.node_of_global(gv).map(|node| (local as VertexId, node))
                    })
                    .collect()
            })
            .collect();
        PartitionedGraph {
            input_hash,
            num_parts,
            strategy_tag,
            skeleton_preprocess,
            assignment,
            parts,
            boundary,
            vertex_map,
            part_boundary,
            build_stats,
        }
    }

    /// Content hash of the graph this partition was built for.
    pub fn input_hash(&self) -> u64 {
        self.input_hash
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// The vertex→part assignment.
    pub fn assignment(&self) -> &PartitionAssignment {
        &self.assignment
    }

    /// All part views (index = part id).
    pub fn parts(&self) -> &[SubgraphView] {
        &self.parts
    }

    /// One part's view.
    pub fn part(&self, p: u32) -> &SubgraphView {
        &self.parts[p as usize]
    }

    /// The boundary skeleton.
    pub fn boundary(&self) -> &SkeletonGraph {
        &self.boundary
    }

    /// `vertex_map()[global] = (part, local)`.
    pub fn vertex_map(&self) -> &[(u32, u32)] {
        &self.vertex_map
    }

    /// Locates a global vertex: `(part, local)`.
    pub fn locate(&self, v: VertexId) -> (u32, u32) {
        self.vertex_map[v as usize]
    }

    /// Per-part `(local, skeleton node)` boundary lists.
    pub fn part_boundary(&self, p: u32) -> &[(VertexId, u32)] {
        &self.part_boundary[p as usize]
    }

    /// Construction-time solve counters.
    pub fn build_stats(&self) -> &StepStats {
        &self.build_stats
    }

    /// Writes the RSP5 cache file (see the module docs for what is
    /// persisted vs rebuilt).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        // "RSP5": the sharding cache section — one format up from the
        // "RSP4" preprocessing cache. RSP4 (and older / foreign) files
        // fail the magic check on load and are transparently rebuilt.
        w.write_all(b"RSP5")?;
        w.write_all(&self.input_hash.to_le_bytes())?;
        w.write_all(&(self.num_parts as u32).to_le_bytes())?;
        w.write_all(&[self.strategy_tag])?;
        match &self.skeleton_preprocess {
            None => w.write_all(&[0u8])?,
            Some(cfg) => {
                w.write_all(&[1u8])?;
                w.write_all(&cfg.k.to_le_bytes())?;
                w.write_all(&(cfg.rho as u64).to_le_bytes())?;
            }
        }
        w.write_all(&(self.assignment.len() as u64).to_le_bytes())?;
        for &p in self.assignment.as_slice() {
            w.write_all(&p.to_le_bytes())?;
        }
        let skel = &self.boundary;
        w.write_all(&(skel.num_nodes() as u64).to_le_bytes())?;
        for &gv in skel.node_globals() {
            w.write_all(&gv.to_le_bytes())?;
        }
        let (offsets, targets, weights) = skel.raw_parts();
        w.write_all(&(targets.len() as u64).to_le_bytes())?;
        for &o in offsets {
            w.write_all(&(o as u64).to_le_bytes())?;
        }
        for &t in targets {
            w.write_all(&t.to_le_bytes())?;
        }
        for &d in weights {
            w.write_all(&d.to_le_bytes())?;
        }
        w.write_all(&(skel.chains().len() as u32).to_le_bytes())?;
        for chain in skel.chains() {
            let links = chain.sorted_links();
            w.write_all(&(links.len() as u64).to_le_bytes())?;
            for (b, v, parent) in links {
                w.write_all(&b.to_le_bytes())?;
                w.write_all(&v.to_le_bytes())?;
                w.write_all(&parent.to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Loads an RSP5 file written by [`PartitionedGraph::save`] and
    /// re-derives the part views from the persisted assignment. Fails
    /// (for the caller to rebuild) on a bad magic, a content-hash
    /// mismatch against `g`, or any truncation.
    pub fn load<P: AsRef<Path>>(path: P, g: &CsrGraph) -> std::io::Result<PartitionedGraph> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut b1 = [0u8; 1];
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"RSP5" {
            return Err(bad("not a saved partition (or an old format, e.g. RSP4)"));
        }
        r.read_exact(&mut b8)?;
        let input_hash = u64::from_le_bytes(b8);
        if input_hash != g.content_hash() {
            return Err(bad("partition was built for a different graph"));
        }
        r.read_exact(&mut b4)?;
        let num_parts = u32::from_le_bytes(b4) as usize;
        r.read_exact(&mut b1)?;
        let strategy_tag = b1[0];
        r.read_exact(&mut b1)?;
        let skeleton_preprocess = match b1[0] {
            0 => None,
            1 => {
                r.read_exact(&mut b4)?;
                let k = u32::from_le_bytes(b4);
                r.read_exact(&mut b8)?;
                let rho = u64::from_le_bytes(b8) as usize;
                Some(PreprocessConfig::new(k, rho))
            }
            _ => return Err(bad("unknown preprocessing tag")),
        };
        r.read_exact(&mut b8)?;
        let n = u64::from_le_bytes(b8) as usize;
        if n != g.num_vertices() {
            return Err(bad("assignment length does not match the graph"));
        }
        let mut part_of = Vec::with_capacity(n);
        for _ in 0..n {
            r.read_exact(&mut b4)?;
            let p = u32::from_le_bytes(b4);
            if p as usize >= num_parts {
                return Err(bad("assignment entry out of range"));
            }
            part_of.push(p);
        }
        r.read_exact(&mut b8)?;
        let nodes = u64::from_le_bytes(b8) as usize;
        let mut node_global = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            r.read_exact(&mut b4)?;
            node_global.push(u32::from_le_bytes(b4));
        }
        if !node_global.windows(2).all(|w| w[0] < w[1])
            || node_global.iter().any(|&v| v as usize >= n)
        {
            return Err(bad("skeleton nodes not sorted / out of range"));
        }
        r.read_exact(&mut b8)?;
        let arcs = u64::from_le_bytes(b8) as usize;
        let mut offsets = Vec::with_capacity(nodes + 1);
        for _ in 0..nodes + 1 {
            r.read_exact(&mut b8)?;
            offsets.push(u64::from_le_bytes(b8) as usize);
        }
        if offsets.first() != Some(&0) || offsets.last() != Some(&arcs) {
            return Err(bad("skeleton offsets corrupt"));
        }
        let mut edges: Vec<(u32, u32, Dist)> = Vec::with_capacity(arcs);
        let mut targets = Vec::with_capacity(arcs);
        let mut weights = Vec::with_capacity(arcs);
        for _ in 0..arcs {
            r.read_exact(&mut b4)?;
            targets.push(u32::from_le_bytes(b4));
        }
        for _ in 0..arcs {
            r.read_exact(&mut b8)?;
            weights.push(u64::from_le_bytes(b8));
        }
        for u in 0..nodes {
            if offsets[u] > offsets[u + 1] || offsets[u + 1] > arcs {
                return Err(bad("skeleton offsets not monotone"));
            }
            for i in offsets[u]..offsets[u + 1] {
                if targets[i] as usize >= nodes {
                    return Err(bad("skeleton target out of range"));
                }
                edges.push((u as u32, targets[i], weights[i]));
            }
        }
        r.read_exact(&mut b4)?;
        let num_chains = u32::from_le_bytes(b4) as usize;
        if num_chains != num_parts {
            return Err(bad("one chain table per part expected"));
        }
        let mut chains = Vec::with_capacity(num_chains);
        for _ in 0..num_chains {
            r.read_exact(&mut b8)?;
            let links = u64::from_le_bytes(b8) as usize;
            let mut chain = ChainTable::new();
            for _ in 0..links {
                let mut ids = [[0u8; 4]; 3];
                for id in &mut ids {
                    r.read_exact(id)?;
                }
                chain.insert(
                    u32::from_le_bytes(ids[0]),
                    u32::from_le_bytes(ids[1]),
                    u32::from_le_bytes(ids[2]),
                );
            }
            chains.push(chain);
        }
        let assignment = PartitionAssignment::new(part_of, num_parts);
        let parts: Vec<SubgraphView> =
            assignment.members().iter().map(|m| induced_subgraph(g, m)).collect();
        // Re-symmetrising via from_edges reproduces the identical CSR:
        // the persisted arcs already contain both directions.
        let boundary = SkeletonGraph::from_edges(node_global, edges, chains);
        Ok(Self::assemble(
            input_hash,
            num_parts,
            strategy_tag,
            skeleton_preprocess,
            assignment,
            parts,
            boundary,
            StepStats::default(),
        ))
    }

    /// Loads a compatible RSP5 cache from `path`, or partitions `g` from
    /// scratch and rewrites the cache (best-effort). "Compatible" means:
    /// valid RSP5, matching content hash, and matching `cfg` knobs. An
    /// RSP4 preprocessing file (or anything else) at `path` rebuilds
    /// transparently.
    pub fn load_or_build<P: AsRef<Path>>(
        g: &CsrGraph,
        cfg: &PartitionConfig,
        path: P,
    ) -> PartitionedGraph {
        if let Ok(pg) = PartitionedGraph::load(&path, g) {
            if pg.num_parts == cfg.num_parts
                && pg.strategy_tag == cfg.strategy.tag()
                && pg.skeleton_preprocess == cfg.skeleton_preprocess
            {
                return pg;
            }
        }
        let pg = PartitionedGraph::build(g, cfg);
        // Best-effort: an unwritable cache degrades to rebuild-next-time.
        let _ = pg.save(&path);
        pg
    }
}
