//! [`ShardedSolver`]: an [`SsspSolver`] that answers queries through the
//! partition layer — intra-part solve → skeleton solve → intra-part
//! solve — instead of touching one flat graph.
//!
//! ## Routing
//!
//! * `PointToPoint` with endpoints in *different* parts runs the
//!   three-phase route; endpoints sharing a part fall back to the flat
//!   solver (the part view alone cannot prove a same-part distance — the
//!   shortest path may leave the part — and a flat goal-bounded solve is
//!   the cheaper certificate).
//! * `OneToMany` routes every goal through the skeleton; goals sharing
//!   the source's part additionally get the direct within-part candidate
//!   from the first leg, and the minimum of the two is exact.
//! * `ManyToMany` fans its rows over the worker pool with every
//!   part-local solve drawing scratch from that *part's*
//!   [`ScratchPool`] — rows are pinned to the parts they touch, closing
//!   the batch-level-scratch-pool follow-up.
//! * `SingleSource` needs exact distances *everywhere* and delegates to
//!   the flat solver (partitioning buys nothing for a full relaxation).
//!
//! ## Exactness
//!
//! For a source `s` in part `p`, seeding a skeleton Dijkstra at every
//! boundary vertex `b` of `p` with offset `d_within(s, b)` yields the
//! exact input-graph distance `d(s, x)` at **every** skeleton node `x`:
//! a shortest `s → x` path's prefix up to its first cut arc stays inside
//! `p` (costing at least `d_within(s, b')` for the crossing vertex `b'`)
//! and the remainder runs boundary-to-boundary (costing at least the
//! skeleton distance). A goal `g` in part `q` then satisfies
//! `d(s, g) = min( [q = p] d_within(s, g),
//!                 min_{b ∈ ∂q} d(s, b) + d_within(b, g) )`
//! — the second leg's `d_within(b, g) = d_within(g, b)` comes from one
//! goal-side `OneToMany` solve per goal (the graphs are undirected).
//!
//! Paths are stitched to exact *input-graph* routes: leg paths come from
//! the part solves (shortcut hops already expanded by the parts'
//! `ShortcutExpander`s), and within-part skeleton hops unroll through the
//! per-part [`crate::ChainTable`]s — the same discipline, one level up.

use rs_core::solver::{
    Query, QueryResponse, QueryShape, RadiusSteppingSolver, SolverBuilder, SsspSolver,
};
use rs_core::{ScratchPool, SolverScratch, SsspResult, StepStats};
use rs_graph::{CsrGraph, Dist, VertexId, INF};

use crate::partitioned::PartitionedGraph;
use crate::skeleton::absorb_stats;

/// A sharded SSSP solver over a [`PartitionedGraph`].
///
/// Borrows both the input graph and the partition; per-part solvers are
/// plain frontier solvers over the part views (the skeleton *is* the
/// preprocessing at this layer).
pub struct ShardedSolver<'a> {
    graph: &'a CsrGraph,
    pg: &'a PartitionedGraph,
    flat: RadiusSteppingSolver<'a>,
    part_solvers: Vec<RadiusSteppingSolver<'a>>,
    /// One scratch pool per part: many-to-many rows and goal-side solves
    /// check out scratch sized for the part they run on.
    pools: Vec<ScratchPool>,
}

impl<'a> ShardedSolver<'a> {
    /// Builds a sharded solver. `pg` must have been built (or loaded) for
    /// exactly this graph.
    ///
    /// # Panics
    /// If `pg`'s recorded content hash does not match `graph`.
    pub fn new(graph: &'a CsrGraph, pg: &'a PartitionedGraph) -> ShardedSolver<'a> {
        assert_eq!(
            pg.input_hash(),
            graph.content_hash(),
            "partition was built for a different graph"
        );
        let flat = SolverBuilder::new(graph).radius_stepping_solver_from_algorithm();
        let part_solvers = pg
            .parts()
            .iter()
            .map(|view| SolverBuilder::new(&view.graph).radius_stepping_solver_from_algorithm())
            .collect();
        let pools = pg.parts().iter().map(|_| ScratchPool::new()).collect();
        ShardedSolver { graph, pg, flat, part_solvers, pools }
    }

    /// The partition this solver routes through.
    pub fn partition(&self) -> &PartitionedGraph {
        self.pg
    }

    /// Per-part scratch pool counters: `(created, reused)` summed over
    /// all parts.
    pub fn pool_counters(&self) -> (u64, u64) {
        self.pools.iter().fold((0, 0), |(c, r), p| (c + p.created(), r + p.reused()))
    }

    /// One `OneToMany` solve on part `p` from `source` (local) to
    /// `goals` (local), scratch drawn from the part's pool.
    fn part_solve(
        &self,
        p: u32,
        source: VertexId,
        goals: Vec<VertexId>,
        want_paths: bool,
    ) -> QueryResponse {
        let solver = &self.part_solvers[p as usize];
        let mut scratch = self.pools[p as usize].checkout();
        solver.warm_scratch(&mut scratch);
        let mut q = Query::one_to_many(source, goals);
        if want_paths {
            q = q.with_paths();
        }
        solver.execute(&q, &mut scratch)
    }

    /// The routed one-to-many solve behind every sharded shape: exact
    /// distances (and, with `want_paths`, exact input-graph paths) from
    /// `source` to each goal, written into a full-size result row.
    fn route_one_to_many(
        &self,
        source: VertexId,
        goals: &[VertexId],
        want_paths: bool,
    ) -> SsspResult {
        let n = self.graph.num_vertices();
        let (p, s_local) = self.pg.locate(source);
        let p_boundary = self.pg.part_boundary(p);
        let mut stats = StepStats::default();

        // Leg 1: within the source's part, to its boundary plus any
        // same-part goals (one solve covers both roles).
        let mut leg1_goals: Vec<VertexId> = p_boundary.iter().map(|&(local, _)| local).collect();
        for &g in goals {
            let (q, g_local) = self.pg.locate(g);
            if q == p {
                leg1_goals.push(g_local);
            }
        }
        leg1_goals.sort_unstable();
        leg1_goals.dedup();
        leg1_goals.retain(|&l| l != s_local);
        let leg1 =
            (!leg1_goals.is_empty()).then(|| self.part_solve(p, s_local, leg1_goals, want_paths));
        if let Some(r) = &leg1 {
            absorb_stats(&mut stats, r.stats());
        }
        let leg1_dist = |local: VertexId| -> Dist {
            if local == s_local {
                0
            } else {
                leg1.as_ref().map_or(INF, |r| r.dist()[local as usize])
            }
        };

        // Leg 2: one skeleton Dijkstra seeded with the within-part
        // distances — exact d(source, ·) at every skeleton node.
        let seeds: Vec<(u32, Dist)> = p_boundary
            .iter()
            .filter_map(|&(local, node)| {
                let d = leg1_dist(local);
                (d != INF).then_some((node, d))
            })
            .collect();
        let (skel_dist, skel_parent, skel_stats) =
            self.pg.boundary().multi_source(&seeds, want_paths);
        stats.settled += skel_stats.settled;
        stats.relaxations += skel_stats.relaxations;
        stats.relaxed_edges += skel_stats.relaxed_edges;

        let mut dist = vec![INF; n];
        dist[source as usize] = 0;
        let mut parent = want_paths.then(|| {
            let mut par = vec![u32::MAX; n];
            par[source as usize] = source;
            par
        });
        // Scatter the skeleton's exact distances — they sharpen the row
        // at no cost and every entry honours the "exact or upper bound"
        // response contract.
        for (node, &d) in skel_dist.iter().enumerate() {
            if d != INF {
                let gv = self.pg.boundary().global_of_node(node as u32);
                dist[gv as usize] = d;
            }
        }

        let mut distinct: Vec<VertexId> = goals.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for g in distinct {
            if g == source {
                continue; // dist 0 / self-parent already in place
            }
            let (q, g_local) = self.pg.locate(g);
            let direct = if q == p { leg1_dist(g_local) } else { INF };
            // Goal-side leg: within-part distances from the goal to its
            // part's boundary (valid for `b → g` too — undirected).
            let q_boundary = self.pg.part_boundary(q);
            let leg3_goals: Vec<VertexId> =
                q_boundary.iter().map(|&(local, _)| local).filter(|&l| l != g_local).collect();
            let leg3 = (!leg3_goals.is_empty() && !seeds.is_empty())
                .then(|| self.part_solve(q, g_local, leg3_goals, want_paths));
            if let Some(r) = &leg3 {
                absorb_stats(&mut stats, r.stats());
            }
            let leg3_dist = |local: VertexId| -> Dist {
                if local == g_local {
                    0
                } else {
                    leg3.as_ref().map_or(INF, |r| r.dist()[local as usize])
                }
            };
            // Best boundary exit: min over ∂q of d(s, b) + d_within(b, g),
            // ties toward the lowest skeleton node id (determinism).
            let mut via: Option<(Dist, VertexId, u32)> = None; // (dist, local, node)
            for &(local, node) in q_boundary {
                let (ds, dg) = (skel_dist[node as usize], leg3_dist(local));
                if ds == INF || dg == INF {
                    continue;
                }
                let total = ds.saturating_add(dg);
                if via.is_none_or(|(best, _, _)| total < best) {
                    via = Some((total, local, node));
                }
            }
            let best_via = via.map_or(INF, |(d, _, _)| d);
            let answer = direct.min(best_via);
            if answer == INF {
                continue; // unreachable: dist[g] stays INF, no parent
            }
            dist[g as usize] = answer;
            if let Some(par) = parent.as_mut() {
                let path = if direct <= best_via {
                    self.direct_path(p, &leg1, s_local, g_local)
                } else {
                    let (_, b2_local, b2_node) = via.expect("best_via finite implies a boundary");
                    self.stitched_path(
                        p,
                        &leg1,
                        s_local,
                        skel_parent.as_deref().expect("want_paths recorded skeleton parents"),
                        b2_node,
                        q,
                        leg3.as_ref(),
                        g_local,
                        b2_local,
                    )
                };
                self.commit_path(&path, answer, &mut dist, par);
            }
        }
        let mut row = SsspResult::new(dist, stats);
        row.parent = parent;
        row
    }

    /// The within-part path `s → g` from the first leg, in global ids.
    fn direct_path(
        &self,
        p: u32,
        leg1: &Option<QueryResponse>,
        s_local: VertexId,
        g_local: VertexId,
    ) -> Vec<VertexId> {
        let view = self.pg.part(p);
        if g_local == s_local {
            return vec![view.to_global(s_local)];
        }
        let path = leg1
            .as_ref()
            .and_then(|r| r.goal_path_to(g_local))
            .expect("direct candidate finite implies a recorded path");
        path.into_iter().map(|l| view.to_global(l)).collect()
    }

    /// Stitches the three-phase route `s → b1 ⇝ b2 → g` into one
    /// input-graph path: leg-1 part path, skeleton hops (within-part hops
    /// unrolled through the part's [`crate::ChainTable`], cut arcs passed
    /// through), and the reversed goal-side part path.
    #[allow(clippy::too_many_arguments)]
    fn stitched_path(
        &self,
        p: u32,
        leg1: &Option<QueryResponse>,
        s_local: VertexId,
        skel_parent: &[u32],
        b2_node: u32,
        q: u32,
        leg3: Option<&QueryResponse>,
        g_local: VertexId,
        b2_local: VertexId,
    ) -> Vec<VertexId> {
        let skel = self.pg.boundary();
        // Walk the skeleton tree from b2 back to its seed b1.
        let mut node_path = vec![b2_node];
        let mut cur = b2_node;
        while skel_parent[cur as usize] != cur {
            cur = skel_parent[cur as usize];
            node_path.push(cur);
        }
        node_path.reverse();
        let b1_node = node_path[0];
        let b1_global = skel.global_of_node(b1_node);
        let b1_local = self.pg.locate(b1_global).1;

        let mut path = self.direct_path(p, leg1, s_local, b1_local);
        for hop in node_path.windows(2) {
            let (ga, gb) = (skel.global_of_node(hop[0]), skel.global_of_node(hop[1]));
            let (pa, a_local) = self.pg.locate(ga);
            let (pb, b_local) = self.pg.locate(gb);
            if pa != pb {
                path.push(gb); // cut arc: a real input edge
            } else {
                // Within-part hop: unroll the recorded chain a → b.
                let view = self.pg.part(pa);
                let local_hops = skel.chains()[pa as usize]
                    .walk(a_local, b_local)
                    .expect("skeleton recorded a chain for every within-part edge");
                path.extend(local_hops.into_iter().skip(1).map(|l| view.to_global(l)));
            }
        }
        // Goal-side leg, reversed: the solve ran g → b2, the route runs
        // b2 → g (undirected edges reverse freely).
        if b2_local != g_local {
            let view = self.pg.part(q);
            let mut tail = leg3
                .and_then(|r| r.goal_path_to(b2_local))
                .expect("via candidate finite implies a recorded goal-side path");
            tail.reverse();
            path.extend(tail.into_iter().skip(1).map(|l| view.to_global(l)));
        }
        path
    }

    /// Writes an assembled shortest path into the row: prefix sums along
    /// the path are exact input-graph distances, so every vertex on it
    /// gets its exact distance and a telescoping parent link.
    fn commit_path(&self, path: &[VertexId], answer: Dist, dist: &mut [Dist], parent: &mut [u32]) {
        let mut running: Dist = 0;
        for hop in path.windows(2) {
            let w = self
                .graph
                .arc_weight(hop[0], hop[1])
                .expect("stitched paths ride input-graph edges only");
            running += w as Dist;
            dist[hop[1] as usize] = running;
            parent[hop[1] as usize] = hop[0];
        }
        debug_assert_eq!(running, answer, "stitched path must telescope to the answer");
    }
}

impl SsspSolver for ShardedSolver<'_> {
    fn name(&self) -> String {
        format!("sharded/{} parts over {}", self.pg.num_parts(), self.flat.name())
    }

    fn graph(&self) -> &CsrGraph {
        self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        match &query.shape {
            // Exact distances everywhere: one flat relaxation is the
            // right tool; the partition buys nothing.
            QueryShape::SingleSource { .. } => self.flat.execute(query, scratch),
            QueryShape::PointToPoint { source, goal } => {
                let (ps, _) = self.pg.locate(*source);
                let (pt, _) = self.pg.locate(*goal);
                if ps == pt {
                    // Same part: the flat goal-bounded solve is the
                    // cheaper exact certificate (see module docs).
                    self.flat.execute(query, scratch)
                } else {
                    let row = self.route_one_to_many(
                        *source,
                        std::slice::from_ref(goal),
                        query.want_paths,
                    );
                    QueryResponse::single(query.clone(), row)
                }
            }
            QueryShape::OneToMany { source, goals } => {
                if goals.is_empty() {
                    return self.flat.execute(query, scratch);
                }
                let row = self.route_one_to_many(*source, goals, query.want_paths);
                QueryResponse::single(query.clone(), row)
            }
            QueryShape::ManyToMany { sources, goals } => {
                // Rows fan over the worker pool; each row's solves draw
                // scratch from the pools of the parts they are pinned to.
                let rows = rs_par::worker_map(
                    sources.len(),
                    || (),
                    |_, i| self.route_one_to_many(sources[i], goals, query.want_paths),
                );
                QueryResponse::table(query.clone(), rows)
            }
        }
    }
}
