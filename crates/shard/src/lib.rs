//! Sharded graph serving: partition layer + boundary-skeleton routing.
//!
//! The paper's (k, ρ) preprocessing precomputes short-range distances so
//! the online solve takes few rounds; this crate scales the same idea
//! *out*. A [`Partitioner`] splits a [`rs_graph::CsrGraph`] into `P`
//! parts (BFS/geometric growth seeded round-robin, or a quad-tree
//! spatial split for coordinate graphs), and a boundary
//! [`SkeletonGraph`] precomputes **exact** distances between each part's
//! boundary vertices — built with the existing (k, ρ) ball/shortcut
//! machinery and the one-to-many query shape. A continent-scale
//! point-to-point query then becomes three small solves:
//!
//! ```text
//! intra-part (source part)  →  skeleton  →  intra-part (goal part)
//! ```
//!
//! [`ShardedSolver`] implements [`rs_core::SsspSolver`], so it slots
//! behind the `rs_serve` server loop, the query plane, and the batch
//! machinery unchanged. Answers are bit-identical to a flat solve:
//! distances are exact by the skeleton construction, and paths are
//! stitched back to input-graph edges through the per-part
//! [`ChainTable`]s (the `ShortcutExpander` discipline, one level up).
//!
//! The partition persists as an `RSP5` cache section
//! ([`PartitionedGraph::save`] / [`PartitionedGraph::load_or_build`]);
//! RSP4 preprocessing files (or anything else) at the cache path rebuild
//! transparently.
//!
//! ```
//! use rs_core::solver::{Query, SsspSolver};
//! use rs_core::SolverScratch;
//! use rs_graph::{gen, weights, WeightModel};
//! use rs_shard::{Partitioner, ShardedSolver};
//!
//! let g = weights::reweight(&gen::grid2d(12, 12), WeightModel::paper_weighted(), 7);
//! let pg = Partitioner::new(4).partition(&g);
//! let solver = ShardedSolver::new(&g, &pg);
//! let mut scratch = SolverScratch::new();
//! let resp = solver.execute(&Query::point_to_point(0, 143).with_paths(), &mut scratch);
//! let path = resp.goal_path().expect("grid is connected");
//! assert_eq!(path.first(), Some(&0));
//! assert_eq!(path.last(), Some(&143));
//! ```

pub mod partitioned;
pub mod partitioner;
pub mod sharded;
pub mod skeleton;

pub use partitioned::{PartitionConfig, PartitionedGraph, Partitioner};
pub use partitioner::{Coordinates, PartitionStrategy};
pub use sharded::ShardedSolver;
pub use skeleton::{ChainTable, SkeletonGraph, SkeletonSolve};
