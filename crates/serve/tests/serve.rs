//! Serving-layer acceptance suite.
//!
//! * cache hits are **bit-identical** to fresh solves, across every
//!   algorithm family × every query shape (including paths);
//! * epoch invalidation forces re-solves and can never serve a stale
//!   entry, even for solves in flight across the bump;
//! * capacity bounds hold (evictions, not growth);
//! * admission lanes reject-with-hint when saturated and isolate shapes;
//! * shutdown drains: every admitted request is answered;
//! * a seeded cached/uncached interleaving over mixed shapes matches
//!   fresh executions reply-for-reply (the property-style sweep).
//!
//! Runs in CI at `RS_NUM_THREADS=1` and nproc (the `serve` job): lane
//! workers are dedicated threads, so even a single-worker compute pool
//! must serve every test without deadlock.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

use rs_baselines::solver::BuildSolver;
use rs_core::{
    Algorithm, EngineKind, HeapKind, PreprocessConfig, Query, QueryResponse, Radii, SolverBuilder,
    SolverScratch, SsspSolver,
};
use rs_graph::{CsrGraph, WeightModel};
use rs_serve::{serve, LaneConfig, Reply, ResponseCache, ServerConfig, Shape};

fn weighted(seed: u64) -> CsrGraph {
    rs_graph::weights::reweight(&rs_graph::gen::grid2d(11, 12), WeightModel::paper_weighted(), seed)
}

/// A compact cross-section of the solver space: all three engines,
/// Dijkstra, ∆-stepping, Bellman–Ford, and a preprocessed build.
fn solvers(g: &CsrGraph) -> Vec<Box<dyn SsspSolver + '_>> {
    vec![
        SolverBuilder::new(g).build(),
        SolverBuilder::new(g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Bst,
                radii: Radii::Constant(3_000),
            })
            .build(),
        SolverBuilder::new(g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build(),
        SolverBuilder::new(g).algorithm(Algorithm::DeltaStepping { delta: 2_500 }).build(),
        SolverBuilder::new(g).algorithm(Algorithm::BellmanFord).build(),
        SolverBuilder::new(g).preprocess(PreprocessConfig::new(1, 12)).build(),
    ]
}

/// Every shape, paths on where goal-bounded (the stricter comparison).
fn shape_queries(n: u32) -> Vec<Query> {
    vec![
        Query::single_source(0),
        Query::point_to_point(1, n - 1).with_paths(),
        Query::one_to_many(2, [n - 1, 5, n / 2]).with_paths(),
        Query::many_to_many([0, n / 2], [3, n - 2]).with_paths(),
    ]
}

fn assert_payload_identical(name: &str, got: &QueryResponse, fresh: &QueryResponse, q: &Query) {
    assert_eq!(got.dist(), fresh.dist(), "{name}: {:?} dist diverged", q.shape);
    assert_eq!(
        got.distance_table(),
        fresh.distance_table(),
        "{name}: {:?} table diverged",
        q.shape
    );
    if q.want_paths && q.is_goal_bounded() {
        assert_eq!(got.goal_paths(), fresh.goal_paths(), "{name}: {:?} paths diverged", q.shape);
    }
}

/// Cache hits are bit-identical to fresh solves for every solver × shape.
/// The second submit of each query is sequenced after the first's reply,
/// so it deterministically hits the cache.
#[test]
fn cache_hits_bit_identical_across_solvers_and_shapes() {
    let g = weighted(3);
    let n = g.num_vertices() as u32;
    for solver in solvers(&g) {
        let name = solver.name();
        let (_, stats) = serve(&*solver, &ServerConfig::default(), |server| {
            for q in shape_queries(n) {
                let (tx, rx) = mpsc::channel();
                server.submit(q.clone(), tx.clone()).unwrap();
                let first = rx.recv().unwrap();
                assert!(!first.cached, "{name}: first submit must solve");
                server.submit(q.clone(), tx).unwrap();
                let second = rx.recv().unwrap();
                assert!(second.cached, "{name}: repeat submit must hit the cache");
                let fresh = solver.execute(&q, &mut SolverScratch::new());
                assert_payload_identical(&name, &second.response, &fresh, &q);
                assert_payload_identical(&name, &first.response, &fresh, &q);
            }
        });
        assert_eq!(stats.completed(), 8, "{name}");
        assert_eq!(stats.cache.hits, 4, "{name}");
        assert_eq!(
            stats.totals.solves - stats.cache.hits as usize,
            4,
            "{name}: only the four first-submits solved"
        );
        for shape in Shape::ALL {
            let lane = stats.lane(shape);
            assert_eq!(lane.completed, 2, "{name}: {:?}", shape);
            assert_eq!(lane.cache_hits, 1, "{name}: {:?}", shape);
            assert_eq!(lane.latency.count(), 2, "{name}: latency recorded per reply");
            assert!(lane.latency.p99() >= lane.latency.p50(), "{name}");
        }
    }
}

/// Permuted-goal requests share one cache entry: the canonical key at
/// work across batches, not just within one.
#[test]
fn permuted_goals_share_a_cache_entry() {
    let g = weighted(4);
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    let (_, stats) = serve(&*solver, &ServerConfig::default(), |server| {
        let (tx, rx) = mpsc::channel();
        server.submit(Query::one_to_many(0, [5, n - 1, 9]), tx.clone()).unwrap();
        let first = rx.recv().unwrap();
        server.submit(Query::one_to_many(0, [9, 5, n - 1, 5]), tx).unwrap();
        let second = rx.recv().unwrap();
        assert!(!first.cached);
        assert!(second.cached, "permuted + duplicated goals still hit");
        assert_eq!(first.response.dist(), second.response.dist());
    });
    assert_eq!(stats.cache.entries, 1);
    assert_eq!(stats.totals.unique_solves, 1);
}

/// Epoch invalidation: hits before, re-solve after, nothing stale ever
/// served.
#[test]
fn epoch_invalidation_forces_resolve() {
    let g = weighted(5);
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    let q = Query::point_to_point(0, n - 1);
    let (_, stats) = serve(&*solver, &ServerConfig::default(), |server| {
        let (tx, rx) = mpsc::channel();
        server.submit(q.clone(), tx.clone()).unwrap();
        assert!(!rx.recv().unwrap().cached);
        server.submit(q.clone(), tx.clone()).unwrap();
        assert!(rx.recv().unwrap().cached, "warm before the bump");

        let epoch = server.invalidate_epoch();
        assert_eq!(epoch, 1);
        server.submit(q.clone(), tx.clone()).unwrap();
        let after = rx.recv().unwrap();
        assert!(!after.cached, "post-invalidation request must re-solve");
        server.submit(q.clone(), tx).unwrap();
        assert!(rx.recv().unwrap().cached, "the re-solve re-populates the cache");
    });
    assert_eq!(stats.cache.epoch, 1);
    assert_eq!(stats.totals.unique_solves, 2, "one solve per epoch");
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(stats.cache.expired, 1, "the stale entry was purged lazily");
}

/// A solve that started before an invalidation can never publish a
/// servable entry after it: the direct [`ResponseCache`] contract the
/// server relies on for racing solves.
#[test]
fn in_flight_solve_across_invalidation_stays_stale() {
    let g = weighted(6);
    let solver = SolverBuilder::new(&g).build();
    let cache = ResponseCache::new(64);
    let q = Query::point_to_point(0, 7);
    let pre_epoch = cache.epoch();
    let response = Arc::new(solver.execute(&q, &mut SolverScratch::new()));
    // The "weight update" lands while the solve is in flight…
    cache.invalidate_epoch();
    // …so its insert (tagged with the pre-bump epoch) is unservable.
    cache.insert(&q, response, pre_epoch);
    assert!(cache.get(&q).is_none(), "stale-epoch entry must not serve");
    let stats = cache.stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.expired, 1);
}

/// Capacity bounds hold: a stream of distinct queries evicts instead of
/// growing, and the cache stays within its configured size.
#[test]
fn capacity_eviction_bounds_the_cache() {
    let g = weighted(7);
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    let capacity = 16; // one entry per shard: heavy eviction pressure
    let config = ServerConfig { cache_capacity: capacity, ..ServerConfig::default() };
    let distinct = 100u32;
    let (_, stats) = serve(&*solver, &config, |server| {
        let (tx, rx) = mpsc::channel();
        for i in 0..distinct {
            server.submit(Query::point_to_point(i % n, (i * 7 + 1) % n), tx.clone()).unwrap();
            rx.recv().unwrap();
        }
    });
    assert!(
        stats.cache.entries <= capacity,
        "cache grew past capacity: {} > {capacity}",
        stats.cache.entries
    );
    assert!(
        stats.cache.evictions >= (distinct as u64) - (capacity as u64),
        "pigeonhole: at least {} evictions, saw {}",
        distinct as u64 - capacity as u64,
        stats.cache.evictions
    );
}

/// `cache_capacity: 0` disables caching entirely: repeats re-solve.
#[test]
fn zero_capacity_disables_the_cache() {
    let g = weighted(8);
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    let config = ServerConfig { cache_capacity: 0, ..ServerConfig::default() };
    let (_, stats) = serve(&*solver, &config, |server| {
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            server.submit(Query::point_to_point(0, n - 1), tx.clone()).unwrap();
            let reply = rx.recv().unwrap();
            assert!(!reply.cached);
        }
    });
    assert_eq!(stats.cache.hits, 0);
    assert_eq!(stats.totals.solves, 3);
}

/// A solver that parks until released — deterministic lane saturation.
struct GatedSolver<'g> {
    inner: Box<dyn SsspSolver + 'g>,
    release: std::sync::Mutex<mpsc::Receiver<()>>,
}

impl SsspSolver for GatedSolver<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn graph(&self) -> &CsrGraph {
        self.inner.graph()
    }
    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> rs_core::QueryResponse {
        self.release
            .lock()
            .unwrap()
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("gate released");
        self.inner.execute(query, scratch)
    }
}

/// Saturating one lane rejects with a retry hint — and leaves the other
/// lanes serving (shape isolation, no head-of-line blocking).
#[test]
fn saturated_lane_rejects_with_hint_and_does_not_block_other_lanes() {
    let g = weighted(9);
    let n = g.num_vertices() as u32;
    let (gate_tx, gate_rx) = mpsc::channel();
    let solver = GatedSolver {
        inner: SolverBuilder::new(&g).build(),
        release: std::sync::Mutex::new(gate_rx),
    };
    // Tiny point-to-point lane; generous single-source lane. batch_max 1
    // so each gated request occupies the worker alone.
    let config = ServerConfig {
        point_to_point: LaneConfig::new(2, 1, 1),
        single_source: LaneConfig::new(8, 1, 1),
        ..ServerConfig::default()
    };
    let (_, stats) = serve(&solver, &config, |server| {
        let (tx, rx) = mpsc::channel::<Reply>();
        // Fill the p2p lane: 1 in service (typically) + 2 queued. With a
        // gated solver, by the 4th submit the queue must be full.
        let mut admitted = 0;
        let mut rejection = None;
        for i in 0..8u32 {
            match server.submit(Query::point_to_point(i % n, (i + 1) % n), tx.clone()) {
                Ok(_) => admitted += 1,
                Err(r) => {
                    rejection = Some(r);
                    break;
                }
            }
        }
        let rejection = rejection.expect("a 2-deep lane must saturate within 8 submits");
        assert_eq!(rejection.shape, Shape::PointToPoint);
        assert!(!rejection.closed);
        assert!(rejection.retry_after_us >= 100, "hint has a floor");
        assert!(admitted <= 3, "at most capacity + one-in-service admitted");

        // The sibling lane still admits while p2p is saturated. (Its
        // worker is gated too, but *admission* must be independent.)
        server.submit(Query::single_source(0), tx.clone()).unwrap();

        // Release everything: one gate token per admitted request.
        for _ in 0..admitted + 1 {
            gate_tx.send(()).unwrap();
        }
        let mut replies = 0;
        while replies < admitted + 1 {
            rx.recv_timeout(std::time::Duration::from_secs(30)).expect("drain");
            replies += 1;
        }
        admitted
    });
    assert!(stats.rejected() >= 1);
    assert_eq!(stats.lane(Shape::PointToPoint).rejected, stats.rejected());
    assert_eq!(stats.lane(Shape::SingleSource).rejected, 0);
    assert_eq!(stats.completed(), stats.lanes.iter().map(|l| l.admitted).sum::<u64>());
}

/// Submits after shutdown are refused as closed; everything admitted
/// before is still answered (drain-then-join).
#[test]
fn shutdown_drains_admitted_requests() {
    let g = weighted(10);
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    let (leaked, stats) = serve(&*solver, &ServerConfig::default(), |server| {
        let (tx, rx) = mpsc::channel();
        for i in 0..40u32 {
            server.submit(Query::point_to_point(i / n, i % n), tx.clone()).unwrap();
        }
        // Return without draining: serve() must close lanes, finish the
        // queued work, and join before handing back.
        (tx, rx)
    });
    let (tx, rx) = leaked;
    drop(tx);
    let drained = rx.iter().count();
    assert_eq!(drained, 40, "every admitted request answered during shutdown");
    assert_eq!(stats.completed(), 40);
}

/// SplitMix64 — seeded traffic without an RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Property-style sweep: a seeded interleaving of repeated and fresh
/// queries over all shapes, submitted concurrently with replies collected
/// by ticket — every reply, cached or not, must match a fresh execution
/// of its query, and the executed-solves ledger must show the cache
/// actually saved work.
#[test]
fn interleaved_cached_and_uncached_traffic_matches_fresh_executions() {
    let g = weighted(11);
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    for seed in [1u64, 22, 333] {
        let mut rng = seed;
        let mut history: Vec<Query> = Vec::new();
        let queries: Vec<Query> = (0..120)
            .map(|i| {
                let q = if i % 3 == 0 && !history.is_empty() {
                    history[(splitmix(&mut rng) as usize) % history.len()].clone()
                } else {
                    match splitmix(&mut rng) % 8 {
                        0 => Query::single_source(splitmix(&mut rng) as u32 % n),
                        1..=2 => Query::one_to_many(
                            splitmix(&mut rng) as u32 % n,
                            [splitmix(&mut rng) as u32 % n, splitmix(&mut rng) as u32 % n],
                        ),
                        3 => Query::many_to_many(
                            [splitmix(&mut rng) as u32 % n, splitmix(&mut rng) as u32 % n],
                            [splitmix(&mut rng) as u32 % n],
                        ),
                        _ => Query::point_to_point(
                            splitmix(&mut rng) as u32 % n,
                            splitmix(&mut rng) as u32 % n,
                        ),
                    }
                };
                history.push(q.clone());
                q
            })
            .collect();

        let (by_ticket, stats) = serve(&*solver, &ServerConfig::default(), |server| {
            let (tx, rx) = mpsc::channel::<Reply>();
            let mut tickets: HashMap<u64, Query> = HashMap::new();
            for q in &queries {
                loop {
                    match server.submit(q.clone(), tx.clone()) {
                        Ok(id) => {
                            tickets.insert(id, q.clone());
                            break;
                        }
                        Err(r) => std::thread::sleep(std::time::Duration::from_micros(
                            r.retry_after_us.min(500),
                        )),
                    }
                }
            }
            drop(tx);
            let replies: Vec<Reply> = rx.iter().collect();
            assert_eq!(replies.len(), queries.len(), "seed {seed}: all answered");
            (tickets, replies)
        });
        let (tickets, replies) = by_ticket;
        let mut cached = 0u64;
        for reply in &replies {
            let q = &tickets[&reply.id];
            let fresh = solver.execute(q, &mut SolverScratch::new());
            assert_payload_identical(&format!("seed {seed}"), &reply.response, &fresh, q);
            cached += u64::from(reply.cached);
        }
        assert!(cached > 0, "seed {seed}: repeat-heavy mix must produce cache hits");
        assert_eq!(stats.cache.hits, cached);
        assert!(
            stats.totals.executed_solves < queries.len(),
            "seed {seed}: cache + dedup must execute fewer solves ({}) than requests ({})",
            stats.totals.executed_solves,
            queries.len()
        );
        assert_eq!(stats.totals.solves, queries.len());
    }
}
