//! [`rs_shard::ShardedSolver`] behind the server loop, unchanged: the
//! sharded solver is just another [`SsspSolver`], so admission lanes,
//! the response cache, and shutdown-drain all work against it with no
//! serving-layer modifications. Replies must be bit-identical to direct
//! sharded executions, and cache hits bit-identical to fresh solves.

use std::sync::mpsc;

use rs_core::{Query, SolverScratch, SsspSolver};
use rs_graph::{CsrGraph, WeightModel};
use rs_serve::{serve, Reply, ServerConfig};
use rs_shard::{Partitioner, ShardedSolver};

fn weighted(seed: u64) -> CsrGraph {
    rs_graph::weights::reweight(&rs_graph::gen::grid2d(10, 13), WeightModel::paper_weighted(), seed)
}

/// Every query shape served through the loop answers exactly what a
/// direct sharded execution answers, and repeats hit the cache.
#[test]
fn sharded_solver_serves_every_shape_unchanged() {
    let g = weighted(41);
    let n = g.num_vertices() as u32;
    let pg = Partitioner::new(4).partition(&g);
    let solver = ShardedSolver::new(&g, &pg);

    let queries = vec![
        Query::single_source(0),
        Query::point_to_point(1, n - 1).with_paths(),
        Query::one_to_many(2, [n - 1, 5, n / 2, 2]).with_paths(),
        Query::many_to_many([0, n / 2, n - 1], [3, n - 2, 0]).with_paths(),
    ];

    // Direct reference executions, outside the server.
    let mut scratch = SolverScratch::new();
    let reference: Vec<_> = queries.iter().map(|q| solver.execute(q, &mut scratch)).collect();

    let (replies, stats) = serve(&solver, &ServerConfig::default(), |server| {
        let mut replies = Vec::new();
        for q in &queries {
            let (tx, rx) = mpsc::channel::<Reply>();
            server.submit(q.clone(), tx.clone()).unwrap();
            let first = rx.recv().unwrap();
            assert!(!first.cached, "first submit must solve");
            server.submit(q.clone(), tx).unwrap();
            let second = rx.recv().unwrap();
            assert!(second.cached, "repeat submit must hit the cache");
            assert_eq!(
                first.response.distance_table(),
                second.response.distance_table(),
                "cache hit must be bit-identical to the fresh solve"
            );
            replies.push(first);
        }
        replies
    });

    assert_eq!(stats.completed(), 2 * queries.len() as u64, "every submit answered");
    for (reply, reference) in replies.iter().zip(&reference) {
        assert_eq!(
            reply.response.distance_table(),
            reference.distance_table(),
            "served answer diverged from direct sharded execution"
        );
    }
}

/// Replies through the loop match direct execution distance-for-distance
/// and path-for-path (determinism holds across the lane-worker thread).
#[test]
fn served_replies_match_direct_execution() {
    let g = weighted(42);
    let n = g.num_vertices() as u32;
    let pg = Partitioner::new(3).partition(&g);
    let solver = ShardedSolver::new(&g, &pg);

    let queries = [
        Query::point_to_point(0, n - 1).with_paths(),
        Query::many_to_many([0, 7, n - 1], [1, n / 2, n - 1]).with_paths(),
    ];
    let mut scratch = SolverScratch::new();
    let reference: Vec<_> = queries.iter().map(|q| solver.execute(q, &mut scratch)).collect();

    let (replies, _) = serve(&solver, &ServerConfig::default(), |server| {
        queries
            .iter()
            .map(|q| {
                let (tx, rx) = mpsc::channel::<Reply>();
                server.submit(q.clone(), tx).unwrap();
                rx.recv().unwrap()
            })
            .collect::<Vec<_>>()
    });

    for (reply, reference) in replies.iter().zip(&reference) {
        assert_eq!(reply.response.distance_table(), reference.distance_table());
        for (row, _) in reference.query.sources().iter().enumerate() {
            for &goal in reference.query.goals() {
                assert_eq!(
                    reply.response.path_in_row(row, goal),
                    reference.path_in_row(row, goal),
                    "served path diverged from direct execution"
                );
            }
        }
    }
}
