//! Seeded schedule-fuzz stress tests for the serving substrate:
//! [`rs_serve::BoundedQueue`] and [`rs_serve::ResponseCache`].
//!
//! Same protocol as `crates/par/tests/schedule_fuzz.rs`: every scenario
//! is replayed across many seeds of the [`rs_par::model`] preemption
//! stream. With `--features schedule_fuzz` the yield points inside
//! `try_push`/`pop` and `get`/`insert`/`invalidate_epoch` stretch the
//! racy windows; without it they are no-ops and the tests run as plain
//! stress tests at a reduced seed count.
//!
//! Invariants shadow-checked here, per ISSUE:
//! - the queue never holds more than its capacity, and every admitted
//!   item is consumed exactly once (close-to-drain included);
//! - the cache never serves a response from an invalidated epoch: any
//!   response returned by `get` was inserted at an epoch within the
//!   window the reader observed around the lookup;
//! - cache residency never exceeds capacity under concurrent inserts.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use rs_core::{Query, QueryResponse, SsspResult, StepStats};
use rs_par::model;
use rs_par::model::ScenarioSpec;
use rs_serve::{BoundedQueue, PushError, ResponseCache};

/// The [`ScenarioSpec`] for a test in this file. Each scenario runs via
/// [`model::run_scenario`], so a failing seed leaves an `RSTRACE1` trace
/// behind and prints the `cargo xtask replay` command that re-executes
/// its exact schedule.
fn spec(scenario: &str) -> ScenarioSpec {
    ScenarioSpec::new(env!("CARGO_PKG_NAME"), file!(), scenario)
}

/// Full seed budget under `schedule_fuzz` (≥1000 schedules, per the
/// acceptance bar); trimmed when the yields are no-ops anyway.
const SEEDS: u64 = if cfg!(feature = "schedule_fuzz") { 1024 } else { 256 };

/// Queue depth stays within the bound and delivery is exactly-once:
/// two producers push tagged items (retrying on `Full`), two consumers
/// drain with blocking `pop`, and an observer polls `len()` the whole
/// time. Capacity 2 against 16 items keeps the queue saturated so the
/// reject/retry path is actually exercised.
#[test]
fn fuzz_queue_bound_and_exactly_once_delivery() {
    const PRODUCERS: usize = 2;
    const PER_PRODUCER: usize = 8;
    const CAPACITY: usize = 2;
    model::run_scenario(spec("fuzz_queue_bound_and_exactly_once_delivery"), SEEDS, |seed| {
        let q = BoundedQueue::<usize>::new(CAPACITY);
        let claims: Vec<AtomicUsize> =
            (0..PRODUCERS * PER_PRODUCER).map(|_| AtomicUsize::new(0)).collect();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Observer: the bound must hold at every instant, not just
            // at quiescence.
            s.spawn(|| {
                while !done.load(Ordering::SeqCst) {
                    let depth = q.len();
                    assert!(
                        depth <= CAPACITY,
                        "seed {seed}: queue depth {depth} exceeds bound {CAPACITY}"
                    );
                }
            });
            for _ in 0..2 {
                s.spawn(|| {
                    while let Some(id) = q.pop() {
                        claims[id].fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let q = &q;
                    s.spawn(move || {
                        for id in (p * PER_PRODUCER)..((p + 1) * PER_PRODUCER) {
                            let mut item = id;
                            loop {
                                match q.try_push(item) {
                                    Ok(()) => break,
                                    Err(PushError::Full(back)) => {
                                        item = back;
                                        std::thread::yield_now();
                                    }
                                    Err(PushError::Closed(_)) => {
                                        unreachable!("seed {seed}: queue closed mid-produce")
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().expect("producer must not panic");
            }
            // Close-to-drain: consumers must still deliver everything
            // admitted before observing `None`.
            q.close();
            done.store(true, Ordering::SeqCst);
        });
        for (id, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "seed {seed}: item {id} consumed {} times, want exactly 1",
                c.load(Ordering::SeqCst)
            );
        }
        assert!(q.is_empty(), "seed {seed}: close-to-drain left residue");
    });
}

/// A response whose payload encodes the epoch its "solve" started in, so
/// a reader can recover the writer-side epoch from whatever `get` hands
/// back and check it against the epoch window it observed.
fn response_tagged(query: &Query, epoch: u64) -> Arc<QueryResponse> {
    Arc::new(QueryResponse::single(
        query.clone(),
        SsspResult::new(vec![epoch], StepStats::default()),
    ))
}

/// The ISSUE's cache invariant — "no response served from an invalidated
/// epoch" — as a linearization check. A writer repeatedly captures the
/// epoch, inserts a response tagged with it, and bumps the epoch; a
/// reader brackets every `get` with two epoch reads `e0 ≤ e1` and
/// asserts any served response was solved at an epoch inside `[e0, e1]`.
/// In particular a response solved before an invalidation the reader has
/// already observed (`e_w < e0`) can never be served.
#[test]
fn fuzz_cache_never_serves_invalidated_epoch() {
    const WRITER_ROUNDS: u64 = 12;
    model::run_scenario(spec("fuzz_cache_never_serves_invalidated_epoch"), SEEDS, |seed| {
        let cache = ResponseCache::new(64);
        let q = Query::single_source(0);
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..WRITER_ROUNDS {
                    // The serving loop's protocol: read the epoch BEFORE
                    // the solve, tag the insert with it.
                    let e = cache.epoch();
                    cache.insert(&q, response_tagged(&q, e), e);
                    if i % 3 == (seed % 3) {
                        cache.invalidate_epoch();
                    }
                }
            });
            let mut served = 0u64;
            loop {
                let e0 = cache.epoch();
                if let Some(r) = cache.get(&q) {
                    let e1 = cache.epoch();
                    let ew = r.result().dist[0];
                    assert!(
                        e0 <= ew && ew <= e1,
                        "seed {seed}: served a response solved at epoch {ew} outside the \
                         observed window [{e0}, {e1}] — an invalidated epoch leaked through"
                    );
                    served += 1;
                }
                if writer.is_finished() {
                    break;
                }
            }
            writer.join().expect("writer must not panic");
            // After a final invalidation nothing may be served at all.
            let fresh = cache.invalidate_epoch();
            assert!(
                cache.get(&q).is_none(),
                "seed {seed}: entry served after invalidate_epoch -> {fresh}"
            );
            // Sanity: the loop above is not vacuous across the sweep.
            let _ = served;
        });
        assert!(
            cache.len() <= cache.capacity(),
            "seed {seed}: residency {} exceeds capacity {}",
            cache.len(),
            cache.capacity()
        );
    });
}

/// A stale insert — tagged with an epoch captured before an invalidation
/// — must be accepted but never served, even when the insert lands after
/// the bump (the in-flight-solve race `ResponseCache::epoch` documents).
#[test]
fn fuzz_inflight_solve_across_invalidation_never_served() {
    model::run_scenario(
        spec("fuzz_inflight_solve_across_invalidation_never_served"),
        SEEDS,
        |seed| {
            let cache = ResponseCache::new(16);
            let q = Query::single_source(1);
            let pre = cache.epoch();
            std::thread::scope(|s| {
                // In-flight "solve" racing the invalidation: the insert may
                // land before or after the bump depending on the schedule.
                let t = s.spawn(|| cache.insert(&q, response_tagged(&q, pre), pre));
                cache.invalidate_epoch();
                t.join().expect("insert must not panic");
            });
            // Whichever order the schedule produced, the pre-bump tag must
            // fail the epoch check now.
            assert!(
                cache.get(&q).is_none(),
                "seed {seed}: pre-invalidation solve served after the bump"
            );
        },
    );
}
