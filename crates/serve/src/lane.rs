//! Admission lanes: per-shape quotas, queues, and SLO telemetry.
//!
//! Mixed traffic has mixed service times — a point-to-point lookup is
//! microseconds on a warm scratch, a many-to-many table is a full fan-out
//! over the compute pool. One shared queue would let a burst of tables
//! starve the cheap interactive traffic behind them (head-of-line
//! blocking). The server therefore admits each request into the **lane**
//! for its query shape: an independently bounded queue drained by the
//! lane's own workers, so each shape's concurrency quota, queue depth,
//! and latency distribution are its own.

use rs_core::{BatchStats, Query, QueryShape};
use rs_ds::LatencyHistogram;

/// The four query shapes — the lane key. `repr` doubles as the lane
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Shape {
    /// Full SSSP from one source.
    SingleSource = 0,
    /// One source, one goal.
    PointToPoint = 1,
    /// One source, a goal list.
    OneToMany = 2,
    /// A sources × goals distance table.
    ManyToMany = 3,
}

impl Shape {
    /// Number of shapes / lanes.
    pub const COUNT: usize = 4;

    /// All shapes, in lane-index order.
    pub const ALL: [Shape; Shape::COUNT] =
        [Shape::SingleSource, Shape::PointToPoint, Shape::OneToMany, Shape::ManyToMany];

    /// The lane a query is admitted to.
    pub fn of(query: &Query) -> Shape {
        match &query.shape {
            QueryShape::SingleSource { .. } => Shape::SingleSource,
            QueryShape::PointToPoint { .. } => Shape::PointToPoint,
            QueryShape::OneToMany { .. } => Shape::OneToMany,
            QueryShape::ManyToMany { .. } => Shape::ManyToMany,
        }
    }

    /// Stable lowercase name (JSON keys, log lines).
    pub fn name(self) -> &'static str {
        match self {
            Shape::SingleSource => "single_source",
            Shape::PointToPoint => "point_to_point",
            Shape::OneToMany => "one_to_many",
            Shape::ManyToMany => "many_to_many",
        }
    }
}

/// Per-lane tuning: how much traffic a shape may buffer and how many
/// dedicated workers drain it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneConfig {
    /// Admission bound: requests buffered beyond the ones in service.
    /// A full queue rejects (with a retry hint) instead of growing.
    pub queue_depth: usize,
    /// Dedicated worker threads for this lane — the shape's concurrency
    /// quota. Workers run solves; the solves themselves still fan
    /// substeps over the shared compute pool.
    pub workers: usize,
    /// Micro-batch cap: a worker that wakes drains up to this many
    /// already-waiting requests and serves them as one batch (shared
    /// dedup, streamed delivery).
    pub batch_max: usize,
}

impl LaneConfig {
    /// `queue_depth` / `workers` / `batch_max` in one literal.
    pub const fn new(queue_depth: usize, workers: usize, batch_max: usize) -> Self {
        LaneConfig { queue_depth, workers, batch_max }
    }
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig::new(64, 1, 16)
    }
}

/// One lane's statistics at snapshot time ([`crate::ServerStats`]).
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Which lane.
    pub shape: Shape,
    /// The configuration it ran with.
    pub config: LaneConfig,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests turned away at admission (queue full or server shut
    /// down).
    pub rejected: u64,
    /// Requests answered (cache hits + executed).
    pub completed: u64,
    /// Of `completed`, how many were served from the response cache.
    pub cache_hits: u64,
    /// Submit→reply latency distribution, in microseconds.
    pub latency: LatencyHistogram,
    /// The lane's query-plane ledger: `solves` counts requests that went
    /// through the solver path *or* the cache (requested work);
    /// `executed_solves` counts physical solve rows — their gap is the
    /// work the cache and batch dedup saved.
    pub stats: BatchStats,
}

impl LaneSnapshot {
    /// p50 / p95 / p99 latency in microseconds (bucket resolution).
    pub fn latency_percentiles(&self) -> (u64, u64, u64) {
        (self.latency.p50(), self.latency.p95(), self.latency.p99())
    }
}
