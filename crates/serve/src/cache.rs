//! Epoch-versioned response cache keyed on canonical queries.
//!
//! The query plane already has a canonical form — [`Query::canonical`]
//! sorts and dedups goal lists so permuted requests share a batch dedup
//! slot — and the cache reuses it as the *cache key*: two requests that
//! would dedup inside one batch hit the same cache entry across batches.
//! `want_paths` / `want_trace` stay part of the key (they change what the
//! response carries), so a cached hit is always **bit-identical** to a
//! fresh solve of the same request.
//!
//! Entries carry the **epoch** current when their solve *started*. A
//! weight update calls [`ResponseCache::invalidate_epoch`], which bumps
//! the epoch counter in O(1); stale entries then fail the epoch check on
//! lookup and are removed lazily. This is the choke point a future
//! `update_weights` needs: results computed against the old graph can
//! never be served after the bump, including solves that were in flight
//! across it (they carry the pre-bump epoch).
//!
//! Capacity is enforced per shard with least-recently-used eviction (a
//! global atomic clock stamps each hit; the scan-min on eviction is over
//! one shard's entries, a few dozen at serving sizes). Shards keep lane
//! workers from serialising on one map lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rs_core::{Query, QueryResponse};

/// Number of independently locked map shards (power of two).
const SHARDS: usize = 16;

struct Entry {
    response: Arc<QueryResponse>,
    epoch: u64,
    last_used: u64,
}

/// Counter snapshot from [`ResponseCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (current epoch).
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Live entries removed to make room (capacity pressure).
    pub evictions: u64,
    /// Stale-epoch entries removed lazily on lookup or insert.
    pub expired: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The current epoch (starts at 0, bumped per invalidation).
    pub epoch: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Concurrent response cache: canonical-[`Query`] keys, epoch
/// invalidation, bounded capacity with LRU-ish eviction.
pub struct ResponseCache {
    shards: Vec<Mutex<HashMap<Query, Entry>>>,
    /// Max entries per shard (total capacity / SHARDS, at least 1).
    shard_capacity: usize,
    epoch: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
}

impl ResponseCache {
    /// A cache holding up to `capacity` responses (rounded up to a
    /// multiple of the shard count; `capacity == 0` still allows one
    /// entry per shard — use admission-side logic to disable caching).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            epoch: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Total entries the cache will hold.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// The current epoch. Capture it **before** starting a solve and pass
    /// it to [`ResponseCache::insert`], so a solve in flight across an
    /// invalidation can never publish a stale result.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn shard_of(&self, key: &Query) -> &Mutex<HashMap<Query, Entry>> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up the canonical form of `query`; returns the cached
    /// response only if its epoch is current. A stale entry is removed on
    /// the spot.
    pub fn get(&self, query: &Query) -> Option<Arc<QueryResponse>> {
        let key = query.canonical();
        let epoch = self.epoch();
        rs_par::model::yield_point();
        let mut shard = self.shard_of(&key).lock().unwrap();
        match shard.get_mut(&key) {
            Some(entry) if entry.epoch == epoch => {
                // ORDERING: clock and the hit/miss/expired counters are
                // advisory (LRU recency, telemetry); the entry data itself
                // is protected by the shard mutex, and staleness safety
                // rests on the SeqCst epoch read above, not on these.
                entry.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                let response = Arc::clone(&entry.response);
                drop(shard);
                // ORDERING: advisory telemetry (see above).
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(response)
            }
            Some(_) => {
                shard.remove(&key);
                drop(shard);
                // ORDERING: advisory telemetry (see the hit path above).
                self.expired.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(shard);
                // ORDERING: advisory telemetry (see the hit path above).
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `response` under the canonical form of `query`, tagged
    /// with `solve_epoch` (the epoch read before the solve started). A
    /// post-invalidation insert of a pre-invalidation solve is accepted
    /// but tagged stale, so it can never be served. When the shard is
    /// full, the least-recently-used entry makes room (stale entries are
    /// purged first and counted as expirations, not evictions).
    pub fn insert(&self, query: &Query, response: Arc<QueryResponse>, solve_epoch: u64) {
        let key = query.canonical();
        rs_par::model::yield_point();
        let mut shard = self.shard_of(&key).lock().unwrap();
        if !shard.contains_key(&key) && shard.len() >= self.shard_capacity {
            let epoch = self.epoch();
            let stale: Vec<Query> =
                shard.iter().filter(|(_, e)| e.epoch != epoch).map(|(k, _)| k.clone()).collect();
            if stale.is_empty() {
                if let Some(victim) =
                    shard.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
                {
                    shard.remove(&victim);
                    // ORDERING: advisory telemetry (see get).
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                // ORDERING: advisory telemetry (see get).
                self.expired.fetch_add(stale.len() as u64, Ordering::Relaxed);
                for k in stale {
                    shard.remove(&k);
                }
            }
        }
        // ORDERING: recency stamp only orders evictions approximately;
        // exactness is not part of the cache contract.
        let last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        rs_par::model::yield_point();
        shard.insert(key, Entry { response, epoch: solve_epoch, last_used });
    }

    /// Invalidates every cached response in O(1) by bumping the epoch:
    /// the hook a weight update calls. Stale entries are removed lazily.
    /// Returns the new epoch.
    pub fn invalidate_epoch(&self) -> u64 {
        rs_par::model::yield_point();
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Entries currently resident (including not-yet-purged stale ones).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ORDERING: advisory telemetry snapshot; counters are
            // independent and eventually consistent (see get).
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            entries: self.len(),
            epoch: self.epoch(),
        }
    }
}
