//! Epoch-versioned response cache keyed on canonical queries.
//!
//! The query plane already has a canonical form — [`Query::canonical`]
//! sorts and dedups goal lists so permuted requests share a batch dedup
//! slot — and the cache reuses it as the *cache key*: two requests that
//! would dedup inside one batch hit the same cache entry across batches.
//! `want_paths` / `want_trace` stay part of the key (they change what the
//! response carries), so a cached hit is always **bit-identical** to a
//! fresh solve of the same request.
//!
//! Entries carry the **epoch** current when their solve *started*. A
//! weight update calls [`ResponseCache::invalidate_epoch`], which bumps
//! the epoch counter in O(1); stale entries then fail the epoch check on
//! lookup and are removed lazily. This is the choke point a future
//! `update_weights` needs: results computed against the old graph can
//! never be served after the bump, including solves that were in flight
//! across it (they carry the pre-bump epoch).
//!
//! Capacity is enforced per shard with **segmented LRU** (two-segment,
//! scan-resistant): a new entry lands in a *probation* segment and is
//! promoted to a *protected* segment on its first re-hit; eviction takes
//! the probation LRU first, so a burst of one-shot queries (a cold scan)
//! churns only probation while the proven-hot working set rides it out
//! in protected. Protected overflow demotes its LRU back to probation
//! rather than evicting, giving hot entries a second chance. Recency is
//! tracked with intrusive-free queues of `(key, stamp)` records — an
//! entry's current stamp names its one live record; superseded records
//! are skipped lazily and compacted in bulk. Shards keep lane workers
//! from serialising on one map lock.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rs_core::{Query, QueryResponse};

/// Number of independently locked map shards (power of two).
const SHARDS: usize = 16;

/// Which SLRU segment an entry currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    /// First residence; evicted first. New inserts land here.
    Probation,
    /// Re-hit at least once; only demoted (never evicted) while any
    /// probation entry remains.
    Protected,
}

struct Entry {
    response: Arc<QueryResponse>,
    epoch: u64,
    segment: Segment,
    /// Names this entry's live recency record: a queue record
    /// `(key, stamp)` is current iff it matches the entry's segment and
    /// stamp. Touches re-stamp, turning older records into lazy tombstones.
    stamp: u64,
}

/// One lock's worth of cache: the entry map plus the two SLRU recency
/// queues. All methods run under the shard mutex.
#[derive(Default)]
struct Shard {
    map: HashMap<Query, Entry>,
    probation: VecDeque<(Query, u64)>,
    protected: VecDeque<(Query, u64)>,
    /// Live entries currently in [`Segment::Protected`].
    protected_len: usize,
}

impl Shard {
    fn record_is_live(&self, key: &Query, stamp: u64, segment: Segment) -> bool {
        self.map.get(key).is_some_and(|e| e.stamp == stamp && e.segment == segment)
    }

    /// Removes `key` keeping the protected count consistent. Queue
    /// records for it become tombstones, skipped lazily.
    fn remove_entry(&mut self, key: &Query) -> Option<Entry> {
        let entry = self.map.remove(key)?;
        if entry.segment == Segment::Protected {
            self.protected_len -= 1;
        }
        Some(entry)
    }

    /// Evicts one live entry: probation LRU first, protected LRU only
    /// when probation is empty. Returns false on an empty shard.
    fn evict_one(&mut self) -> bool {
        while let Some((key, stamp)) = self.probation.pop_front() {
            if self.record_is_live(&key, stamp, Segment::Probation) {
                self.map.remove(&key);
                return true;
            }
        }
        while let Some((key, stamp)) = self.protected.pop_front() {
            if self.record_is_live(&key, stamp, Segment::Protected) {
                self.map.remove(&key);
                self.protected_len -= 1;
                return true;
            }
        }
        false
    }

    /// Demotes protected LRUs to probation until the segment fits its
    /// cap — second chance instead of eviction.
    fn demote_overflow(&mut self, protected_cap: usize, clock: &AtomicU64) {
        while self.protected_len > protected_cap {
            let Some((key, stamp)) = self.protected.pop_front() else { break };
            if !self.record_is_live(&key, stamp, Segment::Protected) {
                continue;
            }
            // ORDERING: recency stamps are advisory (they only order
            // evictions approximately); entry data is mutex-protected.
            let demoted = clock.fetch_add(1, Ordering::Relaxed);
            if let Some(e) = self.map.get_mut(&key) {
                e.segment = Segment::Probation;
                e.stamp = demoted;
            }
            self.protected_len -= 1;
            self.probation.push_back((key, demoted));
        }
    }

    /// Drops superseded queue records once they dominate the live set,
    /// bounding queue memory at O(map size) amortised.
    fn maybe_compact(&mut self) {
        if self.probation.len() + self.protected.len() <= 8 * self.map.len() + 32 {
            return;
        }
        let map = &self.map;
        self.probation.retain(|(k, s)| {
            map.get(k).is_some_and(|e| e.stamp == *s && e.segment == Segment::Probation)
        });
        self.protected.retain(|(k, s)| {
            map.get(k).is_some_and(|e| e.stamp == *s && e.segment == Segment::Protected)
        });
    }
}

/// Counter snapshot from [`ResponseCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (current epoch).
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Live entries removed to make room (capacity pressure).
    pub evictions: u64,
    /// Stale-epoch entries removed lazily on lookup or insert.
    pub expired: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The current epoch (starts at 0, bumped per invalidation).
    pub epoch: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Concurrent response cache: canonical-[`Query`] keys, epoch
/// invalidation, bounded capacity with scan-resistant segmented-LRU
/// eviction.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard (total capacity / SHARDS, at least 1).
    shard_capacity: usize,
    /// Max protected entries per shard (the rest stays probation so a
    /// scan always has something cheaper to evict than the hot set).
    protected_cap: usize,
    epoch: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
}

impl ResponseCache {
    /// A cache holding up to `capacity` responses (rounded up to a
    /// multiple of the shard count; `capacity == 0` still allows one
    /// entry per shard — use admission-side logic to disable caching).
    pub fn new(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(SHARDS).max(1);
        ResponseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            // 4/5 protected is the classic SLRU split; a 1-entry shard
            // gets cap 0 and degenerates to plain LRU.
            protected_cap: shard_capacity * 4 / 5,
            epoch: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Total entries the cache will hold.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// The current epoch. Capture it **before** starting a solve and pass
    /// it to [`ResponseCache::insert`], so a solve in flight across an
    /// invalidation can never publish a stale result.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn shard_of(&self, key: &Query) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up the canonical form of `query`; returns the cached
    /// response only if its epoch is current. A stale entry is removed on
    /// the spot. A hit touches the entry: probation promotes to
    /// protected (demoting the protected LRU on overflow), protected
    /// refreshes its recency.
    pub fn get(&self, query: &Query) -> Option<Arc<QueryResponse>> {
        let key = query.canonical();
        let epoch = self.epoch();
        rs_par::model::yield_point();
        let mut shard = self.shard_of(&key).lock().unwrap();
        let touched = match shard.map.get_mut(&key) {
            Some(entry) if entry.epoch == epoch => {
                // ORDERING: clock and the hit/miss/expired counters are
                // advisory (SLRU recency, telemetry); the entry data itself
                // is protected by the shard mutex, and staleness safety
                // rests on the SeqCst epoch read above, not on these.
                let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                entry.stamp = stamp;
                let promoted = entry.segment == Segment::Probation && self.protected_cap > 0;
                if promoted {
                    entry.segment = Segment::Protected;
                }
                Some((Arc::clone(&entry.response), entry.segment, stamp, promoted))
            }
            _ => None,
        };
        match touched {
            Some((response, segment, stamp, promoted)) => {
                match segment {
                    Segment::Protected => {
                        shard.protected.push_back((key, stamp));
                        if promoted {
                            shard.protected_len += 1;
                            shard.demote_overflow(self.protected_cap, &self.clock);
                        }
                    }
                    Segment::Probation => shard.probation.push_back((key, stamp)),
                }
                shard.maybe_compact();
                drop(shard);
                // ORDERING: advisory telemetry (see above).
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(response)
            }
            None => {
                let expired = shard.remove_entry(&key).is_some();
                drop(shard);
                if expired {
                    // ORDERING: advisory telemetry (see the hit path above).
                    self.expired.fetch_add(1, Ordering::Relaxed);
                }
                // ORDERING: advisory telemetry (see the hit path above).
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `response` under the canonical form of `query`, tagged
    /// with `solve_epoch` (the epoch read before the solve started). A
    /// post-invalidation insert of a pre-invalidation solve is accepted
    /// but tagged stale, so it can never be served. A new key enters the
    /// probation segment; a refresh of a resident key keeps its segment.
    /// When the shard is full, the probation LRU makes room (stale
    /// entries are purged first and counted as expirations, not
    /// evictions; the protected segment is only tapped once probation is
    /// empty).
    pub fn insert(&self, query: &Query, response: Arc<QueryResponse>, solve_epoch: u64) {
        let key = query.canonical();
        rs_par::model::yield_point();
        let mut shard = self.shard_of(&key).lock().unwrap();
        if !shard.map.contains_key(&key) && shard.map.len() >= self.shard_capacity {
            let epoch = self.epoch();
            let stale: Vec<Query> = shard
                .map
                .iter()
                .filter(|(_, e)| e.epoch != epoch)
                .map(|(k, _)| k.clone())
                .collect();
            if stale.is_empty() {
                while shard.map.len() >= self.shard_capacity {
                    if !shard.evict_one() {
                        break;
                    }
                    // ORDERING: advisory telemetry (see get).
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                // ORDERING: advisory telemetry (see get).
                self.expired.fetch_add(stale.len() as u64, Ordering::Relaxed);
                for k in stale {
                    shard.remove_entry(&k);
                }
            }
        }
        // ORDERING: recency stamp only orders evictions approximately;
        // exactness is not part of the cache contract.
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        rs_par::model::yield_point();
        let segment = match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.response = response;
                entry.epoch = solve_epoch;
                entry.stamp = stamp;
                entry.segment
            }
            None => {
                shard.map.insert(
                    key.clone(),
                    Entry { response, epoch: solve_epoch, segment: Segment::Probation, stamp },
                );
                Segment::Probation
            }
        };
        match segment {
            Segment::Probation => shard.probation.push_back((key, stamp)),
            Segment::Protected => shard.protected.push_back((key, stamp)),
        }
        shard.maybe_compact();
    }

    /// Invalidates every cached response in O(1) by bumping the epoch:
    /// the hook a weight update calls. Stale entries are removed lazily.
    /// Returns the new epoch.
    pub fn invalidate_epoch(&self) -> u64 {
        rs_par::model::yield_point();
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Entries currently resident (including not-yet-purged stale ones).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ORDERING: advisory telemetry snapshot; counters are
            // independent and eventually consistent (see get).
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            entries: self.len(),
            epoch: self.epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::{SsspResult, StepStats};

    fn response(q: &Query) -> Arc<QueryResponse> {
        Arc::new(QueryResponse::single(q.clone(), SsspResult::new(vec![0], StepStats::default())))
    }

    /// Distinct canonical keys: point-to-point pairs never collide for
    /// distinct `i`.
    fn key(i: u32) -> Query {
        Query::point_to_point(i, i + 1)
    }

    /// The headline SLRU property at serving scale: a hot working set
    /// that was re-hit (promoted to protected) survives a cold scan of
    /// twice the cache's capacity in one-shot queries, and residency
    /// never exceeds capacity.
    #[test]
    fn scan_resistance_at_100k_entries() {
        const CAPACITY: usize = 100_000;
        const HOT: u32 = 2_000;
        const SCAN: u32 = 200_000;
        let cache = ResponseCache::new(CAPACITY);
        let epoch = cache.epoch();

        // Establish the hot set and prove it hot (one re-hit promotes).
        for i in 0..HOT {
            let q = key(i);
            cache.insert(&q, response(&q), epoch);
        }
        for i in 0..HOT {
            assert!(cache.get(&key(i)).is_some(), "hot entry {i} must be resident");
        }

        // Cold scan: 2× capacity of one-shot keys, never re-touched.
        for i in 0..SCAN {
            let q = key(HOT + i);
            cache.insert(&q, response(&q), epoch);
            debug_assert!(cache.len() <= cache.capacity());
        }

        assert!(cache.len() <= cache.capacity(), "residency bound violated");
        let survivors = (0..HOT).filter(|&i| cache.get(&key(i)).is_some()).count();
        assert_eq!(
            survivors, HOT as usize,
            "protected hot set must ride out a cold scan untouched"
        );
        let stats = cache.stats();
        assert!(stats.evictions > 0, "the scan must have evicted probation entries");
        assert_eq!(stats.expired, 0, "no epoch churn in this test");
    }

    /// Protected overflow demotes (second chance) instead of evicting:
    /// with a protected segment smaller than the promoted set, old hot
    /// entries fall back to probation and only then age out.
    #[test]
    fn protected_overflow_demotes_to_probation() {
        // One shard's worth: capacity 16 → shard sizes vary, so drive a
        // single logical shard by using the full cache and checking only
        // aggregate behaviour.
        let cache = ResponseCache::new(16 * SHARDS);
        let epoch = cache.epoch();
        // Promote 20× protected_cap entries; demotion must keep the
        // protected count bounded (indirectly: everything stays
        // resident until capacity pressure, nothing panics, and the
        // cache still answers).
        for i in 0..(20 * 16) as u32 {
            let q = key(i);
            cache.insert(&q, response(&q), epoch);
            assert!(cache.get(&q).is_some(), "immediate re-hit must succeed");
        }
        assert!(cache.len() <= cache.capacity());
        let stats = cache.stats();
        assert_eq!(stats.hits, 20 * 16);
    }

    /// A refresh of a resident key keeps its segment; a stale-epoch
    /// entry is purged before any live eviction happens.
    #[test]
    fn stale_entries_expire_before_live_evictions() {
        let cache = ResponseCache::new(1); // one entry per shard
        let old = cache.epoch();
        // Fill a few shards at the old epoch.
        for i in 0..64 {
            let q = key(i);
            cache.insert(&q, response(&q), old);
        }
        let new = cache.invalidate_epoch();
        assert_eq!(new, old + 1);
        // Inserting at the new epoch purges stale co-residents instead
        // of evicting them; once a shard holds only new-epoch entries,
        // further room-making is ordinary eviction (so compare deltas
        // and bound the sum, rather than expecting zero evictions).
        let before = cache.stats();
        for i in 64..128 {
            let q = key(i);
            cache.insert(&q, response(&q), new);
        }
        let stats = cache.stats();
        let expired_delta = stats.expired - before.expired;
        let evictions_delta = stats.evictions - before.evictions;
        assert!(expired_delta > 0, "full shards with stale residents must purge, not evict");
        assert!(
            expired_delta + evictions_delta <= 64,
            "each insert makes room at most once (expired {expired_delta} + evicted {evictions_delta})"
        );
        assert!(cache.len() <= cache.capacity());
        // Old-epoch entries can never be served.
        for i in 0..64 {
            assert!(cache.get(&key(i)).is_none());
        }
    }
}
