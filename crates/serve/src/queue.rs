//! Bounded MPMC queue — the admission buffer behind each lane.
//!
//! Admission is **reject-on-full**, not block-on-full: a saturated lane
//! must answer "come back later" immediately (with a retry hint) rather
//! than stall the front-end, so the producer side is [`BoundedQueue::
//! try_push`] only. The consumer side (lane workers) blocks on
//! [`BoundedQueue::pop`] until work arrives or the queue is closed, and
//! micro-batches with [`BoundedQueue::try_pop`].
//!
//! `std::sync::mpsc` cannot play this role: its receiver is single-
//! consumer (a lane has several workers) and its bounded sender blocks
//! rather than failing fast. A `Mutex<VecDeque>` + condvar is exactly
//! enough — admission queues are short by design (that is the point),
//! so the critical sections are a push/pop each.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] returned the item instead of queueing
/// it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back. Callers turn
    /// this into an admission rejection with a retry hint.
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with fail-fast push,
/// blocking pop, and close-to-drain shutdown.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` buffered items (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or hands it straight back when the queue is full
    /// (admission rejection) or closed (shutdown). Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        rs_par::model::yield_point();
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        rs_par::model::yield_point();
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` only when the queue is closed **and**
    /// drained — a consumer loop `while let Some(x) = q.pop()` therefore
    /// processes every admitted item before exiting.
    pub fn pop(&self) -> Option<T> {
        rs_par::model::yield_point();
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Dequeues the oldest item if one is buffered; never blocks. Used by
    /// lane workers to micro-batch whatever is already waiting behind the
    /// request that woke them.
    pub fn try_pop(&self) -> Option<T> {
        rs_par::model::yield_point();
        self.inner.lock().unwrap().items.pop_front()
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and blocked consumers drain the remaining items then observe
    /// `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_with_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert_eq!(q.try_push('c'), Err(PushError::Full('c')), "item handed back");
        q.try_pop().unwrap();
        q.try_push('c').unwrap();
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1), "admitted items survive close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed");
        assert!(q.is_closed());
        q.close(); // idempotent
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = BoundedQueue::new(2);
        let got = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                while let Some(v) = q.pop() {
                    got.fetch_add(v, Ordering::SeqCst);
                }
            });
            s.spawn(|| {
                while let Some(v) = q.pop() {
                    got.fetch_add(v, Ordering::SeqCst);
                }
            });
            for _ in 0..50 {
                let mut v = 1;
                loop {
                    match q.try_push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                        Err(PushError::Closed(_)) => unreachable!(),
                    }
                }
            }
            q.close();
        });
        assert_eq!(got.load(Ordering::SeqCst), 50, "every admitted item consumed once");
    }

    #[test]
    fn capacity_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }
}
