//! The server loop: admission → lanes → solver → reply.
//!
//! Front-end and solver are decoupled: [`Server::submit`] does nothing
//! but a cache-aware admission push (microseconds, never a solve), and
//! lane workers — dedicated threads from [`rs_par::scope`], *not* pool
//! workers — drain their lane's queue, micro-batch what is waiting,
//! serve cache hits, and run the misses through the query plane
//! ([`QueryBatch::stream_bounded`] for a batch, a direct warm-scratch
//! `execute` for a single miss). Replies flow to the caller over the
//! `mpsc::Sender` each request carries.
//!
//! Every buffer on the path is bounded: the admission queues reject when
//! full (retry hint attached), the batch response channel blocks solver
//! workers when the reply path falls behind, and the reply channel's
//! bound (if the caller picks a `sync_channel`) back-pressures the lane
//! workers themselves. Nothing in the loop can accumulate unboundedly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rs_core::{BatchStats, Query, QueryBatch, QueryResponse, SolverScratch, SsspSolver};
use rs_ds::LatencyHistogram;

use crate::cache::{CacheStats, ResponseCache};
use crate::lane::{LaneConfig, LaneSnapshot, Shape};
use crate::queue::{BoundedQueue, PushError};

/// Server tuning: one [`LaneConfig`] per shape plus the shared cache and
/// stream bounds. All fields are public — construct with
/// `ServerConfig { cache_capacity: 0, ..Default::default() }` style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Lane for full single-source solves (analytics traffic).
    pub single_source: LaneConfig,
    /// Lane for point-to-point lookups (interactive traffic).
    pub point_to_point: LaneConfig,
    /// Lane for one-to-many fan-outs.
    pub one_to_many: LaneConfig,
    /// Lane for many-to-many tables (the expensive shape: few workers,
    /// short queue, so tables cannot crowd out the rest).
    pub many_to_many: LaneConfig,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Response-channel bound for batched misses; 0 means
    /// [`QueryBatch::default_stream_capacity`].
    pub stream_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            single_source: LaneConfig::new(64, 1, 8),
            point_to_point: LaneConfig::new(256, 2, 32),
            one_to_many: LaneConfig::new(128, 2, 16),
            many_to_many: LaneConfig::new(16, 1, 2),
            cache_capacity: 1024,
            stream_capacity: 0,
        }
    }
}

impl ServerConfig {
    /// The lane configuration for `shape`.
    pub fn lane(&self, shape: Shape) -> LaneConfig {
        match shape {
            Shape::SingleSource => self.single_source,
            Shape::PointToPoint => self.point_to_point,
            Shape::OneToMany => self.one_to_many,
            Shape::ManyToMany => self.many_to_many,
        }
    }

    /// Same configuration for every lane — handy in tests.
    pub fn uniform(lane: LaneConfig, cache_capacity: usize) -> Self {
        ServerConfig {
            single_source: lane,
            point_to_point: lane,
            one_to_many: lane,
            many_to_many: lane,
            cache_capacity,
            stream_capacity: 0,
        }
    }
}

/// One answered request, delivered on the `Sender` the submit carried.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The ticket [`Server::submit`] returned.
    pub id: u64,
    /// The response. Cache hits share one `Arc` across all their
    /// requesters; the carried [`QueryResponse::query`] is then the
    /// *canonical* form of the request (sorted, deduplicated goals) —
    /// distances, tables, and paths are identical to a fresh solve.
    pub response: Arc<QueryResponse>,
    /// True when served from the response cache (no solve ran).
    pub cached: bool,
    /// Submit→reply latency in microseconds.
    pub latency_us: u64,
}

/// Admission refusal: the lane's queue was full (or the server had shut
/// down). Carries a retry hint derived from the lane's observed service
/// rate.
#[derive(Debug, Clone, Copy)]
pub struct Rejection {
    /// The saturated lane.
    pub shape: Shape,
    /// True when refused because the server is shutting down (retrying
    /// is then pointless).
    pub closed: bool,
    /// Requests buffered in the lane at refusal time.
    pub queued: usize,
    /// Suggested back-off before retrying, in microseconds: the queue it
    /// would wait behind divided by the lane's *observed drain rate* over
    /// a recent window of completion timestamps, clamped to
    /// [[`RETRY_MIN_US`], [`RETRY_MAX_US`]]. A lane with too few recent
    /// completions to estimate a rate (idle, or just started) hands out
    /// the clamp floor — retry soon, rather than a hint derived from
    /// stale latency quantiles.
    pub retry_after_us: u64,
}

/// Completion timestamps retained per lane for the drain-rate estimate.
const RATE_WINDOW: usize = 128;
/// Retry-hint clamp floor (µs): also the idle-lane answer.
const RETRY_MIN_US: u64 = 100;
/// Retry-hint clamp ceiling (µs): half a second — beyond that the caller
/// should be load-shedding, not sleeping on a hint.
const RETRY_MAX_US: u64 = 500_000;

/// Derives a [`Rejection::retry_after_us`] hint from observed lane
/// throughput: `completions` holds the wall-clock times of the lane's
/// most recent completions (oldest first, at most [`RATE_WINDOW`]); the
/// average inter-completion gap over the window ending at `now` is the
/// lane's current per-request drain time, and the hint is that gap times
/// the `queued` requests a retry would wait behind (plus itself).
/// Measuring the window against `now` (not the last completion) keeps the
/// estimate honest for a lane that *was* fast and has stalled: the gap
/// grows with the stall. Pure so the idle/saturated cases unit-test
/// without a running server.
fn retry_hint(queued: usize, completions: &VecDeque<Instant>, now: Instant) -> u64 {
    if completions.len() < 2 {
        return RETRY_MIN_US;
    }
    let span_us = completions
        .front()
        .map(|oldest| now.saturating_duration_since(*oldest).as_micros() as u64)
        .unwrap_or(0);
    let per_request_us = span_us / completions.len() as u64;
    per_request_us.saturating_mul(queued as u64 + 1).clamp(RETRY_MIN_US, RETRY_MAX_US)
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.closed {
            write!(f, "{} lane closed (server shutting down)", self.shape.name())
        } else {
            write!(
                f,
                "{} lane saturated ({} queued); retry in ~{}µs",
                self.shape.name(),
                self.queued,
                self.retry_after_us
            )
        }
    }
}

/// A submitted request, queued in its lane.
struct Request {
    id: u64,
    query: Query,
    submitted: Instant,
    reply: Sender<Reply>,
}

/// Mutable per-lane telemetry (one short lock per reply).
#[derive(Default)]
struct Telemetry {
    latency: LatencyHistogram,
    stats: BatchStats,
    /// Wall-clock completion times, oldest first, capped at
    /// [`RATE_WINDOW`] — the drain-rate window behind [`retry_hint`].
    completions: VecDeque<Instant>,
}

struct Lane {
    shape: Shape,
    config: LaneConfig,
    queue: BoundedQueue<Request>,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    telemetry: Mutex<Telemetry>,
}

impl Lane {
    fn new(shape: Shape, config: LaneConfig) -> Self {
        Lane {
            shape,
            config,
            queue: BoundedQueue::new(config.queue_depth),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            telemetry: Mutex::new(Telemetry::default()),
        }
    }

    fn snapshot(&self) -> LaneSnapshot {
        let telemetry = self.telemetry.lock().unwrap();
        LaneSnapshot {
            shape: self.shape,
            config: self.config,
            admitted: self.admitted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
            latency: telemetry.latency.clone(),
            stats: telemetry.stats.clone(),
        }
    }
}

/// Whole-server statistics snapshot ([`Server::stats`]): the per-lane
/// ledgers plus cache counters and the rolled-up [`BatchStats`].
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// One snapshot per lane, in [`Shape::ALL`] order.
    pub lanes: Vec<LaneSnapshot>,
    /// Response-cache counters.
    pub cache: CacheStats,
    /// All lanes' query-plane ledgers merged: `totals.solves` is every
    /// request answered, `totals.executed_solves` every physical solve
    /// row — the gap is what caching + dedup saved.
    pub totals: BatchStats,
}

impl ServerStats {
    /// The snapshot for one lane.
    pub fn lane(&self, shape: Shape) -> &LaneSnapshot {
        &self.lanes[shape as usize]
    }

    /// Requests answered across all lanes.
    pub fn completed(&self) -> u64 {
        self.lanes.iter().map(|l| l.completed).sum()
    }

    /// Requests refused at admission across all lanes.
    pub fn rejected(&self) -> u64 {
        self.lanes.iter().map(|l| l.rejected).sum()
    }

    /// Compact human-readable rendering (the `rs-serve` report).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "lane            admitted rejected completed cache_hits     p50     p95     p99 (µs)\n",
        );
        for lane in &self.lanes {
            let (p50, p95, p99) = lane.latency_percentiles();
            out.push_str(&format!(
                "{:<15} {:>8} {:>8} {:>9} {:>10} {:>7} {:>7} {:>7}\n",
                lane.shape.name(),
                lane.admitted,
                lane.rejected,
                lane.completed,
                lane.cache_hits,
                p50,
                p95,
                p99
            ));
        }
        out.push_str(&format!(
            "cache: {} hits / {} misses (rate {:.3}), {} evictions, {} entries, epoch {}\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.evictions,
            self.cache.entries,
            self.cache.epoch
        ));
        out.push_str(&format!(
            "solves: {} requested, {} executed, {} scratch-warm, {} cold\n",
            self.totals.solves,
            self.totals.executed_solves,
            self.totals.scratch_reuses,
            self.totals.cold_solves
        ));
        out
    }
}

/// The server handle [`serve`] passes to its caller closure: submit
/// requests, invalidate the cache, snapshot statistics. All methods are
/// `&self` — share it freely across front-end threads.
pub struct Server<'s> {
    solver: &'s dyn SsspSolver,
    lanes: Vec<Lane>,
    cache: ResponseCache,
    cache_enabled: bool,
    stream_capacity: usize,
    next_id: AtomicU64,
}

impl<'s> Server<'s> {
    fn new(solver: &'s dyn SsspSolver, config: &ServerConfig) -> Self {
        Server {
            solver,
            lanes: Shape::ALL.iter().map(|&s| Lane::new(s, config.lane(s))).collect(),
            cache: ResponseCache::new(config.cache_capacity.max(1)),
            cache_enabled: config.cache_capacity > 0,
            stream_capacity: if config.stream_capacity == 0 {
                QueryBatch::default_stream_capacity()
            } else {
                config.stream_capacity
            },
            next_id: AtomicU64::new(0),
        }
    }

    /// Admits `query` into its shape's lane. On success the returned
    /// ticket matches the eventual [`Reply::id`] on `reply`; on refusal
    /// the [`Rejection`] says when to retry. Never solves, never blocks.
    pub fn submit(&self, query: Query, reply: Sender<Reply>) -> Result<u64, Rejection> {
        let lane = &self.lanes[Shape::of(&query) as usize];
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let request = Request { id, query, submitted: Instant::now(), reply };
        match lane.queue.try_push(request) {
            Ok(()) => {
                lane.admitted.fetch_add(1, Ordering::SeqCst);
                Ok(id)
            }
            Err(err) => {
                lane.rejected.fetch_add(1, Ordering::SeqCst);
                let closed = matches!(err, PushError::Closed(_));
                let queued = lane.queue.len();
                let retry_after_us =
                    retry_hint(queued, &lane.telemetry.lock().unwrap().completions, Instant::now());
                Err(Rejection { shape: lane.shape, closed, queued, retry_after_us })
            }
        }
    }

    /// Invalidates every cached response (O(1) epoch bump) — the hook a
    /// weight update calls before swapping graph data. Returns the new
    /// epoch.
    pub fn invalidate_epoch(&self) -> u64 {
        self.cache.invalidate_epoch()
    }

    /// The response cache (counters, epoch).
    pub fn cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// A consistent-enough statistics snapshot (each lane's ledger is
    /// internally consistent; lanes are read in sequence).
    pub fn stats(&self) -> ServerStats {
        let lanes: Vec<LaneSnapshot> = self.lanes.iter().map(Lane::snapshot).collect();
        let mut totals = BatchStats::default();
        for lane in &lanes {
            totals.merge(&lane.stats);
        }
        ServerStats { lanes, cache: self.cache.stats(), totals }
    }

    /// Closes every lane: subsequent submits are refused, queued
    /// requests drain, workers exit. Called by [`serve`] when the caller
    /// closure returns.
    fn shutdown(&self) {
        for lane in &self.lanes {
            lane.queue.close();
        }
    }

    /// One lane worker: blocking pop, micro-batch drain, serve.
    fn run_worker(&self, lane: &Lane) {
        let mut scratch = SolverScratch::new();
        self.solver.warm_scratch(&mut scratch);
        while let Some(first) = lane.queue.pop() {
            let mut requests = vec![first];
            while requests.len() < lane.config.batch_max.max(1) {
                match lane.queue.try_pop() {
                    Some(r) => requests.push(r),
                    None => break,
                }
            }
            self.process(lane, requests, &mut scratch);
        }
    }

    /// Serves one micro-batch: cache pass, then solve the misses.
    fn process(&self, lane: &Lane, requests: Vec<Request>, scratch: &mut SolverScratch) {
        let mut misses = Vec::with_capacity(requests.len());
        for request in requests {
            match self.cache_enabled.then(|| self.cache.get(&request.query)).flatten() {
                Some(response) => {
                    {
                        let mut telemetry = lane.telemetry.lock().unwrap();
                        telemetry.stats.solves += 1;
                        telemetry.stats.absorb_delivered(&response);
                    }
                    lane.cache_hits.fetch_add(1, Ordering::SeqCst);
                    self.finish(lane, request, response, true);
                }
                None => misses.push(request),
            }
        }
        if misses.is_empty() {
            return;
        }
        // The epoch is read before solving: an invalidation racing these
        // solves tags their cache entries stale, so they can never be
        // served after the bump.
        let epoch = self.cache.epoch();
        if misses.len() == 1 {
            // Single miss: solve directly on this worker's long-lived
            // scratch — no batch machinery, no channel.
            let request = misses.pop().expect("one miss");
            let response = Arc::new(self.solver.execute(&request.query, scratch));
            if self.cache_enabled {
                self.cache.insert(&request.query, Arc::clone(&response), epoch);
            }
            {
                let mut telemetry = lane.telemetry.lock().unwrap();
                telemetry.stats.solves += 1;
                telemetry.stats.unique_solves += 1;
                telemetry.stats.absorb_unique(&response);
                telemetry.stats.absorb_delivered(&response);
            }
            self.finish(lane, request, response, false);
        } else {
            // A real micro-batch: shared dedup + bounded streamed
            // delivery through the query plane.
            let queries: Vec<Query> = misses.iter().map(|r| r.query.clone()).collect();
            let batch = QueryBatch::new(&queries);
            let mut slots: Vec<Option<Request>> = misses.into_iter().map(Some).collect();
            let stats =
                batch.stream_bounded(self.solver, self.stream_capacity, |slot, response| {
                    let request = slots[slot].take().expect("each slot delivered once");
                    let response = Arc::new(response);
                    if self.cache_enabled {
                        self.cache.insert(&request.query, Arc::clone(&response), epoch);
                    }
                    self.finish(lane, request, response, false);
                });
            lane.telemetry.lock().unwrap().stats.merge(&stats);
        }
    }

    /// Records latency + completion and sends the reply (a hung-up
    /// requester is ignored — the work is already done).
    fn finish(&self, lane: &Lane, request: Request, response: Arc<QueryResponse>, cached: bool) {
        let latency_us = request.submitted.elapsed().as_micros() as u64;
        {
            let mut telemetry = lane.telemetry.lock().unwrap();
            telemetry.latency.record(latency_us);
            telemetry.completions.push_back(Instant::now());
            if telemetry.completions.len() > RATE_WINDOW {
                telemetry.completions.pop_front();
            }
        }
        lane.completed.fetch_add(1, Ordering::SeqCst);
        let _ = request.reply.send(Reply { id: request.id, response, cached, latency_us });
    }
}

/// Runs a server over `solver` for the duration of `f`: lane workers
/// spawn on dedicated threads ([`rs_par::scope`] — never pool workers,
/// which must stay free for the solves themselves), `f` drives traffic
/// through the [`Server`] handle, and when it returns the lanes close,
/// drain, and join. Returns `f`'s result plus the final statistics.
///
/// The solver is borrowed, not `'static`: a server can wrap a solver
/// built over a graph on the caller's stack, same as every other layer
/// of the workspace.
pub fn serve<R>(
    solver: &dyn SsspSolver,
    config: &ServerConfig,
    f: impl FnOnce(&Server<'_>) -> R,
) -> (R, ServerStats) {
    let server = Server::new(solver, config);
    let result = rs_par::scope(|s| {
        for lane in &server.lanes {
            for _ in 0..lane.config.workers.max(1) {
                s.spawn(|| server.run_worker(lane));
            }
        }
        let out = f(&server);
        server.shutdown();
        out
    });
    let stats = server.stats();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A completion ring whose entries end `last_gap_us` before `now`,
    /// spaced `gap_us` apart (oldest first).
    fn ring(count: usize, gap_us: u64, last_gap_us: u64, now: Instant) -> VecDeque<Instant> {
        (0..count)
            .map(|i| {
                let back = last_gap_us + gap_us * (count - 1 - i) as u64;
                now - Duration::from_micros(back)
            })
            .collect()
    }

    #[test]
    fn idle_lane_gets_the_clamp_floor() {
        let now = Instant::now();
        assert_eq!(retry_hint(50, &VecDeque::new(), now), RETRY_MIN_US);
        let one = ring(1, 0, 10_000_000, now);
        assert_eq!(retry_hint(50, &one, now), RETRY_MIN_US, "one stale completion is no rate");
    }

    #[test]
    fn saturated_lane_hint_tracks_drain_rate_and_queue_depth() {
        let now = Instant::now();
        // 128 completions, 100µs apart, the last one just now: the lane
        // drains ~1 request per 100µs.
        let completions = ring(RATE_WINDOW, 100, 0, now);
        let shallow = retry_hint(8, &completions, now);
        let deep = retry_hint(64, &completions, now);
        // ~99µs/req × 9 ≈ 0.9ms; ~99µs/req × 65 ≈ 6.4ms.
        assert!((500..2_000).contains(&shallow), "shallow queue hint {shallow}µs");
        assert!((4_000..10_000).contains(&deep), "deep queue hint {deep}µs");
        assert!(deep > shallow, "a deeper queue must hint a longer back-off");
    }

    #[test]
    fn stalled_lane_hint_grows_with_the_stall_and_clamps() {
        let now = Instant::now();
        // Burst of completions that ended 2s ago: the window span against
        // `now` is dominated by the stall, so the hint hits the ceiling
        // instead of replaying the burst-era rate.
        let completions = ring(RATE_WINDOW, 100, 2_000_000, now);
        assert_eq!(retry_hint(64, &completions, now), RETRY_MAX_US);
    }

    #[test]
    fn hint_clamps_to_the_floor_for_a_fast_lane_and_tiny_queue() {
        let now = Instant::now();
        // 1µs per request, nothing queued: raw estimate is ~1µs — the
        // floor keeps the hint meaningful.
        let completions = ring(RATE_WINDOW, 1, 0, now);
        assert_eq!(retry_hint(0, &completions, now), RETRY_MIN_US);
    }
}
