fn probe(o: Option<u32>) -> u32 {
    let _sep = '\\';
    o.unwrap()
}
