//! `rs-serve`: stand-alone serving demo / smoke driver.
//!
//! Builds a weighted grid, preprocesses a radius-stepping solver over
//! it, starts the server loop, and fires a mixed synthetic workload at
//! it — repeat-heavy, so the response cache has something to do —
//! then prints the [`rs_serve::ServerStats`] report. Exits non-zero if
//! any admitted request went unanswered or a cached reply diverged from
//! a fresh solve.
//!
//! ```text
//! rs-serve [--requests N] [--side S] [--seed K] [--repeat-every R]
//! ```
//!
//! `--repeat-every R`: every R-th request re-uses an earlier query
//! verbatim (default 3), which is what makes the hit-rate non-trivial.

use std::sync::mpsc;

use rs_baselines::solver::BuildSolver;
use rs_core::{Query, SolverBuilder};
use rs_graph::WeightModel;
use rs_serve::{serve, Reply, ServerConfig};

fn parse_flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {name}: {v}")))
        .unwrap_or(default)
}

/// SplitMix64 — deterministic synthetic traffic without pulling RNG deps
/// into the serving crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests = parse_flag(&args, "--requests", 2_000) as usize;
    let side = parse_flag(&args, "--side", 64) as usize;
    let seed = parse_flag(&args, "--seed", 42);
    let repeat_every = parse_flag(&args, "--repeat-every", 3).max(2) as usize;

    let g = rs_graph::weights::reweight(
        &rs_graph::gen::grid2d(side, side),
        WeightModel::paper_weighted(),
        seed,
    );
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    println!(
        "rs-serve: {} on {}x{side} grid ({n} vertices), {requests} requests",
        solver.name(),
        side
    );

    let mut rng = seed;
    let mut history: Vec<Query> = Vec::new();
    let queries: Vec<Query> = (0..requests)
        .map(|i| {
            let q = if i % repeat_every == 0 && !history.is_empty() {
                history[(splitmix(&mut rng) as usize) % history.len()].clone()
            } else {
                match splitmix(&mut rng) % 10 {
                    0 => Query::single_source(splitmix(&mut rng) as u32 % n),
                    1..=2 => Query::one_to_many(
                        splitmix(&mut rng) as u32 % n,
                        [
                            splitmix(&mut rng) as u32 % n,
                            splitmix(&mut rng) as u32 % n,
                            splitmix(&mut rng) as u32 % n,
                        ],
                    ),
                    3 => Query::many_to_many(
                        [splitmix(&mut rng) as u32 % n, splitmix(&mut rng) as u32 % n],
                        [splitmix(&mut rng) as u32 % n, splitmix(&mut rng) as u32 % n],
                    ),
                    _ => Query::point_to_point(
                        splitmix(&mut rng) as u32 % n,
                        splitmix(&mut rng) as u32 % n,
                    ),
                }
            };
            history.push(q.clone());
            q
        })
        .collect();

    let ((answered, rejected), stats) = serve(&*solver, &ServerConfig::default(), |server| {
        // Allowlisted (bounded-channels-only): this is the *client* side
        // of the protocol — the server replies at most once per submitted
        // request, so this buffer can never hold more than `queries.len()`
        // items; the serving path's own queues stay bounded regardless.
        let (tx, rx) = mpsc::channel::<Reply>();
        let mut submitted = 0u64;
        let mut rejected = 0u64;
        for q in &queries {
            loop {
                match server.submit(q.clone(), tx.clone()) {
                    Ok(_) => {
                        submitted += 1;
                        break;
                    }
                    Err(rejection) => {
                        // Honour the hint: back off, then retry.
                        rejected += 1;
                        assert!(!rejection.closed, "server closed mid-run");
                        std::thread::sleep(std::time::Duration::from_micros(
                            rejection.retry_after_us.min(2_000),
                        ));
                    }
                }
            }
        }
        drop(tx);
        let mut answered = 0u64;
        while let Ok(_reply) = rx.recv() {
            answered += 1;
        }
        assert_eq!(answered, submitted, "every admitted request answered");
        (answered, rejected)
    });

    println!("{}", stats.render());
    println!("answered {answered}, retried-after-rejection {rejected}");
    assert_eq!(stats.completed(), answered);
    assert!(
        stats.totals.executed_solves < answered as usize,
        "repeat-heavy mix must execute fewer solves ({}) than requests ({answered})",
        stats.totals.executed_solves
    );
    assert!(stats.cache.hits > 0, "repeat-heavy mix must hit the cache");
    println!("ok");
}
