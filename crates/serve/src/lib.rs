//! Production serving layer over the radius-stepping query plane.
//!
//! The paper's motivating scenario (§5.4) is a *server*: preprocess a
//! graph once, then answer shortest-path queries from many sources at
//! low latency. Earlier layers built the solver half — unified
//! [`rs_core::Query`] execution, batch dedup, streamed delivery. This
//! crate is the serving half, three pillars on top:
//!
//! * **Backpressure** ([`queue`], [`rs_core::QueryBatch::stream_bounded`])
//!   — every buffer between a front-end and a solver worker is bounded.
//!   Admission queues reject when full (with a retry hint); the batch
//!   response channel blocks producers when the reply path lags. Peak
//!   in-flight memory is a configuration, not a function of load.
//! * **Response cache** ([`cache`]) — epoch-versioned, capacity-bounded,
//!   keyed on [`rs_core::Query::canonical`] so requests that would dedup
//!   within one batch also hit across batches.
//!   [`Server::invalidate_epoch`] is the O(1) choke point a future
//!   `update_weights` calls.
//! * **Admission lanes + SLOs** ([`lane`], [`server`]) — per-shape lanes
//!   with their own queues, worker quotas, and
//!   [`rs_ds::LatencyHistogram`] p50/p95/p99 telemetry, so a burst of
//!   many-to-many tables cannot head-of-line-block interactive
//!   point-to-point traffic. [`ServerStats`] rolls every lane ledger
//!   plus cache counters into one snapshot.
//!
//! Entry point: [`serve`] — scoped, like every parallel construct in the
//! workspace: lane workers live on dedicated threads for exactly the
//! closure's duration, the solver is borrowed rather than `'static`, and
//! shutdown is drain-then-join (every admitted request is answered).
//!
//! ```
//! use rs_baselines::solver::BuildSolver;
//! use rs_core::{Query, SolverBuilder};
//! use rs_serve::{serve, ServerConfig};
//!
//! let g = rs_graph::gen::grid2d(8, 8);
//! let solver = SolverBuilder::new(&g).build();
//! let (ids, stats) = serve(&*solver, &ServerConfig::default(), |server| {
//!     let (tx, rx) = std::sync::mpsc::channel();
//!     let a = server.submit(Query::point_to_point(0, 63), tx.clone()).unwrap();
//!     let b = server.submit(Query::point_to_point(0, 63), tx).unwrap(); // cache hit
//!     let first = rx.recv().unwrap();
//!     let second = rx.recv().unwrap();
//!     assert_eq!(first.response.dist()[63], second.response.dist()[63]);
//!     (a, b)
//! });
//! assert_ne!(ids.0, ids.1, "every submit gets its own ticket");
//! assert_eq!(stats.completed(), 2);
//! assert_eq!(stats.cache.hits + stats.cache.misses, 2);
//! ```

pub mod cache;
pub mod lane;
pub mod queue;
pub mod server;

pub use cache::{CacheStats, ResponseCache};
pub use lane::{LaneConfig, LaneSnapshot, Shape};
pub use queue::{BoundedQueue, PushError};
pub use server::{serve, Rejection, Reply, Server, ServerConfig, ServerStats};
