//! The lint suite behind `cargo xtask check`.
//!
//! Seven token-level checks over workspace + vendor sources (the token
//! stream comes from [`crate::tokens`] — no syn, no registry access),
//! tuned to the concurrency invariants this repo's serving stack
//! depends on:
//!
//! * [`LINT_UNSAFE`] — every `unsafe` block/fn/impl carries a `// SAFETY:`
//!   comment (or a `# Safety` doc section) in the comment block directly
//!   above it. Backed by `clippy::undocumented_unsafe_blocks` at the
//!   workspace level (denied there); this lint additionally covers
//!   `unsafe fn` and runs without a full build.
//! * [`LINT_ORDERING`] — every non-`SeqCst` atomic `Ordering::` use carries
//!   an `// ORDERING:` justification, trailing or in the comment block
//!   above (one comment may cover a contiguous cluster of atomic lines).
//!   Relaxed/Acquire/Release choices are exactly where weak-memory races
//!   hide; the comment forces each one to state why it is sufficient.
//! * [`LINT_ATOMIC_PAIRING`] — an `Ordering::Acquire` is only half of an
//!   edge: its `// ORDERING:` justification must *name the `Release`
//!   partner* and cite the field the edge rides on (checked textually
//!   against the loaded field), so every Acquire documents where the
//!   matching Release store lives.
//! * [`LINT_THREAD`] — no `std::thread::spawn` / `thread::Builder` /
//!   `spawn_scoped` outside `rs_par::scope`: dedicated service threads
//!   must go through the one abstraction that joins them and propagates
//!   panics (pool workers must never run blocking service loops).
//! * [`LINT_CHANNEL`] — no unbounded `mpsc::channel()` in the `crates/serve`
//!   or `crates/core` *libraries*: bounded backpressure end-to-end is a
//!   PR-6 invariant; an unbounded buffer silently reintroduces O(batch)
//!   memory. CLI driver binaries under `src/bin/` are the client side of
//!   the protocol and are out of scope.
//! * [`LINT_SERVE_PANIC`] — no `unwrap()` / `expect()` / `println!` in
//!   non-test `crates/serve` library code: the server loop must degrade,
//!   not abort, and speaks through replies/stats, not stdout. Two idioms
//!   are deliberately exempt: `.lock().unwrap()` and `.wait(..).unwrap()`
//!   are *poison propagation* — a poisoned mutex/condvar means a prior
//!   panic already doomed the process, and propagating it is the correct
//!   degraded behaviour (this used to live in the allowlist; the token
//!   scanner can see the receiver, so it is policy now). `src/bin/`
//!   drivers speak through stdout by design and are out of scope.
//! * [`LINT_LOCK_ORDER`] — mutex acquisition order must be consistent:
//!   [`LockOrderCollector`] builds a per-crate graph from syntactically
//!   nested `.lock()` scopes (a `let`-bound guard is held to the end of
//!   its block; an unbound temporary to the end of its statement) and
//!   flags every acquisition that closes a cycle, including re-acquiring
//!   a lock already held (self-deadlock with a non-reentrant `Mutex`).
//!   The analysis is intra-file and name-based (a lock is identified by
//!   the last field/method component of its receiver), so it sees the
//!   order each *file* commits to — cross-function nesting is out of
//!   scope, the allowlist is the escape hatch for deliberate aliasing.
//!
//! Test code is exempt everywhere: files under `tests/` or `benches/`
//! never reach the lints, and `#[cfg(test)]` items inside source files
//! are skipped via token-level attribute + brace tracking. Comments,
//! string literals (raw, byte, multi-line — all of them), char literals
//! and lifetimes are real tokens here, so lints cannot fire on prose,
//! on this file's own pattern constants, or on formatting artifacts —
//! the line-based scanner this replaced needed allowlist entries for
//! those; this one needs correct code.

use std::collections::BTreeMap;

use crate::tokens::{self, Token, TokenKind};

/// `unsafe` without an adjacent `// SAFETY:` justification.
pub const LINT_UNSAFE: &str = "unsafe-safety-comment";
/// Non-`SeqCst` atomic ordering without an `// ORDERING:` justification.
pub const LINT_ORDERING: &str = "ordering-justified";
/// `Ordering::Acquire` whose justification does not cite its `Release`
/// partner and the field the edge rides on.
pub const LINT_ATOMIC_PAIRING: &str = "atomic-pairing";
/// Thread spawn primitives outside `rs_par::scope`.
pub const LINT_THREAD: &str = "scoped-threads-only";
/// Unbounded `mpsc::channel()` on the serving path.
pub const LINT_CHANNEL: &str = "bounded-channels-only";
/// Panic/print escape hatches in the server loop.
pub const LINT_SERVE_PANIC: &str = "serve-panic-free";
/// Inconsistent mutex acquisition order (potential deadlock cycle).
pub const LINT_LOCK_ORDER: &str = "lock-order-consistent";

/// Every lint, for per-lint reporting.
pub const ALL_LINTS: [&str; 7] = [
    LINT_UNSAFE,
    LINT_ORDERING,
    LINT_ATOMIC_PAIRING,
    LINT_THREAD,
    LINT_CHANNEL,
    LINT_SERVE_PANIC,
    LINT_LOCK_ORDER,
];

/// One finding: `file:line:col` plus span, the violating token's line,
/// and what to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired (one of [`ALL_LINTS`]).
    pub lint: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the violating token.
    pub line: usize,
    /// 1-based byte column of the violating token within its line.
    pub col: usize,
    /// Span length of the violating token sequence, in bytes.
    pub span: usize,
    /// The violating token's source line, trimmed. Allowlist substrings
    /// match against this (the token's own line — for a construct that
    /// spans lines, that is where the flagged token starts).
    pub text: String,
    /// 1-based byte column of the token within `text` (i.e. `col` minus
    /// the indentation the trim removed), for caret rendering.
    pub text_col: usize,
    /// Human-readable explanation + fix.
    pub message: String,
}

// ---------------------------------------------------------------------------
// File analysis: tokens + line table + test/attr regions
// ---------------------------------------------------------------------------

/// Per-line facts derived from the token stream.
#[derive(Default)]
struct LineInfo {
    /// The raw physical line.
    text: String,
    /// Concatenated text of every comment token touching this line.
    comments: String,
    /// A non-comment token outside any attribute touches this line.
    has_code: bool,
    /// A token inside an attribute touches this line.
    has_attr: bool,
    /// An `unsafe` identifier token starts on this line.
    has_unsafe: bool,
    /// An `Ordering::` path (any member) starts on this line.
    has_ordering: bool,
    /// A `yield_point` identifier starts on this line.
    has_yield: bool,
}

impl LineInfo {
    /// Comment-only (or attribute-only) lines are transparent to the
    /// justification walk; blank lines and code lines stop it.
    fn transparent(&self) -> bool {
        (!self.has_code && (self.has_attr || !self.comments.is_empty())) && !self.is_blank()
    }

    fn is_blank(&self) -> bool {
        !self.has_code && !self.has_attr && self.comments.is_empty()
    }
}

/// Lexed source plus the line/region tables every lint shares.
struct FileAnalysis<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    sig: Vec<usize>,
    /// Indexed by `line - 1`.
    lines: Vec<LineInfo>,
    /// Byte ranges covered by `#[cfg(test)]`-gated items.
    test_ranges: Vec<(usize, usize)>,
    /// Byte ranges covered by attributes (`#[...]` / `#![...]`).
    attr_ranges: Vec<(usize, usize)>,
}

impl<'a> FileAnalysis<'a> {
    fn new(src: &'a str) -> Self {
        let tokens = tokens::lex(src);
        let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].kind.is_comment()).collect();
        let attr_ranges = find_attr_ranges(src, &tokens, &sig);
        let test_ranges = find_test_ranges(src, &tokens, &sig, &attr_ranges);
        let mut lines: Vec<LineInfo> =
            src.lines().map(|l| LineInfo { text: l.to_string(), ..LineInfo::default() }).collect();
        // `str::lines` drops a trailing newline-less last line only when
        // empty; tokens never start past the last line, but guard anyway.
        let max_line = tokens.iter().map(|t| t.end_line).max().unwrap_or(0);
        while lines.len() < max_line {
            lines.push(LineInfo::default());
        }
        for t in &tokens {
            let covered = (t.line - 1)..t.end_line.min(lines.len());
            if t.kind.is_comment() {
                let text = t.text(src);
                for l in covered {
                    lines[l].comments.push_str(text);
                    lines[l].comments.push('\n');
                }
                continue;
            }
            let in_attr = in_ranges(t.start, &attr_ranges);
            for l in covered {
                if in_attr {
                    lines[l].has_attr = true;
                } else {
                    lines[l].has_code = true;
                }
            }
            let flags = &mut lines[t.line - 1];
            if t.kind == TokenKind::Ident {
                match t.text(src) {
                    "unsafe" => flags.has_unsafe = true,
                    "yield_point" => flags.has_yield = true,
                    _ => {}
                }
            }
        }
        let mut fa = FileAnalysis { src, tokens, sig, lines, test_ranges, attr_ranges };
        // Ordering:: lines need the two-token lookahead, so a second pass.
        for s in 0..fa.sig.len() {
            if fa.path_member(s, "Ordering").is_some() {
                let line = fa.tok(s).line;
                fa.lines[line - 1].has_ordering = true;
            }
        }
        fa
    }

    /// The `s`-th significant token.
    fn tok(&self, s: usize) -> &Token {
        &self.tokens[self.sig[s]]
    }

    fn text_of(&self, s: usize) -> &str {
        self.tok(s).text(self.src)
    }

    fn is_ident(&self, s: usize, name: &str) -> bool {
        self.tok(s).kind == TokenKind::Ident && self.text_of(s) == name
    }

    fn is_punct(&self, s: usize, ch: char) -> bool {
        self.tok(s).kind == TokenKind::Punct && self.text_of(s).starts_with(ch)
    }

    /// If `sig[s]` is `base` immediately followed by `::` and a member
    /// identifier, returns the member's significant index.
    fn path_member(&self, s: usize, base: &str) -> Option<usize> {
        if !self.is_ident(s, base) || s + 3 > self.sig.len() {
            return None;
        }
        let (c1, c2, m) = (s + 1, s + 2, s + 3);
        if m >= self.sig.len() || !self.is_punct(c1, ':') || !self.is_punct(c2, ':') {
            return None;
        }
        // The two colons must be adjacent bytes (a real `::`).
        if self.tok(c1).end != self.tok(c2).start {
            return None;
        }
        (self.tok(m).kind == TokenKind::Ident).then_some(m)
    }

    fn in_test(&self, t: &Token) -> bool {
        in_ranges(t.start, &self.test_ranges)
    }

    fn in_attr(&self, t: &Token) -> bool {
        in_ranges(t.start, &self.attr_ranges)
    }

    /// Looks for any of `markers` in the comments on the flagged line
    /// itself (leading or trailing comment) or in the contiguous
    /// comment/attribute block directly above. Lines for which `skip`
    /// returns true extend the walk (used to let one `// ORDERING:`
    /// comment cover a contiguous cluster of atomic lines).
    fn justified(&self, line: usize, markers: &[&str], skip: impl Fn(&LineInfo) -> bool) -> bool {
        self.justification_comment(line, &skip)
            .is_some_and(|text| markers.iter().any(|m| text.contains(m)))
    }

    /// The concatenated comment text the justification walk can see from
    /// `line` (1-based): same-line comments plus the contiguous
    /// comment/attr/skip block above. `None` when there is none at all.
    fn justification_comment(
        &self,
        line: usize,
        skip: &impl Fn(&LineInfo) -> bool,
    ) -> Option<String> {
        let mut collected = String::new();
        let mut push = |l: &LineInfo| {
            if !l.comments.is_empty() {
                collected.push_str(&l.comments);
            }
        };
        push(&self.lines[line - 1]);
        let mut j = line - 1; // 0-based index of the flagged line
        while j > 0 {
            j -= 1;
            let l = &self.lines[j];
            if l.transparent() || (l.has_code && skip(l)) {
                push(l);
                continue;
            }
            break;
        }
        (!collected.is_empty()).then_some(collected)
    }
}

fn in_ranges(pos: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(s, e)| pos >= s && pos < e)
}

/// Byte ranges of attributes: `#` (optional `!`) `[` … matching `]`.
fn find_attr_ranges(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let text = |s: usize| -> &str { tokens[sig[s]].text(src) };
    let mut out = Vec::new();
    let mut s = 0;
    while s < sig.len() {
        if text(s) != "#" {
            s += 1;
            continue;
        }
        let start = tokens[sig[s]].start;
        let mut k = s + 1;
        if k < sig.len() && text(k) == "!" {
            k += 1;
        }
        if k >= sig.len() || text(k) != "[" {
            s += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut end = None;
        while k < sig.len() {
            match text(k) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(tokens[sig[k]].end);
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        match end {
            Some(e) => {
                out.push((start, e));
                s = k + 1;
            }
            None => {
                out.push((start, src.len()));
                break;
            }
        }
    }
    out
}

/// Byte ranges of `#[cfg(test)]`-gated items (attribute through the
/// item's closing `}` or `;`).
fn find_test_ranges(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    attr_ranges: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for &(a_start, a_end) in attr_ranges {
        let body: String = tokens
            .iter()
            .filter(|t| t.start >= a_start && t.end <= a_end && !t.kind.is_comment())
            .map(|t| t.text(src))
            .collect();
        if !(body.contains("cfg(test") || body.contains("cfg(all(test")) {
            continue;
        }
        // Find the first significant token after the attribute, skipping
        // further attributes; then consume the item.
        let mut k = match sig.iter().position(|&i| tokens[i].start >= a_end) {
            Some(k) => k,
            None => continue,
        };
        while k < sig.len() && in_ranges(tokens[sig[k]].start, attr_ranges) {
            k += 1;
        }
        let mut depth = 0i64;
        let mut end = None;
        while k < sig.len() {
            let t = &tokens[sig[k]];
            match t.text(src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        end = Some(t.end);
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = Some(t.end); // e.g. `mod tests;`
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        out.push((a_start, end.unwrap_or(src.len())));
    }
    out
}

// ---------------------------------------------------------------------------
// The per-file lints
// ---------------------------------------------------------------------------

/// Non-`SeqCst` atomic ordering members.
const WEAK_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Runs every per-file lint over one file. `path` must be
/// workspace-relative with forward slashes (it selects which path-scoped
/// lints apply). Files under `tests/` or `benches/` are the caller's job
/// to exclude. The cross-file lock-order pass lives in
/// [`LockOrderCollector`].
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let fa = FileAnalysis::new(source);
    let mut out = Vec::new();
    let bin = path.contains("/bin/");
    let serve_scope = path.starts_with("crates/serve/") && !bin;
    let channel_scope = (serve_scope || path.starts_with("crates/core/")) && !bin;

    let mut push = |tok: &Token, span: usize, lint: &'static str, message: String| {
        let line_text = &fa.lines[tok.line - 1].text;
        let trimmed = line_text.trim();
        let indent = line_text.len() - line_text.trim_start().len();
        out.push(Violation {
            lint,
            file: path.to_string(),
            line: tok.line,
            col: tok.col,
            span,
            text: trimmed.to_string(),
            text_col: tok.col.saturating_sub(indent).max(1),
            message,
        });
    };

    for s in 0..fa.sig.len() {
        let tok = fa.tok(s);
        if fa.in_test(tok) || fa.in_attr(tok) {
            continue;
        }

        // unsafe-safety-comment: skip `unsafe [extern ["C"]] fn(` — a bare
        // function *pointer type*, not an unsafe operation site.
        if fa.is_ident(s, "unsafe") {
            let mut k = s + 1;
            if k < fa.sig.len() && fa.is_ident(k, "extern") {
                k += 1;
                if k < fa.sig.len() && fa.tok(k).kind == TokenKind::StrLit {
                    k += 1;
                }
            }
            let is_fn_pointer_type =
                k + 1 < fa.sig.len() && fa.is_ident(k, "fn") && fa.is_punct(k + 1, '(');
            if !is_fn_pointer_type
                && !fa.justified(tok.line, &["SAFETY:", "# Safety"], |l| l.has_unsafe)
            {
                push(
                    tok,
                    tok.len(),
                    LINT_UNSAFE,
                    "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                     directly above — state the invariant that makes this sound"
                        .to_string(),
                );
            }
        }

        // ordering-justified + atomic-pairing. The upward walk treats
        // other atomic lines and `model::yield_point()` instrumentation
        // as transparent, so one comment can cover a contiguous cluster
        // of atomics with schedule-fuzz probes between them.
        if let Some(m) = fa.path_member(s, "Ordering") {
            let member = fa.text_of(m).to_string();
            if WEAK_ORDERINGS.contains(&member.as_str()) {
                let span = fa.tok(m).end - tok.start;
                let skip = |l: &LineInfo| l.has_ordering || l.has_yield;
                let comment = fa.justification_comment(tok.line, &skip).unwrap_or_default();
                if !comment.contains("ORDERING:") {
                    push(
                        tok,
                        span,
                        LINT_ORDERING,
                        "non-SeqCst atomic ordering without an `// ORDERING:` justification — \
                         say why this weakening cannot lose a cross-thread visibility edge"
                            .to_string(),
                    );
                } else if member == "Acquire" {
                    // atomic-pairing: the justification must name the
                    // Release partner and cite the loaded field.
                    if let Some(field) = fa.receiver_field(s) {
                        let lower = comment.to_lowercase();
                        if !(lower.contains("release") && comment.contains(&field)) {
                            push(
                                tok,
                                span,
                                LINT_ATOMIC_PAIRING,
                                format!(
                                    "`Ordering::Acquire` on `{field}` whose ORDERING comment \
                                     does not name its `Release` partner against that field — \
                                     cite the Release store this Acquire pairs with (mention \
                                     both `{field}` and `Release`)"
                                ),
                            );
                        }
                    }
                }
            }
        }

        // scoped-threads-only
        if fa.is_ident(s, "thread") {
            if let Some(m) = fa.path_member(s, "thread") {
                let target = fa.text_of(m);
                if target == "spawn" || target == "Builder" {
                    push(
                        tok,
                        fa.tok(m).end - tok.start,
                        LINT_THREAD,
                        format!(
                            "`thread::{target}` outside `rs_par::scope` — dedicated threads must \
                             be spawned through the scoped abstraction that joins them and \
                             rethrows panics"
                        ),
                    );
                }
            }
        }
        if fa.is_ident(s, "spawn_scoped") {
            push(
                tok,
                tok.len(),
                LINT_THREAD,
                "`spawn_scoped` outside `rs_par::scope` — dedicated threads must be spawned \
                 through the scoped abstraction that joins them and rethrows panics"
                    .to_string(),
            );
        }

        // bounded-channels-only (serving-path libraries)
        if channel_scope {
            if let Some(m) = fa.path_member(s, "mpsc") {
                if fa.text_of(m) == "channel" {
                    push(
                        tok,
                        fa.tok(m).end - tok.start,
                        LINT_CHANNEL,
                        "unbounded `mpsc::channel()` on the serving path — use \
                         `mpsc::sync_channel` (or BoundedQueue) so backpressure stays bounded \
                         end-to-end"
                            .to_string(),
                    );
                }
            }
        }

        // serve-panic-free (library code only; `.lock().unwrap()` /
        // `.wait(..).unwrap()` are poison propagation — see module doc)
        if serve_scope {
            if fa.is_punct(s, '.') && s + 1 < fa.sig.len() {
                let name = fa.text_of(s + 1);
                if (name == "unwrap" || name == "expect")
                    && s + 2 < fa.sig.len()
                    && fa.is_punct(s + 2, '(')
                    && !fa.receiver_is_poison_source(s)
                {
                    let what = if name == "unwrap" { "unwrap()" } else { "expect()" };
                    push(
                        fa.tok(s + 1),
                        fa.tok(s + 1).len(),
                        LINT_SERVE_PANIC,
                        format!(
                            "`{what}` in non-test serve code — the server loop must degrade \
                             (reject/ignore) rather than abort, and report through stats"
                        ),
                    );
                }
            }
            if fa.is_ident(s, "println") && s + 1 < fa.sig.len() && fa.is_punct(s + 1, '!') {
                push(
                    tok,
                    fa.tok(s + 1).end - tok.start,
                    LINT_SERVE_PANIC,
                    "`println!` in non-test serve code — the server loop must degrade \
                     (reject/ignore) rather than abort, and report through stats"
                        .to_string(),
                );
            }
        }
    }
    out
}

impl<'a> FileAnalysis<'a> {
    /// For the `.unwrap()` / `.expect(..)` at significant index `dot`:
    /// true when the receiver is a call to `lock` / `try_lock` / `wait`
    /// — i.e. the unwrap propagates mutex/condvar poisoning.
    fn receiver_is_poison_source(&self, dot: usize) -> bool {
        if dot == 0 || !self.is_punct(dot - 1, ')') {
            return false;
        }
        // Walk back over the balanced `( .. )` of the receiver call.
        let mut depth = 0i64;
        let mut k = dot - 1;
        loop {
            if self.is_punct(k, ')') {
                depth += 1;
            } else if self.is_punct(k, '(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        k > 0 && matches!(self.text_of(k - 1), "lock" | "try_lock" | "wait")
    }

    /// For the `Ordering` token at significant index `s` (inside a call's
    /// argument list), the field the atomic method is invoked on:
    /// `self.top.load(Ordering::Acquire)` → `top`,
    /// `STATE.load(..)` → `STATE`,
    /// `self.slots[i].load(..)` → `slots`.
    /// `None` when the receiver shape is something else (free function,
    /// chained call) — the pairing check does not apply then.
    fn receiver_field(&self, s: usize) -> Option<String> {
        // Find the `(` that opens the argument list we are inside.
        let mut depth = 0i64;
        let mut k = s;
        loop {
            if k == 0 {
                return None;
            }
            k -= 1;
            if self.is_punct(k, ')') || self.is_punct(k, ']') || self.is_punct(k, '}') {
                depth += 1;
            } else if self.is_punct(k, '(') || self.is_punct(k, '[') || self.is_punct(k, '{') {
                if depth == 0 {
                    if !self.is_punct(k, '(') {
                        return None;
                    }
                    break;
                }
                depth -= 1;
            }
        }
        // `( ` at k; method ident before it, then `.`, then the field.
        if k < 2 || self.tok(k - 1).kind != TokenKind::Ident || !self.is_punct(k - 2, '.') {
            return None;
        }
        let mut f = k - 2; // the `.` before the method
        if f == 0 {
            return None;
        }
        f -= 1; // candidate field position
        if self.is_punct(f, ']') {
            // Skip the balanced index expression.
            let mut d = 0i64;
            loop {
                if self.is_punct(f, ']') {
                    d += 1;
                } else if self.is_punct(f, '[') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if f == 0 {
                    return None;
                }
                f -= 1;
            }
            if f == 0 {
                return None;
            }
            f -= 1;
        }
        (self.tok(f).kind == TokenKind::Ident && self.text_of(f) != "self")
            .then(|| self.text_of(f).to_string())
    }
}

// ---------------------------------------------------------------------------
// lock-order-consistent: the cross-file pass
// ---------------------------------------------------------------------------

/// One `.lock()` acquisition site.
#[derive(Debug, Clone)]
struct LockSite {
    file: String,
    line: usize,
    col: usize,
    span: usize,
    text: String,
    text_col: usize,
}

/// Accumulates the per-crate mutex-acquisition graphs across files, then
/// reports cycles. Feed every file through [`LockOrderCollector::collect`],
/// then call [`LockOrderCollector::finish`].
#[derive(Default)]
pub struct LockOrderCollector {
    /// crate key → (held, acquired) → first site that committed the edge.
    graphs: BTreeMap<String, BTreeMap<(String, String), LockSite>>,
}

impl LockOrderCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Scans one file's syntactic `.lock()` nesting into the graph of
    /// its crate. Test regions are exempt like everywhere else.
    pub fn collect(&mut self, path: &str, source: &str) {
        let fa = FileAnalysis::new(source);
        let graph = self.graphs.entry(crate_key(path)).or_default();

        /// A lock currently held (syntactically).
        struct Held {
            name: String,
            depth: i64,
            let_bound: bool,
        }
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i64;
        // Statement shape: `let`-bound guards live to the end of their
        // block; unbound temporaries die at the `;` (or `,`, which also
        // separates match arms' expressions) that ends their statement.
        let mut stmt_start = true;
        let mut stmt_is_let = false;

        for s in 0..fa.sig.len() {
            let tok = fa.tok(s);
            if fa.in_test(tok) || fa.in_attr(tok) {
                continue;
            }
            let text = fa.text_of(s);
            if stmt_start && !matches!(text, "{" | "}" | ";" | ",") {
                stmt_is_let = text == "let";
                stmt_start = false;
            }
            match text {
                "{" => {
                    depth += 1;
                    stmt_start = true;
                }
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                    stmt_start = true;
                }
                ";" | "," => {
                    held.retain(|h| h.depth != depth || h.let_bound);
                    stmt_start = true;
                }
                "lock" => {
                    // `.lock()` exactly: a zero-argument call on a receiver.
                    let is_call = s >= 1
                        && fa.is_punct(s - 1, '.')
                        && s + 2 < fa.sig.len()
                        && fa.is_punct(s + 1, '(')
                        && fa.is_punct(s + 2, ')');
                    if !is_call {
                        continue;
                    }
                    let Some(name) = fa.lock_receiver_name(s) else { continue };
                    let site = LockSite {
                        file: path.to_string(),
                        line: tok.line,
                        col: tok.col,
                        span: fa.tok(s + 2).end - tok.start,
                        text: fa.lines[tok.line - 1].text.trim().to_string(),
                        text_col: {
                            let lt = &fa.lines[tok.line - 1].text;
                            tok.col.saturating_sub(lt.len() - lt.trim_start().len()).max(1)
                        },
                    };
                    for h in &held {
                        graph.entry((h.name.clone(), name.clone())).or_insert_with(|| site.clone());
                    }
                    held.push(Held { name, depth, let_bound: stmt_is_let });
                }
                _ => {}
            }
        }
    }

    /// Detects cycles per crate and renders violations, anchored at the
    /// first site of each edge that closes a cycle.
    pub fn finish(self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (crate_key, graph) in &self.graphs {
            // Adjacency over edge set.
            let succs = |n: &String| -> Vec<&String> {
                graph.keys().filter(|(a, _)| a == n).map(|(_, b)| b).collect()
            };
            for ((held, acquired), site) in graph {
                let cycle = if held == acquired {
                    Some(format!("{held} -> {held}"))
                } else {
                    path_between(acquired, held, &succs)
                        .map(|p| format!("{held} -> {}", p.join(" -> ")))
                };
                let Some(cycle) = cycle else { continue };
                out.push(Violation {
                    lint: LINT_LOCK_ORDER,
                    file: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    span: site.span,
                    text: site.text.clone(),
                    text_col: site.text_col,
                    message: if held == acquired {
                        format!(
                            "`{held}` locked while already held in {crate_key} — \
                             self-deadlock with a non-reentrant Mutex; drop the first guard \
                             (or scope it) before re-acquiring"
                        )
                    } else {
                        format!(
                            "acquiring `{acquired}` while holding `{held}` closes a lock-order \
                             cycle in {crate_key} ({cycle}) — pick one global acquisition order \
                             for these mutexes"
                        )
                    },
                });
            }
        }
        out
    }
}

impl<'a> FileAnalysis<'a> {
    /// Receiver name for the `.lock()` whose method ident sits at
    /// significant index `s`: the last field/method component of the
    /// receiver chain (`self.inner.lock()` → `inner`,
    /// `self.shard_of(&k).lock()` → `shard_of()`,
    /// `self.shards[i].lock()` → `shards`).
    fn lock_receiver_name(&self, s: usize) -> Option<String> {
        let dot = s.checked_sub(1)?;
        let mut f = dot.checked_sub(1)?;
        if self.is_punct(f, ')') {
            // Method-call receiver: name it `method()`.
            let mut d = 0i64;
            loop {
                if self.is_punct(f, ')') {
                    d += 1;
                } else if self.is_punct(f, '(') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                f = f.checked_sub(1)?;
            }
            let m = f.checked_sub(1)?;
            return (self.tok(m).kind == TokenKind::Ident)
                .then(|| format!("{}()", self.text_of(m)));
        }
        if self.is_punct(f, ']') {
            let mut d = 0i64;
            loop {
                if self.is_punct(f, ']') {
                    d += 1;
                } else if self.is_punct(f, '[') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                f = f.checked_sub(1)?;
            }
            f = f.checked_sub(1)?;
        }
        (self.tok(f).kind == TokenKind::Ident).then(|| self.text_of(f).to_string())
    }
}

/// BFS path `from → … → to` over the edge successors, if any.
fn path_between<'g>(
    from: &'g String,
    to: &String,
    succs: &impl Fn(&String) -> Vec<&'g String>,
) -> Option<Vec<String>> {
    let mut queue = vec![vec![from]];
    let mut seen = vec![from];
    while let Some(path) = queue.pop() {
        let last = path.last().unwrap();
        for next in succs(last) {
            if next == to {
                let mut full: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                full.push(next.to_string());
                return Some(full);
            }
            if !seen.contains(&next) {
                seen.push(next);
                let mut p = path.clone();
                p.push(next);
                queue.insert(0, p);
            }
        }
    }
    None
}

/// The graph-aggregation key: the crate a file belongs to
/// (`crates/serve/...` → `crates/serve`, `vendor/rayon/...` →
/// `vendor/rayon`, `src/...` → `src`).
fn crate_key(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    match parts.first() {
        Some(&"crates") | Some(&"vendor") if parts.len() >= 2 => {
            format!("{}/{}", parts[0], parts[1])
        }
        Some(first) => first.to_string(),
        None => path.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|v| v.lint).collect()
    }

    // --- unsafe-safety-comment -------------------------------------------

    #[test]
    fn unsafe_without_comment_is_caught() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let got = lint_source("crates/par/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lint, LINT_UNSAFE);
        assert_eq!((got[0].line, got[0].col, got[0].span), (2, 5, 6));
    }

    #[test]
    fn safety_comment_above_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_doc_section_passes_for_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) {}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_safety_comment_passes() {
        let src =
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid per contract\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_flagged() {
        let src = "struct H {\n    execute: unsafe fn(*const H),\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
        let ext = "struct H {\n    execute: unsafe extern \"C\" fn(*const H),\n}\n";
        assert!(lint_source("crates/par/src/x.rs", ext).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let src = "unsafe impl Send for X {}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_UNSAFE]);
        let ok = "// SAFETY: X owns no thread-affine state.\nunsafe impl Send for X {}\n";
        assert!(lint_source("crates/par/src/x.rs", ok).is_empty());
    }

    #[test]
    fn multi_line_unsafe_impl_header_is_anchored_at_the_unsafe_token() {
        // A rustfmt-split header: the old line scanner needed the SAFETY
        // comment adjacent to the *pattern's* line; the token scanner
        // anchors at the `unsafe` token and walks from there.
        let src = "unsafe impl<T: Send + 'static>\n    Send for Holder<T>\n{\n}\n";
        let got = lint_source("crates/par/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].lint, got[0].line, got[0].col), (LINT_UNSAFE, 1, 1));
        let ok = "// SAFETY: T: Send is required by the bound above.\nunsafe impl<T: Send + 'static>\n    Send for Holder<T>\n{\n}\n";
        assert!(lint_source("crates/par/src/x.rs", ok).is_empty());
    }

    #[test]
    fn attribute_between_comment_and_unsafe_is_transparent() {
        let src = "// SAFETY: exclusive access per the latch protocol.\n#[allow(dead_code)]\nunsafe fn g() {}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn word_unsafe_embedded_in_identifier_is_ignored() {
        let src = "fn f() {\n    let unsafe_count = 0;\n    let _ = unsafe_count;\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    // --- ordering-justified ----------------------------------------------

    #[test]
    fn relaxed_without_justification_is_caught() {
        let src =
            "fn f(a: &std::sync::atomic::AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_ORDERING]);
    }

    #[test]
    fn ordering_comment_covers_a_cluster() {
        let src = "fn f(a: &A, b: &A) {\n    // ORDERING: counters are advisory; no data is published through them.\n    a.store(1, Ordering::Relaxed);\n    b.store(2, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn yield_point_lines_are_transparent_to_the_cluster_walk() {
        let src = "fn f(a: &A, b: &A) {\n    // ORDERING: advisory pair.\n    a.store(1, Ordering::Relaxed);\n    model::yield_point();\n    b.store(2, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_ordering_comment_passes() {
        let src = "fn f(a: &A) {\n    a.load(Ordering::Acquire) // ORDERING: pairs with the Release store to a in set()\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn seqcst_needs_no_justification() {
        let src = "fn f(a: &A) {\n    a.load(Ordering::SeqCst);\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic_ordering() {
        let src = "fn f(x: u8) -> std::cmp::Ordering {\n    match x.cmp(&3) {\n        std::cmp::Ordering::Less => std::cmp::Ordering::Less,\n        o => o,\n    }\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn mixed_seqcst_and_relaxed_compare_exchange_is_flagged() {
        let src = "fn f(a: &A) {\n    a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed);\n}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_ORDERING]);
    }

    #[test]
    fn ordering_in_string_or_raw_string_is_not_code() {
        let src = "fn f() -> &'static str {\n    r#\"a.load(Ordering::Relaxed) // and thread::spawn\"#\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    // --- atomic-pairing ---------------------------------------------------

    #[test]
    fn acquire_comment_naming_release_and_field_passes() {
        let src = "fn f(s: &S) -> bool {\n    // ORDERING: Acquire pairs with the Release store to done in set().\n    s.done.load(Ordering::Acquire)\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn acquire_comment_missing_release_is_flagged() {
        let src = "fn f(s: &S) -> bool {\n    // ORDERING: we need the freshest value of done here.\n    s.done.load(Ordering::Acquire)\n}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_ATOMIC_PAIRING]);
    }

    #[test]
    fn acquire_comment_naming_wrong_field_is_flagged() {
        let src = "fn f(s: &S) -> bool {\n    // ORDERING: Acquire pairs with the Release store in push().\n    s.done.load(Ordering::Acquire)\n}\n";
        let got = lint_source("crates/par/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lint, LINT_ATOMIC_PAIRING);
        assert!(got[0].message.contains("done"));
    }

    #[test]
    fn acquire_release_matching_is_case_insensitive_on_release() {
        let src = "fn f(s: &S) -> bool {\n    // ORDERING: pairs with thieves' CAS releases of top.\n    s.top.load(Ordering::Acquire)\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexed_receiver_cites_the_array_field() {
        let src = "fn f(s: &S, i: usize) {\n    // ORDERING: Acquire pairs with the Release publication of slots entries.\n    s.slots[i].load(Ordering::Acquire);\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
        let bad = "fn f(s: &S, i: usize) {\n    // ORDERING: Acquire pairs with the Release publication elsewhere.\n    s.slots[i].load(Ordering::Acquire);\n}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", bad), vec![LINT_ATOMIC_PAIRING]);
    }

    #[test]
    fn unjustified_acquire_reports_ordering_not_pairing() {
        let src = "fn f(s: &S) -> bool {\n    s.done.load(Ordering::Acquire)\n}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_ORDERING]);
    }

    #[test]
    fn relaxed_needs_no_pairing() {
        let src = "fn f(s: &S) -> u64 {\n    // ORDERING: advisory counter, no data published through it.\n    s.count.load(Ordering::Relaxed)\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    // --- scoped-threads-only ---------------------------------------------

    #[test]
    fn bare_thread_spawn_is_caught_everywhere() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec![LINT_THREAD]);
        assert_eq!(lints_of("vendor/rayon/src/x.rs", src), vec![LINT_THREAD]);
    }

    #[test]
    fn thread_builder_and_spawn_scoped_are_caught() {
        let src = "fn f() {\n    std::thread::Builder::new();\n}\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec![LINT_THREAD]);
        let src2 = "fn f(s: &S) {\n    x.spawn_scoped(s, || {});\n}\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src2), vec![LINT_THREAD]);
    }

    #[test]
    fn structured_thread_scope_is_allowed() {
        let src = "fn f() {\n    std::thread::scope(|s| { let _ = s; });\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn spawn_in_a_string_literal_is_not_flagged() {
        // The line scanner handled single-line strings; the token scanner
        // also survives raw and multi-line ones.
        let src = "fn f() -> String {\n    format!(\"use thread::spawn like this\")\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
        let raw = "const HELP: &str = r#\"\n  std::thread::spawn(|| work());\n\"#;\n";
        assert!(lint_source("crates/core/src/x.rs", raw).is_empty());
    }

    // --- bounded-channels-only -------------------------------------------

    #[test]
    fn unbounded_channel_in_serve_is_caught() {
        let src = "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u32>();\n    let _ = (tx, rx);\n}\n";
        assert_eq!(lints_of("crates/serve/src/x.rs", src), vec![LINT_CHANNEL]);
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec![LINT_CHANNEL]);
    }

    #[test]
    fn sync_channel_passes_and_scope_is_path_limited() {
        let bounded = "fn f() {\n    let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(8);\n    let _ = (tx, rx);\n}\n";
        assert!(lint_source("crates/serve/src/x.rs", bounded).is_empty());
        let unbounded = "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u32>();\n    let _ = (tx, rx);\n}\n";
        assert!(lint_source("crates/bench/src/x.rs", unbounded).is_empty(), "other crates exempt");
    }

    // --- serve-panic-free ------------------------------------------------

    #[test]
    fn serve_unwrap_expect_println_are_caught() {
        let src = "fn f(o: Option<u32>) {\n    let v = o.unwrap();\n    let w = o.expect(\"present\");\n    println!(\"{v} {w}\");\n}\n";
        assert_eq!(
            lints_of("crates/serve/src/x.rs", src),
            vec![LINT_SERVE_PANIC, LINT_SERVE_PANIC, LINT_SERVE_PANIC]
        );
        assert!(lint_source("crates/core/src/x.rs", src).is_empty(), "serve-only scope");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(o: Option<u32>) -> u32 {\n    o.unwrap_or_else(|| 0) + o.unwrap_or(1)\n}\n";
        assert!(lint_source("crates/serve/src/x.rs", src).is_empty());
    }

    // Regression tests pinned to the allowlist entries the token scanner
    // made redundant (each was a line-based `serve-panic-free` /
    // `bounded-channels-only` exception; see the module doc).

    #[test]
    fn lock_unwrap_is_poison_propagation_not_a_violation() {
        // Was: `serve-panic-free crates/serve/ .lock().unwrap()`.
        let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock().unwrap()\n}\n";
        assert!(lint_source("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn condvar_wait_unwrap_is_poison_propagation_not_a_violation() {
        // Was: `serve-panic-free crates/serve/src/queue.rs .wait(inner).unwrap()`.
        let src = "fn f(c: &std::sync::Condvar, g: G) -> G {\n    c.wait(g).unwrap()\n}\n";
        assert!(lint_source("crates/serve/src/queue.rs", src).is_empty());
    }

    #[test]
    fn chained_unwrap_after_lock_unwrap_is_still_flagged() {
        // Only the poisoning unwrap is exempt; an unwrap on data pulled
        // out of the guard is a real panic path.
        let src = "fn f(m: &std::sync::Mutex<Vec<u32>>) -> u32 {\n    m.lock().unwrap().pop().unwrap()\n}\n";
        assert_eq!(lints_of("crates/serve/src/x.rs", src), vec![LINT_SERVE_PANIC]);
    }

    #[test]
    fn bin_drivers_are_out_of_serve_scope() {
        // Was: `serve-panic-free crates/serve/src/bin/rs-serve.rs println!`
        // and `bounded-channels-only crates/serve/src/bin/rs-serve.rs ...`.
        let src = "fn main() {\n    println!(\"ui\");\n    let (tx, rx) = std::sync::mpsc::channel::<u32>();\n    let _ = (tx, rx);\n    Some(3).unwrap();\n}\n";
        assert!(lint_source("crates/serve/src/bin/rs-serve.rs", src).is_empty());
        // The library right next to it keeps the full discipline.
        assert_eq!(
            lints_of("crates/serve/src/server.rs", src),
            vec![LINT_SERVE_PANIC, LINT_CHANNEL, LINT_SERVE_PANIC]
        );
    }

    // --- lock-order-consistent -------------------------------------------

    fn lock_order(files: &[(&str, &str)]) -> Vec<Violation> {
        let mut c = LockOrderCollector::new();
        for (path, src) in files {
            c.collect(path, src);
        }
        c.finish()
    }

    #[test]
    fn ab_ba_cycle_across_files_is_caught() {
        let f1 = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    let b = s.beta.lock().unwrap();\n    drop((a, b));\n}\n";
        let f2 = "fn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let a = s.alpha.lock().unwrap();\n    drop((b, a));\n}\n";
        let got = lock_order(&[("crates/serve/src/x.rs", f1), ("crates/serve/src/y.rs", f2)]);
        assert_eq!(got.len(), 2, "both closing edges report: {got:?}");
        assert!(got.iter().all(|v| v.lint == LINT_LOCK_ORDER));
        assert!(got[0].message.contains("alpha") && got[0].message.contains("beta"));
    }

    #[test]
    fn ab_ba_cycle_in_one_file_is_caught() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    let b = s.beta.lock().unwrap();\n    drop((a, b));\n}\nfn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let a = s.alpha.lock().unwrap();\n    drop((b, a));\n}\n";
        let got = lock_order(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    let b = s.beta.lock().unwrap();\n    drop((a, b));\n}\nfn g(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    let b = s.beta.lock().unwrap();\n    drop((a, b));\n}\n";
        assert!(lock_order(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn cycles_do_not_cross_crate_boundaries() {
        let f1 = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    let b = s.beta.lock().unwrap();\n    drop((a, b));\n}\n";
        let f2 = "fn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let a = s.alpha.lock().unwrap();\n    drop((b, a));\n}\n";
        assert!(
            lock_order(&[("crates/serve/src/x.rs", f1), ("crates/core/src/y.rs", f2)]).is_empty()
        );
    }

    #[test]
    fn statement_temporary_guard_dies_at_the_semicolon() {
        // Sequential statement-temporaries never overlap: this is the
        // `self.inner.lock().unwrap().field` accessor idiom.
        let src = "fn f(s: &S) -> usize {\n    s.alpha.lock().unwrap().len();\n    s.beta.lock().unwrap().len();\n    s.alpha.lock().unwrap().len()\n}\n";
        assert!(lock_order(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn let_bound_guard_scoped_in_a_block_releases_at_the_brace() {
        // The serve worker idiom: guard scoped tightly, then another lock.
        let src = "fn f(s: &S) {\n    {\n        let t = s.alpha.lock().unwrap();\n        drop(t);\n    }\n    {\n        let t = s.beta.lock().unwrap();\n        drop(t);\n    }\n    let a = s.beta.lock().unwrap();\n    drop(a);\n}\nfn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let a = s.alpha.lock().unwrap();\n    drop((b, a));\n}\n";
        assert!(lock_order(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn nested_let_guards_do_create_edges() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    {\n        let b = s.beta.lock().unwrap();\n        drop(b);\n    }\n    drop(a);\n}\nfn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let a = s.alpha.lock().unwrap();\n    drop((b, a));\n}\n";
        let got = lock_order(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(got.len(), 2, "nested block guard still holds alpha: {got:?}");
    }

    #[test]
    fn self_relock_is_a_self_deadlock() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    let b = s.alpha.lock().unwrap();\n    drop((a, b));\n}\n";
        let got = lock_order(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("self-deadlock"), "{}", got[0].message);
    }

    #[test]
    fn match_arms_do_not_leak_holds_into_each_other() {
        let src = "fn f(s: &S, x: u8) -> usize {\n    match x {\n        0 => s.alpha.lock().unwrap().len(),\n        _ => s.beta.lock().unwrap().len(),\n    }\n}\nfn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let a = s.alpha.lock().unwrap();\n    drop((b, a));\n}\n";
        assert!(lock_order(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn method_call_receivers_are_named_by_the_method() {
        let src = "fn f(s: &S) {\n    let a = s.shard_of(key).lock().unwrap();\n    let b = s.beta.lock().unwrap();\n    drop((a, b));\n}\nfn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let a = s.shard_of(key).lock().unwrap();\n    drop((b, a));\n}\n";
        let got = lock_order(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(got.len(), 2);
        assert!(got[0].message.contains("shard_of()"), "{}", got[0].message);
    }

    #[test]
    fn cfg_test_locks_are_exempt_from_lock_order() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(s: &S) {\n        let a = s.alpha.lock().unwrap();\n        let b = s.beta.lock().unwrap();\n        drop((a, b));\n    }\n    fn g(s: &S) {\n        let b = s.beta.lock().unwrap();\n        let a = s.alpha.lock().unwrap();\n        drop((b, a));\n    }\n}\n";
        assert!(lock_order(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn longer_cycles_are_found() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap();\n    let b = s.beta.lock().unwrap();\n    drop((a, b));\n}\nfn g(s: &S) {\n    let b = s.beta.lock().unwrap();\n    let c = s.gamma.lock().unwrap();\n    drop((b, c));\n}\nfn h(s: &S) {\n    let c = s.gamma.lock().unwrap();\n    let a = s.alpha.lock().unwrap();\n    drop((c, a));\n}\n";
        let got = lock_order(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(got.len(), 3, "every edge of the 3-cycle reports: {got:?}");
        assert!(got[0].message.contains(" -> "));
    }

    // --- test-code and comment exemptions --------------------------------

    #[test]
    fn cfg_test_module_is_exempt_from_all_lints() {
        let src = concat!(
            "pub fn prod() {}\n",
            "\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        let v = Some(3).unwrap();\n",
            "        std::thread::spawn(move || v);\n",
            "        let (tx, _rx) = std::sync::mpsc::channel::<u32>();\n",
            "        drop(tx);\n",
            "    }\n",
            "}\n",
        );
        assert!(lint_source("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_module_is_linted_again() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() {}\n",
            "}\n",
            "\n",
            "pub fn prod(o: Option<u32>) -> u32 {\n",
            "    o.unwrap()\n",
            "}\n",
        );
        assert_eq!(lints_of("crates/serve/src/x.rs", src), vec![LINT_SERVE_PANIC]);
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\npub fn prod(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
        assert_eq!(lints_of("crates/serve/src/x.rs", src), vec![LINT_SERVE_PANIC]);
    }

    #[test]
    fn doc_comments_and_strings_do_not_trigger() {
        let src = concat!(
            "//! Example: `rx.recv().unwrap()` and mpsc::channel() in prose.\n",
            "/// Call `.unwrap()` — also prose. Ordering::Relaxed in docs.\n",
            "pub fn f() -> &'static str {\n",
            "    \"contains .unwrap() and Ordering::Relaxed and unsafe tokens\"\n",
            "}\n",
        );
        assert!(lint_source("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn nested_block_comments_are_fully_stripped() {
        // The line scanner's `code_portion` lost track of nesting; the
        // lexer counts depth, so the inner close does not resurface code.
        let src = "/* outer /* unsafe { } */ Ordering::Relaxed still comment */\npub fn f() {}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn double_quote_char_literal_does_not_hide_following_code() {
        // `'"'` confused quote-tracking scanners: everything after it
        // looked like a string. The unwrap after it must still be seen.
        let src = "fn f(o: Option<u32>) -> u32 {\n    let _q = '\"';\n    o.unwrap()\n}\n";
        assert_eq!(lints_of("crates/serve/src/x.rs", src), vec![LINT_SERVE_PANIC]);
    }

    #[test]
    fn violation_carries_location_span_and_text() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = &lint_source("crates/par/src/deque.rs", src)[0];
        assert_eq!((v.file.as_str(), v.line, v.col), ("crates/par/src/deque.rs", 2, 5));
        assert_eq!(v.span, "unsafe".len());
        assert_eq!(v.text, "unsafe { *p }");
        assert_eq!(v.text_col, 1);
        assert!(v.message.contains("SAFETY"));
    }

    #[test]
    fn allowlist_text_is_the_violating_tokens_line() {
        // A multi-line call: the violating `expect` token's line is what
        // the allowlist matches, not the line the statement started on.
        let src = "fn f(o: Option<u32>) -> u32 {\n    o\n        .expect(\"present\")\n}\n";
        let v = &lint_source("crates/serve/src/x.rs", src)[0];
        assert_eq!(v.line, 3);
        assert_eq!(v.text, ".expect(\"present\")");
    }
}
