//! The lint suite behind `cargo xtask check`.
//!
//! Five line-based checks over workspace + vendor sources, tuned to the
//! concurrency invariants this repo's serving stack depends on:
//!
//! * [`LINT_UNSAFE`] — every `unsafe` block/fn/impl carries a `// SAFETY:`
//!   comment (or a `# Safety` doc section) in the comment block directly
//!   above it. Backed by `clippy::undocumented_unsafe_blocks` at the
//!   workspace level; this lint additionally covers `unsafe fn` and runs
//!   without a full build.
//! * [`LINT_ORDERING`] — every non-`SeqCst` atomic `Ordering::` use carries
//!   an `// ORDERING:` justification, trailing or in the comment block
//!   above (one comment may cover a contiguous cluster of atomic lines).
//!   Relaxed/Acquire/Release choices are exactly where weak-memory races
//!   hide; the comment forces each one to state why it is sufficient.
//! * [`LINT_THREAD`] — no `std::thread::spawn` / `thread::Builder` /
//!   `spawn_scoped` outside `rs_par::scope`: dedicated service threads
//!   must go through the one abstraction that joins them and propagates
//!   panics (pool workers must never run blocking service loops).
//! * [`LINT_CHANNEL`] — no unbounded `mpsc::channel()` in `crates/serve`
//!   or `crates/core`: bounded backpressure end-to-end is a PR-6
//!   invariant; an unbounded buffer silently reintroduces O(batch) memory.
//! * [`LINT_SERVE_PANIC`] — no `unwrap()` / `expect()` / `println!` in
//!   non-test `crates/serve` code: the server loop must degrade, not
//!   abort, and speaks through replies/stats, not stdout.
//!
//! Test code is exempt everywhere: files under `tests/` or `benches/`
//! never reach [`lint_source`], and `#[cfg(test)]` items inside source
//! files are skipped by a brace-counting region tracker. Doc comments and
//! string literals are stripped before token matching, so lints don't
//! fire on prose or on this file's own pattern constants.
//!
//! The scanner is line-oriented by design (no syn, no registry access):
//! its known blind spots are multi-line raw string literals in non-test
//! code (none in this workspace) — the checked-in allowlist is the escape
//! hatch if one ever appears.

/// `unsafe` without an adjacent `// SAFETY:` justification.
pub const LINT_UNSAFE: &str = "unsafe-safety-comment";
/// Non-`SeqCst` atomic ordering without an `// ORDERING:` justification.
pub const LINT_ORDERING: &str = "ordering-justified";
/// Thread spawn primitives outside `rs_par::scope`.
pub const LINT_THREAD: &str = "scoped-threads-only";
/// Unbounded `mpsc::channel()` on the serving path.
pub const LINT_CHANNEL: &str = "bounded-channels-only";
/// Panic/print escape hatches in the server loop.
pub const LINT_SERVE_PANIC: &str = "serve-panic-free";

/// Every lint, for per-lint reporting.
pub const ALL_LINTS: [&str; 5] =
    [LINT_UNSAFE, LINT_ORDERING, LINT_THREAD, LINT_CHANNEL, LINT_SERVE_PANIC];

/// One finding: `file:line` plus the offending text and what to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired (one of [`ALL_LINTS`]).
    pub lint: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The raw source line, trimmed.
    pub text: String,
    /// Human-readable explanation + fix.
    pub message: String,
}

/// A classified source line.
struct Line {
    /// Original text (comments included) — justification markers and
    /// allowlist substrings match against this.
    raw: String,
    /// Code only: string literals blanked, `//` and `/* */` comments
    /// removed. Token matching happens here.
    code: String,
    /// Comment-only line (`//`, `///`, `//!`, or inside a block comment).
    comment: bool,
    /// Attribute-only line (`#[...]` / `#![...]`).
    attr: bool,
    /// Inside a `#[cfg(test)]` item.
    test: bool,
}

/// Strips string literals and comments from one line, tracking block
/// comment state across lines. Returns the code portion and the updated
/// in-block-comment state.
fn code_portion(line: &str, mut in_block: bool) -> (String, bool) {
    let bytes: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if in_block {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
            '/' if bytes.get(i + 1) == Some(&'*') => {
                in_block = true;
                i += 2;
            }
            '"' => {
                // Skip the string literal, honouring escapes. Multi-line
                // strings are a documented blind spot (none in non-test
                // code here).
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str("\"\"");
            }
            '\'' => {
                // Char literal vs lifetime: 'x' / '\n' are skipped whole,
                // 'a (lifetime) passes through.
                if bytes.get(i + 1) == Some(&'\\') && bytes.get(i + 3) == Some(&'\'') {
                    i += 4;
                } else if bytes.get(i + 2) == Some(&'\'') {
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, in_block)
}

/// Splits `source` into classified [`Line`]s, marking `#[cfg(test)]`
/// regions by brace counting (armed by the attribute, opened by the next
/// code line containing `{`, closed when the depth returns to zero).
fn classify(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut in_block = false;
    for raw in source.lines() {
        let was_in_block = in_block;
        let (code, now_in_block) = code_portion(raw, in_block);
        in_block = now_in_block;
        let trimmed = raw.trim_start();
        let comment = trimmed.starts_with("//") || (was_in_block && code.trim().is_empty());
        let attr = !comment && (trimmed.starts_with("#[") || trimmed.starts_with("#!["));
        lines.push(Line { raw: raw.to_string(), code, comment, attr, test: false });
    }

    // Mark #[cfg(test)] items.
    let mut armed = false;
    let mut depth: i64 = 0;
    let mut counting = false;
    for line in lines.iter_mut() {
        if counting {
            line.test = true;
            depth += brace_delta(&line.code);
            if depth <= 0 {
                counting = false;
            }
            continue;
        }
        if armed {
            if line.comment || line.attr {
                line.test = true;
                continue;
            }
            line.test = true;
            depth = brace_delta(&line.code);
            if line.code.contains('{') {
                armed = false;
                counting = depth > 0;
            } else if line.code.contains(';') {
                armed = false; // e.g. `mod tests;`
            }
            continue;
        }
        if line.code.contains("#[cfg(test)]") || line.code.contains("cfg(all(test") {
            line.test = true;
            armed = true;
        }
    }
    lines
}

fn brace_delta(code: &str) -> i64 {
    code.chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum()
}

/// True when `code` contains `word` delimited by non-identifier chars.
fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

/// Looks for any of `markers` on the flagged line itself (trailing
/// comment) or in the contiguous comment/attribute block directly above.
/// Lines for which `skip` returns true extend the walk (used to let one
/// `// ORDERING:` comment cover a cluster of consecutive atomic lines).
fn justified(lines: &[Line], i: usize, markers: &[&str], skip: impl Fn(&Line) -> bool) -> bool {
    let contains = |raw: &str| markers.iter().any(|m| raw.contains(m));
    if contains(&lines[i].raw) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.comment || l.attr || skip(l) {
            if contains(&l.raw) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// Non-`SeqCst` atomic ordering tokens.
const WEAK_ORDERINGS: [&str; 4] =
    ["Ordering::Relaxed", "Ordering::Acquire", "Ordering::Release", "Ordering::AcqRel"];

/// Thread-spawn primitives that must stay inside `rs_par::scope` (and the
/// pool itself, via the allowlist).
const SPAWN_TOKENS: [&str; 3] = ["thread::spawn", "thread::Builder", "spawn_scoped"];

/// Runs every lint over one file. `path` must be workspace-relative with
/// forward slashes (it selects which path-scoped lints apply). Files
/// under `tests/` or `benches/` are the caller's job to exclude.
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let mut out = Vec::new();
    let serve_scope = path.starts_with("crates/serve/");
    let channel_scope = serve_scope || path.starts_with("crates/core/");

    for (idx, line) in lines.iter().enumerate() {
        if line.comment || line.test {
            continue;
        }
        let code = line.code.as_str();
        let lineno = idx + 1;
        let mut push = |lint: &'static str, message: String| {
            out.push(Violation {
                lint,
                file: path.to_string(),
                line: lineno,
                text: line.raw.trim().to_string(),
                message,
            });
        };

        // unsafe-safety-comment: skip `unsafe fn(` — a bare function
        // *pointer type*, not an unsafe operation site.
        if let Some(at) = find_word(code, "unsafe") {
            let tail: String = code[at..].split_whitespace().collect::<Vec<_>>().join(" ");
            let is_fn_pointer_type = tail.starts_with("unsafe fn(");
            if !is_fn_pointer_type
                && !justified(&lines, idx, &["SAFETY:", "# Safety"], |l| {
                    has_word(&l.code, "unsafe")
                })
            {
                push(
                    LINT_UNSAFE,
                    "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                     directly above — state the invariant that makes this sound"
                        .to_string(),
                );
            }
        }

        // ordering-justified. The upward walk treats other atomic lines
        // and `model::yield_point()` instrumentation as transparent, so
        // one comment can cover a contiguous cluster of atomics with
        // schedule-fuzz probes between them.
        if WEAK_ORDERINGS.iter().any(|t| code.contains(t))
            && !justified(&lines, idx, &["ORDERING:"], |l| {
                l.code.contains("Ordering::") || l.code.contains("yield_point()")
            })
        {
            push(
                LINT_ORDERING,
                "non-SeqCst atomic ordering without an `// ORDERING:` justification — \
                 say why this weakening cannot lose a cross-thread visibility edge"
                    .to_string(),
            );
        }

        // scoped-threads-only
        if let Some(tok) = SPAWN_TOKENS.iter().find(|t| code.contains(*t)) {
            push(
                LINT_THREAD,
                format!(
                    "`{tok}` outside `rs_par::scope` — dedicated threads must be spawned \
                     through the scoped abstraction that joins them and rethrows panics"
                ),
            );
        }

        // bounded-channels-only (serving path)
        if channel_scope && code.contains("mpsc::channel") {
            push(
                LINT_CHANNEL,
                "unbounded `mpsc::channel()` on the serving path — use `mpsc::sync_channel` \
                 (or BoundedQueue) so backpressure stays bounded end-to-end"
                    .to_string(),
            );
        }

        // serve-panic-free
        if serve_scope {
            for (tok, what) in
                [(".unwrap()", "unwrap()"), (".expect(", "expect()"), ("println!", "println!")]
            {
                if code.contains(tok) {
                    push(
                        LINT_SERVE_PANIC,
                        format!(
                            "`{what}` in non-test serve code — the server loop must degrade \
                             (reject/ignore) rather than abort, and report through stats"
                        ),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|v| v.lint).collect()
    }

    // --- unsafe-safety-comment -------------------------------------------

    #[test]
    fn unsafe_without_comment_is_caught() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let got = lint_source("crates/par/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lint, LINT_UNSAFE);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn safety_comment_above_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_doc_section_passes_for_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) {}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_safety_comment_passes() {
        let src =
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid per contract\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_flagged() {
        let src = "struct H {\n    execute: unsafe fn(*const H),\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let src = "unsafe impl Send for X {}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_UNSAFE]);
        let ok = "// SAFETY: X owns no thread-affine state.\nunsafe impl Send for X {}\n";
        assert!(lint_source("crates/par/src/x.rs", ok).is_empty());
    }

    #[test]
    fn attribute_between_comment_and_unsafe_is_transparent() {
        let src = "// SAFETY: exclusive access per the latch protocol.\n#[allow(dead_code)]\nunsafe fn g() {}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn word_unsafe_embedded_in_identifier_is_ignored() {
        let src = "fn f() {\n    let unsafe_count = 0;\n    let _ = unsafe_count;\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    // --- ordering-justified ----------------------------------------------

    #[test]
    fn relaxed_without_justification_is_caught() {
        let src =
            "fn f(a: &std::sync::atomic::AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_ORDERING]);
    }

    #[test]
    fn ordering_comment_covers_a_cluster() {
        let src = "fn f(a: &A, b: &A) {\n    // ORDERING: counters are advisory; no data is published through them.\n    a.store(1, Ordering::Relaxed);\n    b.store(2, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn yield_point_lines_are_transparent_to_the_cluster_walk() {
        let src = "fn f(a: &A, b: &A) {\n    // ORDERING: advisory pair.\n    a.store(1, Ordering::Relaxed);\n    model::yield_point();\n    b.store(2, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_ordering_comment_passes() {
        let src = "fn f(a: &A) {\n    a.load(Ordering::Acquire) // ORDERING: pairs with the Release in set()\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn seqcst_needs_no_justification() {
        let src = "fn f(a: &A) {\n    a.load(Ordering::SeqCst);\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic_ordering() {
        let src = "fn f(x: u8) -> std::cmp::Ordering {\n    match x.cmp(&3) {\n        std::cmp::Ordering::Less => std::cmp::Ordering::Less,\n        o => o,\n    }\n}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn mixed_seqcst_and_relaxed_compare_exchange_is_flagged() {
        let src = "fn f(a: &A) {\n    a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed);\n}\n";
        assert_eq!(lints_of("crates/par/src/x.rs", src), vec![LINT_ORDERING]);
    }

    // --- scoped-threads-only ---------------------------------------------

    #[test]
    fn bare_thread_spawn_is_caught_everywhere() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec![LINT_THREAD]);
        assert_eq!(lints_of("vendor/rayon/src/x.rs", src), vec![LINT_THREAD]);
    }

    #[test]
    fn thread_builder_and_spawn_scoped_are_caught() {
        let src = "fn f() {\n    std::thread::Builder::new();\n}\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec![LINT_THREAD]);
        let src2 = "fn f(s: &S) {\n    x.spawn_scoped(s, || {});\n}\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src2), vec![LINT_THREAD]);
    }

    #[test]
    fn structured_thread_scope_is_allowed() {
        let src = "fn f() {\n    std::thread::scope(|s| { let _ = s; });\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    // --- bounded-channels-only -------------------------------------------

    #[test]
    fn unbounded_channel_in_serve_is_caught() {
        let src = "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u32>();\n    let _ = (tx, rx);\n}\n";
        assert_eq!(lints_of("crates/serve/src/x.rs", src), vec![LINT_CHANNEL]);
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec![LINT_CHANNEL]);
    }

    #[test]
    fn sync_channel_passes_and_scope_is_path_limited() {
        let bounded = "fn f() {\n    let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(8);\n    let _ = (tx, rx);\n}\n";
        assert!(lint_source("crates/serve/src/x.rs", bounded).is_empty());
        let unbounded = "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u32>();\n    let _ = (tx, rx);\n}\n";
        assert!(lint_source("crates/bench/src/x.rs", unbounded).is_empty(), "other crates exempt");
    }

    // --- serve-panic-free ------------------------------------------------

    #[test]
    fn serve_unwrap_expect_println_are_caught() {
        let src = "fn f(o: Option<u32>) {\n    let v = o.unwrap();\n    let w = o.expect(\"present\");\n    println!(\"{v} {w}\");\n}\n";
        assert_eq!(
            lints_of("crates/serve/src/x.rs", src),
            vec![LINT_SERVE_PANIC, LINT_SERVE_PANIC, LINT_SERVE_PANIC]
        );
        assert!(lint_source("crates/core/src/x.rs", src).is_empty(), "serve-only scope");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(o: Option<u32>) -> u32 {\n    o.unwrap_or_else(|| 0) + o.unwrap_or(1)\n}\n";
        assert!(lint_source("crates/serve/src/x.rs", src).is_empty());
    }

    // --- test-code and comment exemptions --------------------------------

    #[test]
    fn cfg_test_module_is_exempt_from_all_lints() {
        let src = concat!(
            "pub fn prod() {}\n",
            "\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        let v = Some(3).unwrap();\n",
            "        std::thread::spawn(move || v);\n",
            "        let (tx, _rx) = std::sync::mpsc::channel::<u32>();\n",
            "        drop(tx);\n",
            "    }\n",
            "}\n",
        );
        assert!(lint_source("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_module_is_linted_again() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() {}\n",
            "}\n",
            "\n",
            "pub fn prod(o: Option<u32>) -> u32 {\n",
            "    o.unwrap()\n",
            "}\n",
        );
        assert_eq!(lints_of("crates/serve/src/x.rs", src), vec![LINT_SERVE_PANIC]);
    }

    #[test]
    fn doc_comments_and_strings_do_not_trigger() {
        let src = concat!(
            "//! Example: `rx.recv().unwrap()` and mpsc::channel() in prose.\n",
            "/// Call `.unwrap()` — also prose. Ordering::Relaxed in docs.\n",
            "pub fn f() -> &'static str {\n",
            "    \"contains .unwrap() and Ordering::Relaxed and unsafe tokens\"\n",
            "}\n",
        );
        assert!(lint_source("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn block_comments_are_stripped() {
        let src = "/* unsafe { } Ordering::Relaxed\n   more comment */\npub fn f() {}\n";
        assert!(lint_source("crates/par/src/x.rs", src).is_empty());
    }

    #[test]
    fn violation_carries_location_and_text() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = &lint_source("crates/par/src/deque.rs", src)[0];
        assert_eq!((v.file.as_str(), v.line), ("crates/par/src/deque.rs", 2));
        assert_eq!(v.text, "unsafe { *p }");
        assert!(v.message.contains("SAFETY"));
    }
}
