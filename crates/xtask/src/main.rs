//! Workspace dev tasks.
//!
//! * `cargo xtask check` runs the token-level concurrency lint suite
//!   over workspace + vendor sources (see `lints.rs` for the rules,
//!   `tokens.rs` for the lexer underneath, `xtask-allowlist.txt` at the
//!   repo root for deliberate exceptions).
//! * `cargo xtask replay [--strict] <trace>` re-executes a schedule
//!   trace recorded by a failing (or `RS_RECORD_TRACE`d) `schedule_fuzz`
//!   stress test: it reads the trace header and spawns the exact
//!   `cargo test` invocation for that scenario with `RS_REPLAY_TRACE`
//!   pointing at the file, so the model layer feeds the recorded yield
//!   decisions back in order.
//!
//! Exit status: 0 clean, 1 on violations / stale allowlist / failed
//! replay, 2 on usage errors.

mod allowlist;
mod lints;
mod tokens;
mod trace;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(),
        Some("replay") => run_replay(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            usage()
        }
        None => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask check");
    eprintln!("       cargo xtask replay [--strict] <trace-file>");
    ExitCode::from(2)
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Collects the `.rs` files the lints cover: everything under `src/`,
/// `crates/`, `vendor/`, and `examples/`, excluding `tests/`, `benches/`,
/// and `target/` directories (integration tests and benches are exempt
/// by policy, target is build output).
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["src", "crates", "vendor", "examples"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "tests" || name == "benches" || name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn run_check() -> ExitCode {
    let root = workspace_root();

    let allowlist_path = root.join("xtask-allowlist.txt");
    let allowlist_text = fs::read_to_string(&allowlist_path).unwrap_or_default();
    let mut entries = match allowlist::parse(&allowlist_text) {
        Ok(entries) => entries,
        Err(errors) => {
            for e in &errors {
                eprintln!("error: {e}");
            }
            return ExitCode::from(1);
        }
    };

    let files = collect_sources(&root);
    let mut violations = Vec::new();
    let mut lock_order = lints::LockOrderCollector::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else { continue };
        let rel = path.strip_prefix(&root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        scanned += 1;
        violations.extend(lints::lint_source(&rel, &source));
        lock_order.collect(&rel, &source);
    }
    violations.extend(lock_order.finish());

    let (kept, suppressed) = allowlist::filter(violations, &mut entries);
    let stale = allowlist::stale(&entries);

    for v in &kept {
        println!("{}:{}:{}: [{}] {}", v.file, v.line, v.col, v.lint, v.message);
        println!("    {}", v.text);
        println!("    {}{}", " ".repeat(v.text_col.saturating_sub(1)), "^".repeat(v.span.max(1)));
    }
    for msg in &stale {
        eprintln!("error: {msg}");
    }

    if kept.is_empty() && stale.is_empty() {
        println!(
            "xtask check: {scanned} files clean ({} allowlisted exception{})",
            suppressed,
            if suppressed == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        let mut per_lint = String::new();
        for lint in lints::ALL_LINTS {
            let n = kept.iter().filter(|v| v.lint == lint).count();
            if n > 0 {
                per_lint.push_str(&format!(" {lint}={n}"));
            }
        }
        eprintln!(
            "xtask check: {} violation{} in {scanned} files{per_lint} ({} stale allowlist entr{})",
            kept.len(),
            if kept.len() == 1 { "" } else { "s" },
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" },
        );
        ExitCode::from(1)
    }
}

/// `cargo xtask replay [--strict] <trace>` — re-run the recorded
/// scenario with the trace's decisions fed back in.
fn run_replay(args: &[String]) -> ExitCode {
    let mut strict = false;
    let mut path: Option<&str> = None;
    for a in args {
        match a.as_str() {
            "--strict" => strict = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("xtask replay: unexpected argument `{other}`");
                return usage();
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };

    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask replay: cannot read `{path}`: {e}");
            return ExitCode::from(1);
        }
    };
    let trace = match trace::Trace::parse(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask replay: `{path}` is not a schedule trace: {e}");
            return ExitCode::from(1);
        }
    };

    println!(
        "xtask replay: {} / {} / {} — seed {}, {} decision{} ({} yield{}){}",
        trace.package,
        trace.target,
        trace.scenario,
        trace.seed,
        trace.decisions.len(),
        if trace.decisions.len() == 1 { "" } else { "s" },
        trace.yields_taken,
        if trace.yields_taken == 1 { "" } else { "s" },
        if strict { ", strict" } else { "" },
    );

    let abs = fs::canonicalize(path).unwrap_or_else(|_| PathBuf::from(path));
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(workspace_root())
        .arg("test")
        .arg("-p")
        .arg(&trace.package)
        .arg("--test")
        .arg(&trace.target)
        .arg("--features")
        .arg(format!("{}/schedule_fuzz", trace.package))
        .arg(&trace.scenario)
        .arg("--")
        .arg("--exact")
        .arg("--nocapture")
        .env("RS_REPLAY_TRACE", &abs);
    if strict {
        cmd.env("RS_REPLAY_STRICT", "1");
    }
    if !trace.threads_env.is_empty() {
        cmd.env("RS_NUM_THREADS", &trace.threads_env);
    }

    match cmd.status() {
        Ok(status) if status.success() => {
            println!("xtask replay: scenario completed under the recorded schedule");
            ExitCode::SUCCESS
        }
        Ok(status) => {
            eprintln!("xtask replay: scenario failed under the recorded schedule ({status})");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("xtask replay: failed to spawn cargo: {e}");
            ExitCode::from(1)
        }
    }
}
