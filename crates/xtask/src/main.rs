//! Workspace dev tasks. `cargo xtask check` runs the concurrency lint
//! suite over workspace + vendor sources (see `lints.rs` for the rules,
//! `xtask-allowlist.txt` at the repo root for deliberate exceptions).
//!
//! Exit status: 0 clean, 1 on violations or a stale/invalid allowlist,
//! 2 on usage errors.

mod allowlist;
mod lints;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            eprintln!("usage: cargo xtask check");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask check");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Collects the `.rs` files the lints cover: everything under `src/`,
/// `crates/`, `vendor/`, and `examples/`, excluding `tests/`, `benches/`,
/// and `target/` directories (integration tests and benches are exempt
/// by policy, target is build output).
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["src", "crates", "vendor", "examples"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "tests" || name == "benches" || name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn run_check() -> ExitCode {
    let root = workspace_root();

    let allowlist_path = root.join("xtask-allowlist.txt");
    let allowlist_text = fs::read_to_string(&allowlist_path).unwrap_or_default();
    let mut entries = match allowlist::parse(&allowlist_text) {
        Ok(entries) => entries,
        Err(errors) => {
            for e in &errors {
                eprintln!("error: {e}");
            }
            return ExitCode::from(1);
        }
    };

    let files = collect_sources(&root);
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else { continue };
        let rel = path.strip_prefix(&root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        scanned += 1;
        violations.extend(lints::lint_source(&rel, &source));
    }

    let (kept, suppressed) = allowlist::filter(violations, &mut entries);
    let stale = allowlist::stale(&entries);

    for v in &kept {
        println!("{}:{}: [{}] {}", v.file, v.line, v.lint, v.message);
        println!("    {}", v.text);
    }
    for msg in &stale {
        eprintln!("error: {msg}");
    }

    if kept.is_empty() && stale.is_empty() {
        println!(
            "xtask check: {scanned} files clean ({} allowlisted exception{})",
            suppressed,
            if suppressed == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        let mut per_lint = String::new();
        for lint in lints::ALL_LINTS {
            let n = kept.iter().filter(|v| v.lint == lint).count();
            if n > 0 {
                per_lint.push_str(&format!(" {lint}={n}"));
            }
        }
        eprintln!(
            "xtask check: {} violation{} in {scanned} files{per_lint} ({} stale allowlist entr{})",
            kept.len(),
            if kept.len() == 1 { "" } else { "s" },
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" },
        );
        ExitCode::from(1)
    }
}
