//! The checked-in exception list for `cargo xtask check`.
//!
//! Format of `xtask-allowlist.txt`, one entry per line:
//!
//! ```text
//! <lint-name> <path> [substring]
//! ```
//!
//! * `lint-name` — one of the names in [`crate::lints::ALL_LINTS`].
//! * `path` — workspace-relative, forward slashes. A trailing `/` makes
//!   it a directory prefix covering every file underneath.
//! * `substring` (optional, rest of line) — the entry only suppresses
//!   violations whose *violating token's line* contains it (the trimmed
//!   source line the flagged token starts on — for a construct split
//!   across lines by rustfmt, that is the token's own line, not the
//!   line the statement began on). Omitted = every violation of that
//!   lint in that path.
//!
//! `#`-prefixed lines and blank lines are comments. Every entry must
//! suppress at least one violation — stale entries are reported as
//! errors so the allowlist can only shrink or stay honest, never rot.

use crate::lints::{Violation, ALL_LINTS};

/// One parsed allowlist entry plus its match count for staleness checks.
#[derive(Debug)]
pub struct Entry {
    pub lint: String,
    pub path: String,
    pub substring: Option<String>,
    /// Source line in the allowlist file, for error reporting.
    pub src_line: usize,
    pub hits: usize,
}

impl Entry {
    fn matches(&self, v: &Violation) -> bool {
        if self.lint != v.lint {
            return false;
        }
        let path_ok = if self.path.ends_with('/') {
            v.file.starts_with(&self.path)
        } else {
            v.file == self.path
        };
        if !path_ok {
            return false;
        }
        match &self.substring {
            Some(s) => v.text.contains(s.as_str()),
            None => true,
        }
    }
}

/// Parses the allowlist text. Returns entries or per-line error strings.
pub fn parse(text: &str) -> Result<Vec<Entry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let lint = parts.next().unwrap_or_default().to_string();
        let path = parts.next().unwrap_or_default().to_string();
        let substring = parts.next().map(|s| s.trim().to_string()).filter(|s| !s.is_empty());
        if !ALL_LINTS.contains(&lint.as_str()) {
            errors.push(format!(
                "xtask-allowlist.txt:{}: unknown lint `{lint}` (known: {})",
                idx + 1,
                ALL_LINTS.join(", ")
            ));
            continue;
        }
        if path.is_empty() || path.starts_with('/') || path.contains('\\') {
            errors.push(format!(
                "xtask-allowlist.txt:{}: bad path `{path}` (workspace-relative, forward slashes)",
                idx + 1
            ));
            continue;
        }
        entries.push(Entry { lint, path, substring, src_line: idx + 1, hits: 0 });
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// Splits `violations` into (kept, suppressed-count), bumping hit counts
/// on the entries that matched.
pub fn filter(violations: Vec<Violation>, entries: &mut [Entry]) -> (Vec<Violation>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0;
    for v in violations {
        match entries.iter_mut().find(|e| e.matches(&v)) {
            Some(e) => {
                e.hits += 1;
                suppressed += 1;
            }
            None => kept.push(v),
        }
    }
    (kept, suppressed)
}

/// Error strings for entries that matched nothing.
pub fn stale(entries: &[Entry]) -> Vec<String> {
    entries
        .iter()
        .filter(|e| e.hits == 0)
        .map(|e| {
            format!(
                "xtask-allowlist.txt:{}: stale entry (`{} {}{}` suppressed nothing) — remove it",
                e.src_line,
                e.lint,
                e.path,
                e.substring.as_deref().map(|s| format!(" {s}")).unwrap_or_default()
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{LINT_SERVE_PANIC, LINT_THREAD};

    fn violation(lint: &'static str, file: &str, text: &str) -> Violation {
        Violation {
            lint,
            file: file.to_string(),
            line: 1,
            col: 1,
            span: 1,
            text: text.to_string(),
            text_col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_comments_and_substrings() {
        let txt = "# comment\n\nscoped-threads-only crates/par/src/scope.rs\nserve-panic-free crates/serve/ .lock().unwrap()\n";
        let entries = parse(txt).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].substring, None);
        assert_eq!(entries[1].substring.as_deref(), Some(".lock().unwrap()"));
        assert_eq!(entries[1].src_line, 4);
    }

    #[test]
    fn rejects_unknown_lints_and_bad_paths() {
        let errs = parse("no-such-lint crates/par/src/x.rs\nscoped-threads-only /abs/path.rs\n")
            .unwrap_err();
        assert_eq!(errs.len(), 2);
        assert!(errs[0].contains("unknown lint"));
        assert!(errs[1].contains("bad path"));
    }

    #[test]
    fn exact_path_and_prefix_matching() {
        let mut entries =
            parse("scoped-threads-only crates/par/src/scope.rs\nserve-panic-free crates/serve/\n")
                .unwrap();
        let vs = vec![
            violation(LINT_THREAD, "crates/par/src/scope.rs", "spawn_scoped"),
            violation(LINT_THREAD, "crates/par/src/worker.rs", "spawn_scoped"),
            violation(LINT_SERVE_PANIC, "crates/serve/src/cache.rs", "x.unwrap()"),
        ];
        let (kept, suppressed) = filter(vs, &mut entries);
        assert_eq!(suppressed, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].file, "crates/par/src/worker.rs");
    }

    #[test]
    fn substring_entries_only_match_that_text() {
        let mut entries = parse("serve-panic-free crates/serve/ .lock().unwrap()\n").unwrap();
        let vs = vec![
            violation(LINT_SERVE_PANIC, "crates/serve/src/queue.rs", "self.inner.lock().unwrap()"),
            violation(LINT_SERVE_PANIC, "crates/serve/src/queue.rs", "opt.unwrap()"),
        ];
        let (kept, suppressed) = filter(vs, &mut entries);
        assert_eq!((kept.len(), suppressed), (1, 1));
        assert_eq!(kept[0].text, "opt.unwrap()");
    }

    #[test]
    fn unused_entries_are_reported_stale() {
        let mut entries = parse("scoped-threads-only crates/par/src/scope.rs\n").unwrap();
        let (_, suppressed) = filter(Vec::new(), &mut entries);
        assert_eq!(suppressed, 0);
        let msgs = stale(&entries);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("stale entry"));
    }
}
