//! A dependency-free Rust lexer with byte-accurate spans.
//!
//! This is the token layer under the `cargo xtask check` lints (see
//! `lints.rs`). It is *not* a full Rust lexer — no float-suffix
//! splitting, no shebang handling — but it is exact about the things a
//! source-discipline linter must never get wrong:
//!
//! * **string literals** — plain, byte (`b".."`), C (`c".."`), and raw
//!   (`r".."` / `r###"..."###`, with `br`/`cr` prefixes), including
//!   multi-line bodies, so `"thread::spawn"` in a string never looks
//!   like code;
//! * **comments** — line (`//`, with `///` / `//!` doc detection) and
//!   *nested* block comments (`/* /* */ */`), with doc detection, so a
//!   lint pattern quoted in prose never fires;
//! * **char literals vs lifetimes** — `'"'`, `'\''`, `'\u{1F600}'` are
//!   literals; `'a` in `<'a>` is a lifetime;
//! * **raw identifiers** — `r#match` is one identifier, not the start
//!   of a raw string.
//!
//! Every token carries its byte span plus the 1-based line and byte
//! column of its first byte (and the line of its last byte, for
//! multi-line tokens), so lints report `file:line:col` with a span
//! length and the allowlist can match against the violating token's own
//! line.

/// What a [`Token`] is. Comments are tokens here (the lints need them
/// for justification-marker searches); whitespace is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `'"'`, `'\''`, `b'\n'`).
    CharLit,
    /// Non-raw string literal, including `b".."` and `c".."`.
    StrLit,
    /// Raw string literal (`r".."`, `r#".."#`, `br#".."#`, `cr".."`).
    RawStrLit,
    /// Numeric literal (integer or float, suffix included).
    NumLit,
    /// `//` comment; `doc` for `///` (not `////`) and `//!`.
    LineComment {
        /// Doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* */` comment (nesting handled); `doc` for `/**` and `/*!`.
    BlockComment {
        /// Doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// Any single other non-whitespace character (`:`, `{`, `#`, …).
    Punct,
}

impl TokenKind {
    /// True for line and block comments, doc or not.
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment { .. } | TokenKind::BlockComment { .. })
    }
}

/// One lexed token with a byte-accurate span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based byte column of the first byte within its line.
    pub col: usize,
    /// 1-based line of the last byte (differs from `line` for
    /// multi-line strings and block comments).
    pub end_line: usize,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Span length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }
}

/// Lexes `src` into tokens (whitespace dropped, comments kept). Never
/// fails: unterminated literals/comments run to end of input, and any
/// stray byte becomes a [`TokenKind::Punct`].
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { chars: src.char_indices().collect(), src_len: src.len(), i: 0, line: 1, col: 1 }.run()
}

struct Lexer {
    /// `(byte offset, char)` for the whole input.
    chars: Vec<(usize, char)>,
    src_len: usize,
    /// Index into `chars`.
    i: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars.get(self.i).map_or(self.src_len, |&(o, _)| o)
    }

    /// Consumes one char, maintaining line/col (col counts bytes).
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += c.len_utf8();
            }
        }
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.offset(), self.line, self.col);
            let kind = self.next_kind(c);
            let end_line =
                if self.col == 1 && self.line > line { self.line - 1 } else { self.line };
            out.push(Token { kind, start, end: self.offset(), line, col, end_line });
        }
        out
    }

    /// Lexes one token starting at `c`; consumes it fully.
    fn next_kind(&mut self, c: char) -> TokenKind {
        match c {
            '/' if self.peek(1) == Some('/') => self.line_comment(),
            '/' if self.peek(1) == Some('*') => self.block_comment(),
            '\'' => self.lifetime_or_char(),
            '"' => self.string(),
            'r' | 'b' | 'c' => self.prefixed_or_ident(),
            _ if is_ident_start(c) => self.ident(),
            _ if c.is_ascii_digit() => self.number(),
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().map(|&(_, c)| c).take(4).collect();
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        let head: String = (0..4).filter_map(|k| self.peek(k)).collect();
        let doc = (head.starts_with("/**") && head != "/**/") || head.starts_with("/*!");
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: run to EOF
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// `'` starts a lifetime (`'a`, `'_`) or a char literal (`'x'`,
    /// `'"'`, `'\''`). Disambiguation: an identifier char right after
    /// the quote is a char literal only when a closing quote follows
    /// immediately (`'a'`); otherwise it is a lifetime.
    fn lifetime_or_char(&mut self) -> TokenKind {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: skip the backslash + escape body
                // up to the closing quote ('\n', '\'', '\u{..}').
                self.bump();
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c != '\\' && self.peek(0) == Some('\'') {
                        break;
                    }
                }
                self.bump(); // closing '
                TokenKind::CharLit
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    TokenKind::CharLit
                } else {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // Non-identifier char literal: '"' , '(' , 'é' …
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                TokenKind::CharLit
            }
            None => TokenKind::Punct, // stray quote at EOF
        }
    }

    /// Non-raw string body starting at the opening `"` (prefix already
    /// consumed by the caller when there is one).
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening "
        while let Some(c) = self.peek(0) {
            self.bump();
            match c {
                '\\' => self.bump(), // skip the escaped char
                '"' => break,
                _ => {}
            }
        }
        TokenKind::StrLit
    }

    /// `r` / `b` / `c` may open a raw string, byte string, C string,
    /// byte-char literal, or raw identifier — or just be an identifier.
    fn prefixed_or_ident(&mut self) -> TokenKind {
        let c0 = self.peek(0).unwrap_or_default();
        let c1 = self.peek(1);
        match (c0, c1) {
            // b".." / c".." plain strings with a one-letter prefix.
            ('b' | 'c', Some('"')) => {
                self.bump();
                self.string()
            }
            // b'x' byte-char literal.
            ('b', Some('\'')) => {
                self.bump();
                self.lifetime_or_char()
            }
            // br".." / cr".." / br#".."# / cr#".."# raw strings: consume
            // the one-letter prefix, then lex from the `r` as usual.
            ('b' | 'c', Some('r')) if matches!(self.peek(2), Some('"') | Some('#')) => {
                self.bump();
                self.raw_string_or_ident()
            }
            // r".." / r#".."# raw strings, or r#ident raw identifiers.
            ('r', Some('"') | Some('#')) => self.raw_string_or_ident(),
            _ => self.ident(),
        }
    }

    /// At an `r` that may open a raw string. Falls back to lexing an
    /// identifier (e.g. raw ident `r#match`, or plain `r` + puncts) when
    /// the hash run is not followed by `"`.
    fn raw_string_or_ident(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(1 + hashes) != Some('"') {
            // r#ident is a raw identifier; consume `r#` + ident body.
            if hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                self.bump(); // r
                self.bump(); // #
                return self.ident();
            }
            return self.ident(); // plain ident `r` / `br`; `#`s lex later
        }
        self.bump(); // r
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening "
                     // Body runs to `"` followed by `hashes` hashes.
        'body: while let Some(c) = self.peek(0) {
            self.bump();
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        TokenKind::RawStrLit
    }

    fn ident(&mut self) -> TokenKind {
        self.bump();
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => self.bump(),
                // `1.5` continues the literal; `1..n` / `1.method()` do not.
                Some('.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => self.bump(),
                _ => break,
            }
        }
        TokenKind::NumLit
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_puncts_numbers_and_spans() {
        let src = "let x = 42;";
        let toks = lex(src);
        assert_eq!(
            kinds(src),
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::NumLit, "42".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
        let x = &toks[1];
        assert_eq!((x.line, x.col, x.len()), (1, 5, 1));
        let semi = &toks[4];
        assert_eq!((semi.line, semi.col), (1, 11));
    }

    #[test]
    fn line_and_col_are_byte_accurate_across_lines() {
        let src = "a\n  bé c\n   unsafe";
        let toks = lex(src);
        assert_eq!((toks[1].line, toks[1].col), (2, 3)); // bé
                                                         // `é` is two bytes (cols 4-5), the space is col 6, `c` col 7.
        assert_eq!((toks[2].line, toks[2].col), (2, 7));
        assert_eq!((toks[3].line, toks[3].col), (3, 4));
        assert_eq!(toks[3].text(src), "unsafe");
    }

    #[test]
    fn raw_string_containing_line_comment_is_one_token() {
        let src = "let s = r#\"// not a comment: thread::spawn\"#; f();";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStrLit && t.contains("thread::spawn")));
        // Nothing after the raw string was swallowed.
        assert!(toks.iter().any(|(_, t)| t == "f"));
        // And no comment token was produced at all.
        assert!(!toks.iter().any(|(k, _)| k.is_comment()));
    }

    #[test]
    fn multi_hash_and_multi_line_raw_strings() {
        let src = "r##\"one \"# two\nthree\"##; next";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::RawStrLit);
        assert_eq!((toks[0].line, toks[0].end_line), (1, 2));
        assert_eq!(toks[1].text(src), ";");
        assert_eq!(toks[2].text(src), "next");
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        let src = "b\"x\" c\"y\" br#\"z\"# b'q' r\"w\"";
        let got = kinds(src);
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::StrLit,
                TokenKind::StrLit,
                TokenKind::RawStrLit,
                TokenKind::CharLit,
                TokenKind::RawStrLit,
            ]
        );
    }

    #[test]
    fn raw_ident_is_one_identifier_not_a_raw_string() {
        let src = "let r#match = r#fn;";
        let got = kinds(src);
        assert_eq!(got[1], (TokenKind::Ident, "r#match".into()));
        assert_eq!(got[3], (TokenKind::Ident, "r#fn".into()));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "a /* outer /* inner */ still outer */ b";
        let got = kinds(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (TokenKind::Ident, "a".into()));
        assert!(matches!(got[1].0, TokenKind::BlockComment { doc: false }));
        assert!(got[1].1.ends_with("still outer */"));
        assert_eq!(got[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn doc_comment_flavours() {
        assert!(matches!(lex("/// doc")[0].kind, TokenKind::LineComment { doc: true }));
        assert!(matches!(lex("//! doc")[0].kind, TokenKind::LineComment { doc: true }));
        assert!(matches!(lex("//// not doc")[0].kind, TokenKind::LineComment { doc: false }));
        assert!(matches!(lex("// plain")[0].kind, TokenKind::LineComment { doc: false }));
        assert!(matches!(lex("/** doc */")[0].kind, TokenKind::BlockComment { doc: true }));
        assert!(matches!(lex("/*! doc */")[0].kind, TokenKind::BlockComment { doc: true }));
        assert!(matches!(lex("/**/")[0].kind, TokenKind::BlockComment { doc: false }));
        assert!(matches!(lex("/* plain */")[0].kind, TokenKind::BlockComment { doc: false }));
    }

    #[test]
    fn double_quote_char_literal_does_not_open_a_string() {
        let src = "let q = '\"'; let s = \"x\"; done";
        let got = kinds(src);
        assert_eq!(got[3], (TokenKind::CharLit, "'\"'".into()));
        assert!(got.iter().any(|(k, t)| *k == TokenKind::StrLit && t == "\"x\""));
        assert_eq!(got.last().unwrap().1, "done");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let u = '\u{1F600}'; next";
        let got = kinds(src);
        assert_eq!(got[3], (TokenKind::CharLit, r"'\''".into()));
        assert_eq!(got[8], (TokenKind::CharLit, r"'\u{1F600}'".into()));
        assert_eq!(got.last().unwrap().1, "next");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a, 'static_like>(x: &'a u8) -> &'_ u8 { x }";
        let got = kinds(src);
        let lifetimes: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'static_like", "'a", "'_"]);
        assert!(!got.iter().any(|(k, _)| *k == TokenKind::CharLit));
    }

    #[test]
    fn char_literal_vs_lifetime_single_letter() {
        let got = kinds("let c = 'x'; fn f<'x>() {}");
        assert_eq!(got[3], (TokenKind::CharLit, "'x'".into()));
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'x"));
    }

    #[test]
    fn string_escapes_do_not_end_the_literal_early() {
        let src = r#"let s = "a\"b\\"; g()"#;
        let got = kinds(src);
        assert_eq!(got[3], (TokenKind::StrLit, r#""a\"b\\""#.into()));
        assert!(got.iter().any(|(_, t)| t == "g"));
    }

    #[test]
    fn multi_line_string_spans_lines() {
        let src = "let s = \"one\ntwo\"; after";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokenKind::StrLit).unwrap();
        assert_eq!((s.line, s.end_line), (1, 2));
        let after = toks.iter().find(|t| t.text(src) == "after").unwrap();
        assert_eq!(after.line, 2);
    }

    #[test]
    fn lint_patterns_inside_strings_are_not_code() {
        let src = r#"let a = "thread::spawn unsafe Ordering::Relaxed .unwrap()";"#;
        let texts = code_texts(src);
        assert_eq!(texts.len(), 5, "let a = <string> ; — got {texts:?}");
        assert!(texts[3].starts_with('"') && texts[3].ends_with('"'));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let got = kinds("0..10 1.5f64 0xFF_u8 1e3");
        let nums: Vec<_> =
            got.iter().filter(|(k, _)| *k == TokenKind::NumLit).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, vec!["0", "10", "1.5f64", "0xFF_u8", "1e3"]);
        assert!(got.iter().filter(|(_, t)| t == ".").count() >= 2, "range dots are puncts");
    }

    #[test]
    fn unterminated_constructs_run_to_eof_without_panicking() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed\"", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }
}
