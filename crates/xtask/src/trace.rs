//! Parser for `RSTRACE1` schedule-trace files.
//!
//! The writer lives in `vendor/rayon/src/model.rs` (`Trace::to_bytes`);
//! this is a dependency-free mirror so `cargo xtask replay` can read a
//! trace header without linking the model crate. Layout, all integers
//! little-endian u64:
//!
//! ```text
//! magic   b"RSTRACE1"
//! string  package      (len + utf-8 bytes)  e.g. "rs_par"
//! string  target       (len + bytes)        test file stem, e.g. "schedule_fuzz"
//! string  scenario     (len + bytes)        test fn name
//! string  threads_env  (len + bytes)        RS_NUM_THREADS at record time ("" = unset)
//! u64     seed
//! u64     yields_taken
//! u64     decision count
//! bytes   decisions    (count bytes: 0 = nothing, 1 = yield, 2+n = spin n)
//! ```

pub const MAGIC: &[u8; 8] = b"RSTRACE1";

/// A parsed schedule trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub package: String,
    pub target: String,
    pub scenario: String,
    /// `RS_NUM_THREADS` at record time; empty when it was unset.
    pub threads_env: String,
    pub seed: u64,
    pub yields_taken: u64,
    pub decisions: Vec<u8>,
}

impl Trace {
    /// Parses a trace file; the error string names the first malformed
    /// field.
    pub fn parse(bytes: &[u8]) -> Result<Trace, String> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err("bad magic (expected RSTRACE1)".to_string());
        }
        let package = r.string("package")?;
        let target = r.string("target")?;
        let scenario = r.string("scenario")?;
        let threads_env = r.string("threads_env")?;
        let seed = r.u64("seed")?;
        let yields_taken = r.u64("yields_taken")?;
        let count = r.u64("decision count")? as usize;
        let decisions = r.take(count, "decisions")?.to_vec();
        if r.pos != r.bytes.len() {
            return Err(format!("{} trailing bytes after decisions", r.bytes.len() - r.pos));
        }
        Ok(Trace { package, target, scenario, threads_env, seed, yields_taken, decisions })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(format!("truncated {what} at byte {}", self.pos)),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("take(8) returns 8 bytes")))
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.u64(what)? as usize;
        if len > 4096 {
            return Err(format!("{what} length {len} is implausible"));
        }
        let b = self.take(len, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| format!("{what} is not utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        for s in ["rs_par", "schedule_fuzz", "deque_single_item_race", ""] {
            b.extend_from_slice(&(s.len() as u64).to_le_bytes());
            b.extend_from_slice(s.as_bytes());
        }
        b.extend_from_slice(&7u64.to_le_bytes()); // seed
        b.extend_from_slice(&2u64.to_le_bytes()); // yields_taken
        b.extend_from_slice(&4u64.to_le_bytes()); // count
        b.extend_from_slice(&[0, 1, 5, 1]);
        b
    }

    #[test]
    fn round_trips_the_sample() {
        let t = Trace::parse(&sample()).unwrap();
        assert_eq!(t.package, "rs_par");
        assert_eq!(t.target, "schedule_fuzz");
        assert_eq!(t.scenario, "deque_single_item_race");
        assert_eq!(t.threads_env, "");
        assert_eq!((t.seed, t.yields_taken), (7, 2));
        assert_eq!(t.decisions, vec![0, 1, 5, 1]);
    }

    #[test]
    fn rejects_bad_magic_truncation_and_trailing_bytes() {
        assert!(Trace::parse(b"NOTTRACE").unwrap_err().contains("magic"));
        let s = sample();
        assert!(Trace::parse(&s[..s.len() - 2]).unwrap_err().contains("truncated"));
        let mut long = s.clone();
        long.push(0);
        assert!(Trace::parse(&long).unwrap_err().contains("trailing"));
    }

    #[test]
    fn rejects_implausible_string_lengths() {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Trace::parse(&b).unwrap_err().contains("implausible"));
    }
}
