//! Round-synchronous parallel Bellman–Ford.
//!
//! The `r(v) = ∞` extreme of radius stepping (§3: "the substeps will run
//! until all vertices are settled, and hence there will be a single step").
//! Each round relaxes all edges out of the vertices whose distance changed
//! in the previous round; rounds until fixpoint equal the maximum hop
//! length of a shortest path.
//!
//! Returns the workspace-uniform [`SsspResult`]: mirroring the paper's
//! framing, the whole run is one *step* whose rounds are recorded as
//! *substeps* (`stats.steps = 1`, `stats.substeps = rounds`).

use rs_core::stats::{SsspResult, StepStats};
use rs_graph::{edge_map, CsrGraph, Dist, VertexId, INF};
use rs_par::{atomic_vec, VertexSubset};

/// Parallel Bellman–Ford. Rounds until fixpoint land in
/// `stats.substeps` (and `stats.max_substeps_in_step`); `stats.steps = 1`.
pub fn bellman_ford(g: &CsrGraph, s: VertexId) -> SsspResult {
    let n = g.num_vertices();
    let dist = atomic_vec(n, INF);
    dist[s as usize].store(0);
    let mut frontier = VertexSubset::single(n, s);
    // Per-round snapshot of source distances: rounds are synchronous
    // (Jacobi) so the round count is schedule-independent.
    let mut snapshot: Vec<Dist> = vec![INF; n];
    let mut rounds = 0;
    let mut relaxations = 0u64;
    while !frontier.is_empty() {
        rounds += 1;
        for u in frontier.to_ids() {
            snapshot[u as usize] = dist[u as usize].load();
            relaxations += g.degree(u) as u64;
        }
        let snap = &snapshot;
        frontier = edge_map(
            g,
            &frontier,
            |u, v, w| {
                let cand = snap[u as usize].saturating_add(w as Dist);
                dist[v as usize].write_min(cand)
            },
            |_| true,
        );
        debug_assert!(rounds <= n, "negative cycle impossible with positive weights");
    }
    let dist: Vec<Dist> = dist.iter().map(|d| d.load()).collect();
    let settled = dist.iter().filter(|&&d| d != INF).count();
    let stats = StepStats {
        steps: 1,
        substeps: rounds,
        max_substeps_in_step: rounds,
        relaxations,
        settled,
        trace: None,
    };
    SsspResult::new(dist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_default;
    use rs_graph::{gen, weights, WeightModel};

    #[test]
    fn agrees_with_dijkstra() {
        let g = weights::reweight(&gen::grid2d(10, 10), WeightModel::paper_weighted(), 3);
        let out = bellman_ford(&g, 42);
        assert_eq!(out.dist, dijkstra_default(&g, 42));
        assert_eq!(out.stats.settled, 100);
    }

    #[test]
    fn rounds_bounded_by_hop_depth() {
        let g = gen::path(20);
        let out = bellman_ford(&g, 0);
        assert_eq!(out.dist[19], 19);
        // 19 productive rounds + 1 empty-detection round, one paper-step.
        assert_eq!(out.stats.substeps, 20);
        assert_eq!(out.stats.steps, 1);
    }

    #[test]
    fn single_vertex() {
        let g = CsrGraph::empty(1);
        let out = bellman_ford(&g, 0);
        assert_eq!(out.dist, vec![0]);
        // One round processes the source's (empty) edge list.
        assert_eq!(out.stats.substeps, 1);
    }
}
