//! Round-synchronous parallel Bellman–Ford.
//!
//! The `r(v) = ∞` extreme of radius stepping (§3: "the substeps will run
//! until all vertices are settled, and hence there will be a single step").
//! Each round relaxes all edges out of the vertices whose distance changed
//! in the previous round; rounds until fixpoint equal the maximum hop
//! length of a shortest path.
//!
//! Returns the workspace-uniform [`SsspResult`]: mirroring the paper's
//! framing, the whole run is one *step* whose rounds are recorded as
//! *substeps* (`stats.steps = 1`, `stats.substeps = rounds`).

use rs_core::stats::{SsspResult, StepStats};
use rs_core::{Goals, SolverScratch};
use rs_graph::{edge_map, CsrGraph, Dist, VertexId, INF};
use rs_par::{par_min, VertexSubset};

/// Parallel Bellman–Ford. Rounds until fixpoint land in
/// `stats.substeps` (and `stats.max_substeps_in_step`); `stats.steps = 1`.
pub fn bellman_ford(g: &CsrGraph, s: VertexId) -> SsspResult {
    bellman_ford_to_goal(g, s, None)
}

/// Parallel Bellman–Ford with an optional goal-bounded early exit.
///
/// With a goal, rounds stop as soon as every frontier vertex sits at
/// distance ≥ the goal's tentative distance: any relaxation chain a later
/// round could run starts at a frontier vertex (improvements only propagate
/// out of vertices that changed) and weights are non-negative, so no chain
/// can push the goal's distance below that bound — `dist[goal]` is already
/// exact. This is the hop-bounded analogue of Dijkstra's settled test:
/// the solve runs only as many rounds as the goal's shortest path has hops
/// (plus the rounds where cheaper subtrees were still draining), instead of
/// the graph-wide hop depth. Other entries remain valid upper bounds.
pub fn bellman_ford_to_goal(g: &CsrGraph, s: VertexId, goal: Option<VertexId>) -> SsspResult {
    bellman_ford_scratch(g, s, Goals::from_option(goal), &mut SolverScratch::new())
}

/// The full Bellman–Ford worker on reusable scratch state: the atomic
/// tentative distances and the per-round snapshot buffer come from
/// `scratch`, so a warm batch run allocates no distance array per source.
pub fn bellman_ford_scratch(
    g: &CsrGraph,
    s: VertexId,
    goals: Goals<'_>,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let n = g.num_vertices();
    rs_core::scratch::assert_distance_range(g);
    scratch.begin(n);
    let out_dist;
    let mut rounds = 0;
    let mut relaxations = 0u64;
    {
        let view = scratch.view();
        let dist = view.dist;
        // Per-round snapshot of source distances: rounds are synchronous
        // (Jacobi) so the round count is schedule-independent. Stale
        // entries are fine — only this round's frontier is written/read.
        let snapshot = view.dists;
        dist.store(s as usize, 0);
        let mut frontier = VertexSubset::single(n, s);
        while !frontier.is_empty() {
            // One materialisation per round, shared by the early-exit check
            // and the snapshot pass.
            let ids = frontier.to_ids();
            if goals.bounded() && goals.as_slice().iter().all(|&t| dist.load(t as usize) != INF) {
                // Every goal reached: exit once no frontier vertex can
                // still undercut the furthest goal's tentative distance
                // (then every goal's distance is final).
                match goals.as_slice().iter().map(|&t| dist.load(t as usize)).max() {
                    None => break, // an empty goal set is trivially settled
                    Some(goal_max) => {
                        let frontier_min = par_min(ids.len(), |i| dist.load(ids[i] as usize));
                        if frontier_min >= goal_max {
                            break;
                        }
                    }
                }
            }
            rounds += 1;
            for u in ids {
                snapshot[u as usize] = dist.load(u as usize);
                relaxations += g.degree(u) as u64;
            }
            let snap: &[Dist] = snapshot;
            frontier = edge_map(
                g,
                &frontier,
                |u, v, w| {
                    let cand = snap[u as usize].saturating_add(w as Dist);
                    dist.write_min(v as usize, cand)
                },
                |_| true,
            );
            debug_assert!(rounds <= n, "negative cycle impossible with positive weights");
        }
        out_dist = dist.snapshot(n);
    }
    let settled = out_dist.iter().filter(|&&d| d != INF).count();
    let stats = StepStats {
        steps: 1,
        substeps: rounds,
        max_substeps_in_step: rounds,
        relaxations,
        relaxed_edges: relaxations,
        settled,
        scratch_reused: scratch.finish(),
        trace: None,
    };
    SsspResult::new(out_dist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_default;
    use rs_graph::{gen, weights, WeightModel};

    #[test]
    fn agrees_with_dijkstra() {
        let g = weights::reweight(&gen::grid2d(10, 10), WeightModel::paper_weighted(), 3);
        let out = bellman_ford(&g, 42);
        assert_eq!(out.dist, dijkstra_default(&g, 42));
        assert_eq!(out.stats.settled, 100);
    }

    #[test]
    fn rounds_bounded_by_hop_depth() {
        let g = gen::path(20);
        let out = bellman_ford(&g, 0);
        assert_eq!(out.dist[19], 19);
        // 19 productive rounds + 1 empty-detection round, one paper-step.
        assert_eq!(out.stats.substeps, 20);
        assert_eq!(out.stats.steps, 1);
    }

    #[test]
    fn goal_bounded_exit_is_exact_and_early() {
        // On a long path, a goal near the source must stop after roughly
        // its hop count, not the full 500-round fixpoint.
        let g = gen::path(500);
        let full = bellman_ford(&g, 0);
        assert_eq!(full.stats.substeps, 500);
        let bounded = bellman_ford_to_goal(&g, 0, Some(10));
        assert_eq!(bounded.dist[10], full.dist[10], "goal must be exact");
        assert!(
            bounded.stats.substeps <= 12,
            "expected ~11 rounds to settle hop-10 goal, ran {}",
            bounded.stats.substeps
        );
        for (b, f) in bounded.dist.iter().zip(&full.dist) {
            assert!(b >= f, "bounded entries are upper bounds");
        }
    }

    #[test]
    fn goal_bounded_exit_matches_dijkstra_on_random_graphs() {
        for seed in [5u64, 9] {
            let g = weights::reweight(
                &gen::scale_free(200, 3, seed),
                WeightModel::paper_weighted(),
                seed,
            );
            let reference = dijkstra_default(&g, 7);
            for goal in [0u32, 50, 100, 199] {
                let out = bellman_ford_to_goal(&g, 7, Some(goal));
                assert_eq!(out.dist[goal as usize], reference[goal as usize], "goal {goal}");
            }
        }
    }

    #[test]
    fn unreachable_goal_still_terminates() {
        let mut b = rs_graph::EdgeListBuilder::new(3);
        b.add_edge(0, 1, 2);
        let g = b.build();
        let out = bellman_ford_to_goal(&g, 0, Some(2));
        assert_eq!(out.dist[2], INF);
        assert_eq!(out.dist[1], 2);
    }

    #[test]
    fn single_vertex() {
        let g = CsrGraph::empty(1);
        let out = bellman_ford(&g, 0);
        assert_eq!(out.dist, vec![0]);
        // One round processes the source's (empty) edge list.
        assert_eq!(out.stats.substeps, 1);
    }
}
