//! [`SsspSolver`] adapters for the four baselines, plus the
//! [`BuildSolver`] extension that completes `rs_core::solver`'s builder.
//!
//! `rs_core` defines the trait, the [`Algorithm`] selector and the
//! [`SolverBuilder`]; this crate sits above it in the dependency graph, so
//! the adapters for its own algorithms — and therefore the `build()` that
//! can construct *every* algorithm — live here. The facade prelude
//! re-exports [`BuildSolver`], making `SolverBuilder::new(&g).build()` the
//! one entry point applications see.
//!
//! Counter mapping into [`rs_core::StepStats`]:
//!
//! | baseline       | `steps`            | `substeps`        |
//! |----------------|--------------------|-------------------|
//! | Dijkstra       | settled vertices   | = steps           |
//! | ∆-stepping     | nonempty buckets   | light phases      |
//! | Bellman–Ford   | 1 (paper framing)  | relaxation rounds |
//! | BFS            | levels             | = steps           |

use std::sync::Arc;

use rs_core::engine::p2p;
use rs_core::scratch::ScratchHeap;
use rs_core::solver::{
    execute_many_to_many, solve_goals, Algorithm, HeapKind, P2pMode, Query, QueryResponse,
    QueryShape, RadiusSteppingSolver, SolverBuilder, SolverConfig, SolverGraph, SsspSolver,
};
use rs_core::stats::{SsspResult, StepStats};
use rs_core::{Landmarks, ShortcutExpander, SolverScratch};
use rs_ds::{DaryHeap, FibonacciHeap, PairingHeap};
use rs_graph::{CsrGraph, Dist, INF};

use crate::bellman_ford::bellman_ford_scratch;
use crate::bfs::bfs_scratch;
use crate::delta_stepping::{delta_stepping_scratch, DeltaSteppingResult};
use crate::dijkstra::dijkstra_into_heap_with_parents;

/// Completes [`SolverBuilder`] with a `build()` covering every
/// [`Algorithm`] variant (the baseline adapters are defined here, above
/// `rs_core` in the dependency graph).
pub trait BuildSolver<'g> {
    /// Builds the configured solver, running any attached preprocessing.
    fn build(self) -> Box<dyn SsspSolver + 'g>;
}

impl<'g> BuildSolver<'g> for SolverBuilder<'g> {
    fn build(self) -> Box<dyn SsspSolver + 'g> {
        let parts = self.into_parts();
        match parts.algorithm {
            Algorithm::RadiusStepping { engine, radii } => {
                Box::new(RadiusSteppingSolver::from_parts(
                    parts.graph,
                    engine,
                    radii,
                    parts.preprocess,
                    parts.preprocess_cache.as_deref(),
                    parts.config,
                ))
            }
            ref algorithm => {
                // Baselines run on the (possibly shortcut-augmented) graph;
                // shortcuts preserve distances, so they stay exact — and
                // carry the expansion table so extracted paths unroll back
                // to input-graph edges.
                let config = parts.config;
                let (graph, expander, landmarks) = parts.resolve_graph_expander_landmarks();
                match *algorithm {
                    Algorithm::Dijkstra { heap } => {
                        Box::new(DijkstraSolver { graph, heap, config, expander, landmarks })
                    }
                    Algorithm::DeltaStepping { delta } => {
                        Box::new(DeltaSteppingSolver { graph, delta, config, expander })
                    }
                    Algorithm::BellmanFord => {
                        Box::new(BellmanFordSolver { graph, config, expander })
                    }
                    Algorithm::Bfs => Box::new(BfsSolver::new(graph, config)),
                    Algorithm::RadiusStepping { .. } => unreachable!("handled above"),
                }
            }
        }
    }
}

/// Sequential Dijkstra behind the solver interface.
pub struct DijkstraSolver<'g> {
    pub graph: SolverGraph<'g>,
    pub heap: HeapKind,
    pub config: SolverConfig,
    pub expander: Option<Arc<ShortcutExpander>>,
    /// ALT landmark table when [`SolverConfig::p2p_mode`] reads one
    /// (guaranteed present for `GoalDirected`, optional for `Auto`).
    pub landmarks: Option<Arc<Landmarks>>,
}

impl DijkstraSolver<'_> {
    /// The mode `execute` dispatches for a point-to-point query: `Auto`
    /// resolves to goal-directed when preprocessing supplied landmarks,
    /// else bidirectional.
    fn effective_p2p(&self) -> P2pMode {
        match self.config.p2p_mode {
            P2pMode::Auto if self.landmarks.is_some() => P2pMode::GoalDirected,
            P2pMode::Auto => P2pMode::Bidirectional,
            mode => mode,
        }
    }

    /// Runs the configured non-forward point-to-point kernel, or `None`
    /// when the forward early-exit path should serve the query.
    fn run_p2p<H: ScratchHeap>(
        &self,
        query: &Query,
        source: u32,
        goal: u32,
        scratch: &mut SolverScratch,
    ) -> Option<QueryResponse> {
        let want_paths = self.config.wants_paths(query);
        let out = match self.effective_p2p() {
            P2pMode::Forward | P2pMode::Auto => return None,
            P2pMode::Bidirectional => {
                p2p::bidirectional::<H>(&self.graph, source, goal, want_paths, scratch)
            }
            P2pMode::GoalDirected => {
                let lm = self.landmarks.as_ref().expect("GoalDirected owns landmarks");
                p2p::goal_directed::<H>(&self.graph, source, goal, lm, want_paths, scratch)
            }
        };
        Some(QueryResponse::single(query.clone(), out).with_expander(self.expander.clone()))
    }

    fn run_scratch<H: ScratchHeap>(
        &self,
        query: &Query,
        scratch: &mut SolverScratch,
    ) -> QueryResponse {
        let n = self.graph.num_vertices();
        scratch.begin(n);
        let mut heap: H = scratch.checkout_heap();
        let mut goal_buf = Vec::new();
        // Dijkstra is sequential, so parents are always recorded inline
        // (deterministic, O(1) per relaxation) — never by post-pass.
        let mut parent = self.config.wants_paths(query).then(|| vec![u32::MAX; n]);
        let (dist, settled, relaxations) = dijkstra_into_heap_with_parents(
            &self.graph,
            query.source(),
            solve_goals(query, &mut goal_buf),
            &mut heap,
            parent.as_deref_mut(),
        );
        scratch.return_heap(heap);
        // Dijkstra settles one vertex per extraction: steps = settled.
        let stats = StepStats {
            steps: settled,
            substeps: settled,
            max_substeps_in_step: settled.min(1),
            relaxations,
            relaxed_edges: relaxations,
            settled,
            scratch_reused: scratch.finish(),
            trace: None,
        };
        let mut result = SsspResult::new(dist, stats);
        result.parent = parent;
        QueryResponse::single(query.clone(), result).with_expander(self.expander.clone())
    }
}

impl SsspSolver for DijkstraSolver<'_> {
    fn name(&self) -> String {
        format!("dijkstra/{:?}", self.heap).to_lowercase()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        if query.is_many_to_many() {
            return execute_many_to_many(self, query).with_expander(self.expander.clone());
        }
        if let QueryShape::PointToPoint { source, goal } = query.shape {
            let kernel = match self.heap {
                HeapKind::Dary => self.run_p2p::<DaryHeap>(query, source, goal, scratch),
                HeapKind::Pairing => self.run_p2p::<PairingHeap>(query, source, goal, scratch),
                HeapKind::Fibonacci => self.run_p2p::<FibonacciHeap>(query, source, goal, scratch),
            };
            if let Some(response) = kernel {
                return response;
            }
        }
        match self.heap {
            HeapKind::Dary => self.run_scratch::<DaryHeap>(query, scratch),
            HeapKind::Pairing => self.run_scratch::<PairingHeap>(query, scratch),
            HeapKind::Fibonacci => self.run_scratch::<FibonacciHeap>(query, scratch),
        }
    }

    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        scratch.warm_up(&self.graph);
        let n = self.graph.num_vertices();
        if self.effective_p2p() == P2pMode::Bidirectional {
            scratch.warm_up_bidir(&self.graph);
            match self.heap {
                HeapKind::Dary => scratch.warm_heap_rev::<DaryHeap>(n),
                HeapKind::Pairing => scratch.warm_heap_rev::<PairingHeap>(n),
                HeapKind::Fibonacci => scratch.warm_heap_rev::<FibonacciHeap>(n),
            }
        }
        match self.heap {
            HeapKind::Dary => scratch.warm_heap::<DaryHeap>(n),
            HeapKind::Pairing => scratch.warm_heap::<PairingHeap>(n),
            HeapKind::Fibonacci => scratch.warm_heap::<FibonacciHeap>(n),
        }
    }
}

/// Meyer–Sanders ∆-stepping behind the solver interface.
pub struct DeltaSteppingSolver<'g> {
    pub graph: SolverGraph<'g>,
    pub delta: Dist,
    pub config: SolverConfig,
    pub expander: Option<Arc<ShortcutExpander>>,
}

impl DeltaSteppingSolver<'_> {
    fn to_result(&self, out: DeltaSteppingResult) -> SsspResult {
        let settled = out.dist.iter().filter(|&&d| d != INF).count();
        let stats = StepStats {
            steps: out.buckets,
            substeps: out.phases,
            max_substeps_in_step: out.max_phases_in_bucket,
            relaxations: out.relaxations,
            relaxed_edges: out.relaxations,
            settled,
            scratch_reused: out.scratch_reused,
            trace: None,
        };
        SsspResult::new(out.dist, stats)
    }
}

impl SsspSolver for DeltaSteppingSolver<'_> {
    fn name(&self) -> String {
        format!("delta-stepping/{}", self.delta)
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        if query.is_many_to_many() {
            return execute_many_to_many(self, query).with_expander(self.expander.clone());
        }
        let mut goal_buf = Vec::new();
        let out = delta_stepping_scratch(
            &self.graph,
            query.source(),
            self.delta,
            solve_goals(query, &mut goal_buf),
            scratch,
        );
        // The parallel bucket phases carry no per-writer identity, so
        // `want_paths` is answered by finish_paths: one goal-path walk per
        // goal for the bounded shapes, the parallel derivation for full
        // solves.
        let result = self.config.finish_paths(&self.graph, query, self.to_result(out));
        QueryResponse::single(query.clone(), result).with_expander(self.expander.clone())
    }

    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        scratch.warm_up(&self.graph);
        scratch.warm_bucket(self.graph.num_vertices(), self.delta, self.graph.max_weight() as u64);
    }
}

/// Round-synchronous parallel Bellman–Ford behind the solver interface.
/// `solve_to_goal` exits once every frontier vertex sits at distance ≥ the
/// goal's tentative distance (no later round can then lower the goal —
/// weights are non-negative), bounding the rounds by the goal's hop radius
/// instead of the graph-wide hop depth.
pub struct BellmanFordSolver<'g> {
    pub graph: SolverGraph<'g>,
    pub config: SolverConfig,
    pub expander: Option<Arc<ShortcutExpander>>,
}

impl SsspSolver for BellmanFordSolver<'_> {
    fn name(&self) -> String {
        "bellman-ford".into()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        if query.is_many_to_many() {
            return execute_many_to_many(self, query).with_expander(self.expander.clone());
        }
        let mut goal_buf = Vec::new();
        let out = bellman_ford_scratch(
            &self.graph,
            query.source(),
            solve_goals(query, &mut goal_buf),
            scratch,
        );
        let result = self.config.finish_paths(&self.graph, query, out);
        QueryResponse::single(query.clone(), result).with_expander(self.expander.clone())
    }
}

/// Level-synchronous parallel BFS behind the solver interface.
pub struct BfsSolver<'g> {
    graph: SolverGraph<'g>,
    config: SolverConfig,
}

impl<'g> BfsSolver<'g> {
    /// BFS distances are hop counts, so the graph must be unit-weighted
    /// (checked here rather than per solve). Note (k, ρ)-preprocessing
    /// introduces weighted shortcut edges — attach it to radius stepping,
    /// not to BFS.
    pub fn new(graph: SolverGraph<'g>, config: SolverConfig) -> Self {
        assert!(
            graph.is_unit_weighted(),
            "Algorithm::Bfs requires a unit-weighted graph (and no preprocessing)"
        );
        BfsSolver { graph, config }
    }
}

impl SsspSolver for BfsSolver<'_> {
    fn name(&self) -> String {
        "bfs".into()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        if query.is_many_to_many() {
            return execute_many_to_many(self, query);
        }
        let mut goal_buf = Vec::new();
        let out =
            bfs_scratch(&self.graph, query.source(), solve_goals(query, &mut goal_buf), scratch);
        let result = self.config.finish_paths(&self.graph, query, out);
        QueryResponse::single(query.clone(), result)
    }

    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        // BFS touches only the visited bitset — skip the 16 B/vertex
        // distance structures the default warm-up would materialise.
        scratch.warm_up_lean(&self.graph);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_default;
    use rs_core::solver::Radii;
    use rs_core::{EngineKind, PreprocessConfig};
    use rs_graph::{gen, weights, WeightModel};

    fn weighted() -> CsrGraph {
        weights::reweight(&gen::grid2d(8, 9), WeightModel::paper_weighted(), 2)
    }

    #[test]
    fn every_algorithm_buildable_and_exact() {
        let g = weighted();
        let reference = dijkstra_default(&g, 5);
        let algorithms = [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
            Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(900) },
            Algorithm::Dijkstra { heap: HeapKind::Pairing },
            Algorithm::DeltaStepping { delta: 2_000 },
            Algorithm::BellmanFord,
        ];
        for algorithm in algorithms {
            let solver = SolverBuilder::new(&g).algorithm(algorithm.clone()).build();
            assert_eq!(solver.solve(5).dist, reference, "{}", solver.name());
        }
    }

    #[test]
    fn bfs_solver_unit_graphs_only() {
        let g = gen::grid2d(6, 6);
        let solver = SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build();
        assert_eq!(solver.solve(0).dist, crate::bfs_seq(&g, 0));
    }

    #[test]
    #[should_panic(expected = "unit-weighted")]
    fn bfs_solver_rejects_weighted() {
        let g = weighted();
        let _ = SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build();
    }

    #[test]
    fn preprocessing_composes_with_baselines() {
        let g = weighted();
        let reference = dijkstra_default(&g, 0);
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
            .preprocess(PreprocessConfig::new(1, 8))
            .build();
        assert!(solver.graph().num_edges() >= g.num_edges());
        assert_eq!(solver.solve(0).dist, reference, "shortcuts preserve distances");
    }

    #[test]
    fn preprocess_cached_composes_with_baselines() {
        let g = weighted();
        let reference = dijkstra_default(&g, 3);
        let cfg = PreprocessConfig::new(1, 8);
        let path = std::env::temp_dir().join(format!(
            "rs_baseline_cache_{}_{:p}.bin",
            std::process::id(),
            &g
        ));
        std::fs::remove_file(&path).ok();
        for _ in 0..2 {
            // First iteration builds + saves, second loads; both exact.
            let solver = SolverBuilder::new(&g)
                .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
                .preprocess_cached(&path, cfg)
                .build();
            assert!(solver.graph().num_edges() >= g.num_edges());
            assert_eq!(solver.solve(3).dist, reference);
            assert!(path.exists());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn goal_bounded_baselines_settle_goal() {
        let g = weighted();
        let reference = dijkstra_default(&g, 0);
        for algorithm in [
            Algorithm::Dijkstra { heap: HeapKind::Dary },
            Algorithm::DeltaStepping { delta: 1_500 },
            Algorithm::BellmanFord,
        ] {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).build();
            let out = solver.solve_to_goal(0, 71);
            assert_eq!(out.dist[71], reference[71], "{}", solver.name());
        }
    }

    #[test]
    fn parents_recorded_across_algorithms() {
        let g = weighted();
        for algorithm in [
            Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
            Algorithm::DeltaStepping { delta: 3_000 },
            Algorithm::BellmanFord,
        ] {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).record_parents(true).build();
            let out = solver.solve(0);
            let path = out.extract_path(70).expect("connected grid");
            let mut acc = 0u64;
            for w in path.windows(2) {
                acc += solver.graph().arc_weight(w[0], w[1]).expect("edge") as u64;
            }
            assert_eq!(acc, out.dist[70], "{}: path telescopes", solver.name());
        }
    }
}
