//! [`SsspSolver`] adapters for the four baselines, plus the
//! [`BuildSolver`] extension that completes `rs_core::solver`'s builder.
//!
//! `rs_core` defines the trait, the [`Algorithm`] selector and the
//! [`SolverBuilder`]; this crate sits above it in the dependency graph, so
//! the adapters for its own algorithms — and therefore the `build()` that
//! can construct *every* algorithm — live here. The facade prelude
//! re-exports [`BuildSolver`], making `SolverBuilder::new(&g).build()` the
//! one entry point applications see.
//!
//! Counter mapping into [`rs_core::StepStats`]:
//!
//! | baseline       | `steps`            | `substeps`        |
//! |----------------|--------------------|-------------------|
//! | Dijkstra       | settled vertices   | = steps           |
//! | ∆-stepping     | nonempty buckets   | light phases      |
//! | Bellman–Ford   | 1 (paper framing)  | relaxation rounds |
//! | BFS            | levels             | = steps           |

use rs_core::scratch::ScratchHeap;
use rs_core::solver::{
    Algorithm, HeapKind, RadiusSteppingSolver, SolverBuilder, SolverConfig, SolverGraph, SsspSolver,
};
use rs_core::stats::{SsspResult, StepStats};
use rs_core::SolverScratch;
use rs_ds::{DaryHeap, DecreaseKeyHeap, FibonacciHeap, PairingHeap};
use rs_graph::{CsrGraph, Dist, VertexId, INF};

use crate::bellman_ford::{bellman_ford_scratch, bellman_ford_to_goal};
use crate::bfs::{bfs_par_to_goal, bfs_scratch};
use crate::delta_stepping::{delta_stepping_scratch, delta_stepping_to_goal, DeltaSteppingResult};
use crate::dijkstra::{dijkstra_into_heap, dijkstra_with_goal};

/// Completes [`SolverBuilder`] with a `build()` covering every
/// [`Algorithm`] variant (the baseline adapters are defined here, above
/// `rs_core` in the dependency graph).
pub trait BuildSolver<'g> {
    /// Builds the configured solver, running any attached preprocessing.
    fn build(self) -> Box<dyn SsspSolver + 'g>;
}

impl<'g> BuildSolver<'g> for SolverBuilder<'g> {
    fn build(self) -> Box<dyn SsspSolver + 'g> {
        let parts = self.into_parts();
        match parts.algorithm {
            Algorithm::RadiusStepping { engine, radii } => {
                Box::new(RadiusSteppingSolver::from_parts(
                    parts.graph,
                    engine,
                    radii,
                    parts.preprocess,
                    parts.preprocess_cache.as_deref(),
                    parts.config,
                ))
            }
            ref algorithm => {
                // Baselines run on the (possibly shortcut-augmented) graph;
                // shortcuts preserve distances, so they stay exact.
                let config = parts.config;
                let graph = parts.resolve_graph();
                match *algorithm {
                    Algorithm::Dijkstra { heap } => {
                        Box::new(DijkstraSolver { graph, heap, config })
                    }
                    Algorithm::DeltaStepping { delta } => {
                        Box::new(DeltaSteppingSolver { graph, delta, config })
                    }
                    Algorithm::BellmanFord => Box::new(BellmanFordSolver { graph, config }),
                    Algorithm::Bfs => Box::new(BfsSolver::new(graph, config)),
                    Algorithm::RadiusStepping { .. } => unreachable!("handled above"),
                }
            }
        }
    }
}

/// Sequential Dijkstra behind the solver interface.
pub struct DijkstraSolver<'g> {
    pub graph: SolverGraph<'g>,
    pub heap: HeapKind,
    pub config: SolverConfig,
}

impl DijkstraSolver<'_> {
    fn finish(
        &self,
        dist: Vec<Dist>,
        settled: usize,
        relaxations: u64,
        reused: bool,
    ) -> SsspResult {
        // Dijkstra settles one vertex per extraction: steps = settled.
        let stats = StepStats {
            steps: settled,
            substeps: settled,
            max_substeps_in_step: settled.min(1),
            relaxations,
            settled,
            scratch_reused: reused,
            trace: None,
        };
        self.config.finish(&self.graph, SsspResult::new(dist, stats))
    }

    fn run(&self, source: VertexId, goal: Option<VertexId>) -> SsspResult {
        let (dist, settled, relaxations) = match self.heap {
            HeapKind::Dary => dijkstra_with_goal::<DaryHeap>(&self.graph, source, goal),
            HeapKind::Pairing => dijkstra_with_goal::<PairingHeap>(&self.graph, source, goal),
            HeapKind::Fibonacci => dijkstra_with_goal::<FibonacciHeap>(&self.graph, source, goal),
        };
        self.finish(dist, settled, relaxations, false)
    }

    fn run_scratch<H: ScratchHeap + DecreaseKeyHeap>(
        &self,
        source: VertexId,
        scratch: &mut SolverScratch,
    ) -> (Vec<Dist>, usize, u64, bool) {
        scratch.begin(self.graph.num_vertices());
        let mut heap: H = scratch.checkout_heap();
        let (dist, settled, relaxations) = dijkstra_into_heap(&self.graph, source, None, &mut heap);
        scratch.return_heap(heap);
        (dist, settled, relaxations, scratch.finish())
    }
}

impl SsspSolver for DijkstraSolver<'_> {
    fn name(&self) -> String {
        format!("dijkstra/{:?}", self.heap).to_lowercase()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn solve(&self, source: VertexId) -> SsspResult {
        self.run(source, None)
    }

    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        self.run(source, Some(goal))
    }

    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        let (dist, settled, relaxations, reused) = match self.heap {
            HeapKind::Dary => self.run_scratch::<DaryHeap>(source, scratch),
            HeapKind::Pairing => self.run_scratch::<PairingHeap>(source, scratch),
            HeapKind::Fibonacci => self.run_scratch::<FibonacciHeap>(source, scratch),
        };
        self.finish(dist, settled, relaxations, reused)
    }
}

/// Meyer–Sanders ∆-stepping behind the solver interface.
pub struct DeltaSteppingSolver<'g> {
    pub graph: SolverGraph<'g>,
    pub delta: Dist,
    pub config: SolverConfig,
}

impl DeltaSteppingSolver<'_> {
    fn finish(&self, out: DeltaSteppingResult) -> SsspResult {
        let settled = out.dist.iter().filter(|&&d| d != INF).count();
        let stats = StepStats {
            steps: out.buckets,
            substeps: out.phases,
            max_substeps_in_step: out.max_phases_in_bucket,
            relaxations: out.relaxations,
            settled,
            scratch_reused: out.scratch_reused,
            trace: None,
        };
        self.config.finish(&self.graph, SsspResult::new(out.dist, stats))
    }
}

impl SsspSolver for DeltaSteppingSolver<'_> {
    fn name(&self) -> String {
        format!("delta-stepping/{}", self.delta)
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn solve(&self, source: VertexId) -> SsspResult {
        self.finish(delta_stepping_to_goal(&self.graph, source, self.delta, None))
    }

    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        self.finish(delta_stepping_to_goal(&self.graph, source, self.delta, Some(goal)))
    }

    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        self.finish(delta_stepping_scratch(&self.graph, source, self.delta, None, scratch))
    }
}

/// Round-synchronous parallel Bellman–Ford behind the solver interface.
/// `solve_to_goal` exits once every frontier vertex sits at distance ≥ the
/// goal's tentative distance (no later round can then lower the goal —
/// weights are non-negative), bounding the rounds by the goal's hop radius
/// instead of the graph-wide hop depth.
pub struct BellmanFordSolver<'g> {
    pub graph: SolverGraph<'g>,
    pub config: SolverConfig,
}

impl SsspSolver for BellmanFordSolver<'_> {
    fn name(&self) -> String {
        "bellman-ford".into()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn solve(&self, source: VertexId) -> SsspResult {
        self.config.finish(&self.graph, bellman_ford_to_goal(&self.graph, source, None))
    }

    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        self.config.finish(&self.graph, bellman_ford_to_goal(&self.graph, source, Some(goal)))
    }

    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        self.config.finish(&self.graph, bellman_ford_scratch(&self.graph, source, None, scratch))
    }
}

/// Level-synchronous parallel BFS behind the solver interface.
pub struct BfsSolver<'g> {
    graph: SolverGraph<'g>,
    config: SolverConfig,
}

impl<'g> BfsSolver<'g> {
    /// BFS distances are hop counts, so the graph must be unit-weighted
    /// (checked here rather than per solve). Note (k, ρ)-preprocessing
    /// introduces weighted shortcut edges — attach it to radius stepping,
    /// not to BFS.
    pub fn new(graph: SolverGraph<'g>, config: SolverConfig) -> Self {
        assert!(
            graph.is_unit_weighted(),
            "Algorithm::Bfs requires a unit-weighted graph (and no preprocessing)"
        );
        BfsSolver { graph, config }
    }
}

impl SsspSolver for BfsSolver<'_> {
    fn name(&self) -> String {
        "bfs".into()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn solve(&self, source: VertexId) -> SsspResult {
        self.config.finish(&self.graph, bfs_par_to_goal(&self.graph, source, None))
    }

    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        self.config.finish(&self.graph, bfs_par_to_goal(&self.graph, source, Some(goal)))
    }

    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        self.config.finish(&self.graph, bfs_scratch(&self.graph, source, None, scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_default;
    use rs_core::solver::Radii;
    use rs_core::{EngineKind, PreprocessConfig};
    use rs_graph::{gen, weights, WeightModel};

    fn weighted() -> CsrGraph {
        weights::reweight(&gen::grid2d(8, 9), WeightModel::paper_weighted(), 2)
    }

    #[test]
    fn every_algorithm_buildable_and_exact() {
        let g = weighted();
        let reference = dijkstra_default(&g, 5);
        let algorithms = [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
            Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(900) },
            Algorithm::Dijkstra { heap: HeapKind::Pairing },
            Algorithm::DeltaStepping { delta: 2_000 },
            Algorithm::BellmanFord,
        ];
        for algorithm in algorithms {
            let solver = SolverBuilder::new(&g).algorithm(algorithm.clone()).build();
            assert_eq!(solver.solve(5).dist, reference, "{}", solver.name());
        }
    }

    #[test]
    fn bfs_solver_unit_graphs_only() {
        let g = gen::grid2d(6, 6);
        let solver = SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build();
        assert_eq!(solver.solve(0).dist, crate::bfs_seq(&g, 0));
    }

    #[test]
    #[should_panic(expected = "unit-weighted")]
    fn bfs_solver_rejects_weighted() {
        let g = weighted();
        let _ = SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build();
    }

    #[test]
    fn preprocessing_composes_with_baselines() {
        let g = weighted();
        let reference = dijkstra_default(&g, 0);
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
            .preprocess(PreprocessConfig::new(1, 8))
            .build();
        assert!(solver.graph().num_edges() >= g.num_edges());
        assert_eq!(solver.solve(0).dist, reference, "shortcuts preserve distances");
    }

    #[test]
    fn preprocess_cached_composes_with_baselines() {
        let g = weighted();
        let reference = dijkstra_default(&g, 3);
        let cfg = PreprocessConfig::new(1, 8);
        let path = std::env::temp_dir().join(format!(
            "rs_baseline_cache_{}_{:p}.bin",
            std::process::id(),
            &g
        ));
        std::fs::remove_file(&path).ok();
        for _ in 0..2 {
            // First iteration builds + saves, second loads; both exact.
            let solver = SolverBuilder::new(&g)
                .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
                .preprocess_cached(&path, cfg)
                .build();
            assert!(solver.graph().num_edges() >= g.num_edges());
            assert_eq!(solver.solve(3).dist, reference);
            assert!(path.exists());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn goal_bounded_baselines_settle_goal() {
        let g = weighted();
        let reference = dijkstra_default(&g, 0);
        for algorithm in [
            Algorithm::Dijkstra { heap: HeapKind::Dary },
            Algorithm::DeltaStepping { delta: 1_500 },
            Algorithm::BellmanFord,
        ] {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).build();
            let out = solver.solve_to_goal(0, 71);
            assert_eq!(out.dist[71], reference[71], "{}", solver.name());
        }
    }

    #[test]
    fn parents_recorded_across_algorithms() {
        let g = weighted();
        for algorithm in [
            Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
            Algorithm::DeltaStepping { delta: 3_000 },
            Algorithm::BellmanFord,
        ] {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).record_parents(true).build();
            let out = solver.solve(0);
            let path = out.extract_path(70).expect("connected grid");
            let mut acc = 0u64;
            for w in path.windows(2) {
                acc += solver.graph().arc_weight(w[0], w[1]).expect("edge") as u64;
            }
            assert_eq!(acc, out.dist[70], "{}: path telescopes", solver.name());
        }
    }
}
