//! Baseline shortest-path algorithms the paper builds on and compares
//! against.
//!
//! * [`dijkstra`] — the sequential reference (§1), generic over the
//!   decrease-key heap so the Fibonacci/pairing/d-ary trade-off can be
//!   measured.
//! * [`bfs`] — standard sequential BFS and level-synchronous parallel BFS;
//!   the unweighted baseline of Tables 4–5.
//! * [`bellman_ford`] — round-synchronous parallel Bellman–Ford, the
//!   `r(v) = ∞` extreme of radius stepping.
//! * [`delta_stepping`] — Meyer–Sanders ∆-stepping with the light/heavy
//!   edge split, the algorithm radius stepping refines.
//!
//! Every solver returns exact distances (tested against each other), plus
//! the step/phase counters used in the experiment harness. All four are
//! also available behind the unified [`rs_core::solver::SsspSolver`] trait
//! through the adapters in [`solver`], which additionally supplies the
//! [`solver::BuildSolver`] extension completing `rs_core`'s
//! `SolverBuilder`.

pub mod bellman_ford;
pub mod bfs;
pub mod delta_stepping;
pub mod dijkstra;
pub mod solver;

pub use bellman_ford::{bellman_ford, bellman_ford_to_goal};
pub use bfs::{bfs_par, bfs_par_to_goal, bfs_seq};
pub use delta_stepping::{delta_stepping, delta_stepping_to_goal, DeltaSteppingResult};
pub use dijkstra::{
    dijkstra, dijkstra_default, dijkstra_to_goal, dijkstra_with_goal, dijkstra_with_parents,
};
pub use solver::{BellmanFordSolver, BfsSolver, BuildSolver, DeltaSteppingSolver, DijkstraSolver};
