//! Breadth-first search: the paper's unweighted baseline.
//!
//! Tables 4–5 compare radius stepping's round counts against "a
//! conventional BFS implementation"; [`bfs_par`] is the level-synchronous
//! parallel BFS (one round per level, via `edge_map`), [`bfs_seq`] the
//! queue-based sequential reference.

use std::collections::VecDeque;

use rs_graph::{edge_map, CsrGraph, Dist, VertexId, INF};
use rs_par::{AtomicBitset, VertexSubset};

/// Sequential BFS; returns hop distances (`INF` if unreachable).
pub fn bfs_seq(g: &CsrGraph, s: VertexId) -> Vec<Dist> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[s as usize] = 0;
    let mut queue = VecDeque::from([s]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == INF {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Level-synchronous parallel BFS; returns hop distances and the number of
/// rounds (levels processed), the "BFS rounds" denominator of Table 5.
pub fn bfs_par(g: &CsrGraph, s: VertexId) -> (Vec<Dist>, usize) {
    let n = g.num_vertices();
    let visited = AtomicBitset::new(n);
    visited.set(s as usize);
    let mut dist = vec![INF; n];
    dist[s as usize] = 0;
    let mut frontier = VertexSubset::single(n, s);
    let mut level: Dist = 0;
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        level += 1;
        frontier = edge_map(
            g,
            &frontier,
            |_, v, _| visited.set(v as usize),
            |v| !visited.get(v as usize),
        );
        for v in frontier.to_ids() {
            dist[v as usize] = level;
        }
    }
    (dist, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::gen;

    #[test]
    fn seq_and_par_agree_on_suite() {
        for g in [gen::grid2d(9, 11), gen::scale_free(400, 3, 7), gen::path(30)] {
            let a = bfs_seq(&g, 0);
            let (b, _) = bfs_par(&g, 0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rounds_equal_eccentricity_plus_one() {
        // The last round discovers nothing, so rounds = eccentricity + 1.
        let g = gen::path(10);
        let (dist, rounds) = bfs_par(&g, 0);
        assert_eq!(dist[9], 9);
        assert_eq!(rounds, 10);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = gen::star(5);
        let mut dist = bfs_seq(&g, 1);
        assert_eq!(dist[0], 1);
        assert_eq!(dist[1], 0);
        dist.sort_unstable();
        assert_eq!(dist, vec![0, 1, 2, 2, 2]);
    }
}
