//! Breadth-first search: the paper's unweighted baseline.
//!
//! Tables 4–5 compare radius stepping's round counts against "a
//! conventional BFS implementation"; [`bfs_par`] is the level-synchronous
//! parallel BFS (one round per level, via `edge_map`), [`bfs_seq`] the
//! queue-based sequential reference.
//!
//! [`bfs_par`] returns the workspace-uniform [`SsspResult`]: each level is
//! one *step* of one substep (`stats.steps` = rounds = the "BFS rounds"
//! denominator of Table 5).

use std::collections::VecDeque;

use rs_core::stats::{SsspResult, StepStats};
use rs_core::{Goals, SolverScratch};
use rs_graph::{edge_map, CsrGraph, Dist, VertexId, INF};
use rs_par::VertexSubset;

/// Sequential BFS; returns hop distances (`INF` if unreachable).
pub fn bfs_seq(g: &CsrGraph, s: VertexId) -> Vec<Dist> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[s as usize] = 0;
    let mut queue = VecDeque::from([s]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == INF {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Level-synchronous parallel BFS, optionally stopping once `goal` has its
/// level assigned (levels settle in order, so the value is final).
pub fn bfs_par_to_goal(g: &CsrGraph, s: VertexId, goal: Option<VertexId>) -> SsspResult {
    bfs_scratch(g, s, Goals::from_option(goal), &mut SolverScratch::new())
}

/// The full BFS worker on reusable scratch state (the visited set comes
/// from `scratch`; the level array doubles as the result and is the one
/// per-solve output allocation).
pub fn bfs_scratch(
    g: &CsrGraph,
    s: VertexId,
    goals: Goals<'_>,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let n = g.num_vertices();
    scratch.begin(n);
    let mut dist = vec![INF; n];
    let mut rounds = 0;
    let mut relaxations = 0u64;
    {
        // Lean accessor: a BFS-only scratch materialises just the visited
        // bitset, not the 16-bytes-per-vertex distance structures.
        let visited = scratch.visited_set();
        visited.set(s as usize);
        dist[s as usize] = 0;
        let mut frontier = VertexSubset::single(n, s);
        let mut level: Dist = 0;
        while !frontier.is_empty() {
            if goals.all_done(|t| dist[t as usize] != INF) {
                break;
            }
            rounds += 1;
            level += 1;
            for u in frontier.to_ids() {
                relaxations += g.degree(u) as u64;
            }
            frontier = edge_map(
                g,
                &frontier,
                |_, v, _| visited.set(v as usize),
                |v| !visited.get(v as usize),
            );
            for v in frontier.to_ids() {
                dist[v as usize] = level;
            }
        }
    }
    let settled = dist.iter().filter(|&&d| d != INF).count();
    let stats = StepStats {
        steps: rounds,
        substeps: rounds,
        max_substeps_in_step: rounds.min(1),
        relaxations,
        relaxed_edges: relaxations,
        settled,
        scratch_reused: scratch.finish(),
        trace: None,
    };
    SsspResult::new(dist, stats)
}

/// Level-synchronous parallel BFS; hop distances plus the number of rounds
/// (levels processed, the "BFS rounds" denominator of Table 5) in
/// `stats.steps`.
pub fn bfs_par(g: &CsrGraph, s: VertexId) -> SsspResult {
    bfs_par_to_goal(g, s, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::gen;

    #[test]
    fn seq_and_par_agree_on_suite() {
        for g in [gen::grid2d(9, 11), gen::scale_free(400, 3, 7), gen::path(30)] {
            let a = bfs_seq(&g, 0);
            let b = bfs_par(&g, 0);
            assert_eq!(a, b.dist);
        }
    }

    #[test]
    fn rounds_equal_eccentricity_plus_one() {
        // The last round discovers nothing, so rounds = eccentricity + 1.
        let g = gen::path(10);
        let out = bfs_par(&g, 0);
        assert_eq!(out.dist[9], 9);
        assert_eq!(out.stats.steps, 10);
    }

    #[test]
    fn goal_bounded_stops_early_with_exact_goal() {
        let g = gen::path(30);
        let full = bfs_par(&g, 0);
        let bounded = bfs_par_to_goal(&g, 0, Some(5));
        assert_eq!(bounded.dist[5], full.dist[5]);
        assert!(bounded.stats.steps < full.stats.steps);
        assert_eq!(bounded.dist[29], INF, "tail never reached");
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = gen::star(5);
        let mut dist = bfs_seq(&g, 1);
        assert_eq!(dist[0], 1);
        assert_eq!(dist[1], 0);
        dist.sort_unstable();
        assert_eq!(dist, vec![0, 1, 2, 2, 2]);
    }
}
