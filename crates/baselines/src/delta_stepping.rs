//! Meyer–Sanders ∆-stepping (J. Algorithms 2003), the algorithm radius
//! stepping refines.
//!
//! Unsettled vertices live in buckets of width ∆ by tentative distance.
//! Bucket `i` is processed in *light phases*: relax only light edges
//! (`w ≤ ∆`), re-collecting vertices that fall back into bucket `i`, until
//! the bucket stays empty; then relax the heavy edges (`w > ∆`) of every
//! vertex the bucket settled, once. Within a phase, relaxations run in
//! parallel with a priority-write.
//!
//! The phase counter corresponds to the paper's complaint that ∆-stepping
//! "can take Θ(n) substeps" per step: light phases per bucket are bounded
//! only by the longest light-edge chain inside the bucket, which is what
//! radius stepping's `k + 2` bound fixes.

use rayon::prelude::*;

use rs_core::{Goals, SolverScratch};
use rs_graph::{CsrGraph, Dist, VertexId, Weight, INF};
use rs_par::{AtomicBitset, EpochMinArray};

/// Outcome of a ∆-stepping run.
#[derive(Debug, Clone)]
pub struct DeltaSteppingResult {
    /// Exact shortest-path distances.
    pub dist: Vec<Dist>,
    /// Nonempty buckets processed (the ∆-stepping analogue of "steps").
    pub buckets: usize,
    /// Light phases executed (the analogue of "substeps").
    pub phases: usize,
    /// Largest number of light phases any single bucket needed — the
    /// quantity radius stepping's `k + 2` bound improves on.
    pub max_phases_in_bucket: usize,
    /// Edge relaxations attempted.
    pub relaxations: u64,
    /// True iff the run reused pre-allocated scratch state throughout
    /// (see [`rs_core::StepStats::scratch_reused`]).
    pub scratch_reused: bool,
}

/// Runs ∆-stepping from `source` with bucket width `delta`.
pub fn delta_stepping(g: &CsrGraph, source: VertexId, delta: Dist) -> DeltaSteppingResult {
    delta_stepping_to_goal(g, source, delta, None)
}

/// [`delta_stepping`], optionally stopping once `goal` is settled.
pub fn delta_stepping_to_goal(
    g: &CsrGraph,
    source: VertexId,
    delta: Dist,
    goal: Option<VertexId>,
) -> DeltaSteppingResult {
    delta_stepping_scratch(g, source, delta, Goals::from_option(goal), &mut SolverScratch::new())
}

/// The full ∆-stepping worker on reusable scratch state: the tentative
/// distances, the heavy-settled bitset and the bucket queue all come from
/// `scratch`, so a warm batch run allocates nothing per source. Optionally
/// stops once every goal in the bound is settled: when the scan reaches a
/// bucket strictly beyond each goal's tentative distance, those distances
/// are final (every remaining tentative value is at least the bucket's
/// lower bound).
pub fn delta_stepping_scratch(
    g: &CsrGraph,
    source: VertexId,
    delta: Dist,
    goals: Goals<'_>,
    scratch: &mut SolverScratch,
) -> DeltaSteppingResult {
    assert!(delta >= 1);
    let n = g.num_vertices();
    rs_core::scratch::assert_distance_range(g);
    scratch.begin(n);
    let mut queue = scratch.checkout_bucket(delta, g.max_weight() as u64);
    let mut buckets = 0;
    let mut phases = 0;
    let mut max_phases = 0;
    let mut relaxations = 0u64;
    let out_dist;
    {
        let view = scratch.view();
        let dist = view.dist;
        let settled_heavy = view.settled; // vertices whose heavy edges were relaxed
        let claimed = view.mark_a; // per-phase dedup, self-cleaning in relax_edges

        dist.store(source as usize, 0);
        queue.insert_or_decrease(source, 0);

        let light = |w: Weight| (w as Dist) <= delta;

        while let Some(b) = queue.next_nonempty_bucket() {
            if goals.all_done(|t| {
                let dt = dist.load(t as usize);
                dt != INF && queue.bucket_of(dt) < b
            }) {
                break;
            }
            buckets += 1;
            // Light phases: drain bucket b until it stays empty.
            let mut settled_here: Vec<VertexId> = Vec::new();
            let mut phases_here = 0;
            loop {
                let frontier = queue.take_bucket(b);
                if frontier.is_empty() {
                    break;
                }
                phases += 1;
                phases_here += 1;
                relaxations += frontier.iter().map(|&u| g.degree(u) as u64).sum::<u64>();
                let updated = relax_edges(g, dist, claimed, &frontier, light);
                settled_here.extend_from_slice(&frontier);
                // Re-bucket updated vertices; ones falling into bucket b
                // loop.
                for (v, d) in updated {
                    if queue.bucket_of(d) >= b {
                        queue.insert_or_decrease(v, d);
                    }
                }
            }
            max_phases = max_phases.max(phases_here);
            // Heavy phase: relax heavy edges of everything settled in
            // bucket b.
            let heavy_sources: Vec<VertexId> =
                settled_here.into_iter().filter(|&v| settled_heavy.set(v as usize)).collect();
            relaxations += heavy_sources.iter().map(|&u| g.degree(u) as u64).sum::<u64>();
            let updated = relax_edges(g, dist, claimed, &heavy_sources, |w| !light(w));
            for (v, d) in updated {
                queue.insert_or_decrease(v, d);
            }
        }

        out_dist = dist.snapshot(n);
    }
    scratch.return_bucket(queue);
    DeltaSteppingResult {
        dist: out_dist,
        buckets,
        phases,
        max_phases_in_bucket: max_phases,
        relaxations,
        scratch_reused: scratch.finish(),
    }
}

/// Relaxes the `keep`-filtered out-edges of `sources` in parallel;
/// returns each improved vertex once with its new tentative distance.
/// `claimed` must arrive all-clear and is handed back all-clear (bits are
/// reset for exactly the touched vertices), so one scratch bitset serves
/// every phase without an `O(n)` sweep.
fn relax_edges<F>(
    g: &CsrGraph,
    dist: &EpochMinArray,
    claimed: &AtomicBitset,
    sources: &[VertexId],
    keep: F,
) -> Vec<(VertexId, Dist)>
where
    F: Fn(Weight) -> bool + Sync,
{
    // Snapshot source distances so each phase is synchronous and the phase
    // count is schedule-independent.
    let snapshot: Vec<(VertexId, Dist)> =
        sources.iter().map(|&u| (u, dist.load(u as usize))).collect();
    let relax_one = |acc: &mut Vec<VertexId>, (u, du): (VertexId, Dist)| {
        for (v, w) in g.edges(u) {
            if keep(w) && dist.write_min(v as usize, du + w as Dist) && claimed.set(v as usize) {
                acc.push(v);
            }
        }
    };
    let touched: Vec<VertexId> = if snapshot.len() < 1024 {
        let mut acc = Vec::new();
        for &pair in &snapshot {
            relax_one(&mut acc, pair);
        }
        acc
    } else {
        snapshot
            .par_iter()
            .fold(Vec::new, |mut acc, &pair| {
                relax_one(&mut acc, pair);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    };
    touched
        .into_iter()
        .map(|v| {
            claimed.clear(v as usize);
            (v, dist.load(v as usize))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_default;
    use rs_graph::{gen, weights, WeightModel};

    #[test]
    fn agrees_with_dijkstra_various_deltas() {
        let g = weights::reweight(&gen::grid2d(11, 9), WeightModel::paper_weighted(), 13);
        let expect = dijkstra_default(&g, 7);
        for delta in [1u64, 100, 3_000, 10_000, 1_000_000] {
            let out = delta_stepping(&g, 7, delta);
            assert_eq!(out.dist, expect, "delta = {delta}");
        }
    }

    #[test]
    fn agrees_on_scale_free() {
        let g = weights::reweight(&gen::scale_free(400, 4, 3), WeightModel::paper_weighted(), 17);
        let expect = dijkstra_default(&g, 0);
        for delta in [500u64, 5_000] {
            assert_eq!(delta_stepping(&g, 0, delta).dist, expect);
        }
    }

    #[test]
    fn big_delta_degenerates_to_bellman_ford() {
        // One bucket holds everything: buckets == 1.
        let g = weights::reweight(&gen::path(20), WeightModel::UniformInt { lo: 1, hi: 5 }, 2);
        let out = delta_stepping(&g, 0, 1_000_000);
        assert_eq!(out.buckets, 1);
        assert_eq!(out.dist, dijkstra_default(&g, 0));
    }

    #[test]
    fn small_delta_many_buckets() {
        let g = gen::path(10); // unit weights
        let out = delta_stepping(&g, 0, 1);
        // Every vertex sits in its own bucket: 0..=9 -> 10 buckets, but the
        // bucket of the source settles only the source, etc.
        assert_eq!(out.buckets, 10);
        assert_eq!(out.dist[9], 9);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = gen::star(4);
        let mut b = rs_graph::EdgeListBuilder::new(6);
        for (u, v, w) in g.all_arcs().filter(|&(u, v, _)| u < v) {
            b.add_edge(u, v, w);
        }
        let g = b.build(); // vertices 4, 5 isolated
        let out = delta_stepping(&g, 0, 2);
        assert_eq!(out.dist[4], INF);
        assert_eq!(out.dist[5], INF);
    }
}
