//! Sequential Dijkstra, generic over the decrease-key heap.
//!
//! The correctness reference for every parallel solver in the workspace,
//! and — with its heap parameter — the ablation subject for the
//! preprocessing's priority-queue choice (Lemma 4.2 specifies Fibonacci
//! heaps; the d-ary heap usually wins on constants).

use rs_core::Goals;
use rs_ds::{DaryHeap, DecreaseKeyHeap};
use rs_graph::{CsrGraph, Dist, VertexId, INF};

/// The one relaxation loop behind every public variant (the same
/// worker-plus-wrappers shape as `bfs_par_to_goal` and
/// `delta_stepping_to_goal`): optionally stops once every goal in the
/// bound has been popped (one-to-many fan-out in a single solve), and
/// reports the pops (settled count) and attempted edge relaxations. The
/// heap is caller-provided (and must arrive empty with capacity ≥ `n`) so
/// batch workloads can reuse one heap across sources — see
/// [`rs_core::SolverScratch`]. With `parent` supplied (a `u32::MAX`-filled
/// `n`-slice), the shortest-path tree is recorded inline — O(1) per
/// relaxation, no post-pass — covering every improved vertex (settled
/// entries telescope exactly).
pub fn dijkstra_into_heap_with_parents<H: DecreaseKeyHeap>(
    g: &CsrGraph,
    s: VertexId,
    goals: Goals<'_>,
    heap: &mut H,
    mut parent: Option<&mut [VertexId]>,
) -> (Vec<Dist>, usize, u64) {
    let n = g.num_vertices();
    debug_assert!(heap.is_empty() && heap.capacity() >= n, "heap must arrive empty and sized");
    let mut dist = vec![INF; n];
    let mut settled = 0;
    let mut relaxations = 0u64;
    dist[s as usize] = 0;
    if let Some(p) = parent.as_deref_mut() {
        p[s as usize] = s;
    }
    // Countdown of goals not yet popped; membership is a binary search, so
    // the per-pop cost is O(log k), not O(k). `Goals::Many` arrives sorted
    // and deduplicated (the query plane canonicalises; asserted below).
    // `None` bound → usize::MAX, never reached.
    let goal_set = goals.as_slice();
    debug_assert!(
        goal_set.windows(2).all(|w| w[0] < w[1]),
        "Goals::Many must be sorted and deduplicated"
    );
    let mut remaining = if goals.bounded() { goal_set.len() } else { usize::MAX };
    if remaining == 0 {
        // An empty goal set is trivially settled: only the source is.
        return (dist, 1, 0);
    }
    heap.push_or_decrease(s, 0);
    while let Some((u, du)) = heap.pop_min() {
        debug_assert_eq!(du, dist[u as usize]);
        settled += 1;
        if goals.bounded() && goal_set.binary_search(&u).is_ok() {
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        relaxations += g.degree(u) as u64;
        for (v, w) in g.edges(u) {
            let cand = du + w as Dist;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                if let Some(p) = parent.as_deref_mut() {
                    p[v as usize] = u;
                }
                heap.push_or_decrease(v, cand);
            }
        }
    }
    (dist, settled, relaxations)
}

/// [`dijkstra_into_heap_with_parents`] without parent recording.
pub fn dijkstra_into_heap<H: DecreaseKeyHeap>(
    g: &CsrGraph,
    s: VertexId,
    goal: Option<VertexId>,
    heap: &mut H,
) -> (Vec<Dist>, usize, u64) {
    dijkstra_into_heap_with_parents(g, s, Goals::from_option(goal), heap, None)
}

/// [`dijkstra_into_heap`] with a freshly allocated heap.
pub fn dijkstra_with_goal<H: DecreaseKeyHeap>(
    g: &CsrGraph,
    s: VertexId,
    goal: Option<VertexId>,
) -> (Vec<Dist>, usize, u64) {
    dijkstra_into_heap(g, s, goal, &mut H::with_capacity(g.num_vertices()))
}

/// Single-source shortest paths with heap `H`; `dist[v] = INF` if
/// unreachable.
pub fn dijkstra<H: DecreaseKeyHeap>(g: &CsrGraph, s: VertexId) -> Vec<Dist> {
    dijkstra_with_goal::<H>(g, s, None).0
}

/// [`dijkstra`] with the default 4-ary heap.
pub fn dijkstra_default(g: &CsrGraph, s: VertexId) -> Vec<Dist> {
    dijkstra::<DaryHeap>(g, s)
}

/// [`dijkstra`] stopping as soon as `goal` is popped (its distance is then
/// final); also returns the number of pops (the settled count). Remaining
/// entries are tentative upper bounds or [`INF`].
pub fn dijkstra_to_goal<H: DecreaseKeyHeap>(
    g: &CsrGraph,
    s: VertexId,
    goal: VertexId,
) -> (Vec<Dist>, usize) {
    let (dist, settled, _) = dijkstra_with_goal::<H>(g, s, Some(goal));
    (dist, settled)
}

/// Dijkstra that also returns the shortest-path tree: `parent[v]` is the
/// predecessor of `v` on a shortest `s → v` path (`parent[s] = s`,
/// `u32::MAX` if unreachable).
pub fn dijkstra_with_parents(g: &CsrGraph, s: VertexId) -> (Vec<Dist>, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap = DaryHeap::with_capacity(n);
    dist[s as usize] = 0;
    parent[s as usize] = s;
    heap.push_or_decrease(s, 0);
    while let Some((u, du)) = heap.pop_min() {
        for (v, w) in g.edges(u) {
            let cand = du + w as Dist;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                parent[v as usize] = u;
                heap.push_or_decrease(v, cand);
            }
        }
    }
    (dist, parent)
}

/// Reconstructs the shortest path `s → t` from a parent array, or `None`
/// if `t` is unreachable (the workspace-wide helper, re-exported here for
/// continuity with `dijkstra_with_parents`).
pub use rs_core::stats::extract_path;

#[cfg(test)]
mod tests {
    use super::*;
    use rs_ds::{FibonacciHeap, PairingHeap};
    use rs_graph::{gen, weights, EdgeListBuilder, WeightModel};

    fn diamond() -> CsrGraph {
        // 0 -2- 1 -2- 3, 0 -5- 2 -1- 3: shortest 0->3 = 4 via 1.
        let mut b = EdgeListBuilder::new(4);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 3, 2);
        b.add_edge(0, 2, 5);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn hand_checked_distances() {
        let d = dijkstra_default(&diamond(), 0);
        assert_eq!(d, vec![0, 2, 5, 4]);
    }

    #[test]
    fn unreachable_is_inf() {
        let mut b = EdgeListBuilder::new(3);
        b.add_edge(0, 1, 7);
        let d = dijkstra_default(&b.build(), 0);
        assert_eq!(d, vec![0, 7, INF]);
    }

    #[test]
    fn all_heaps_agree() {
        let g = weights::reweight(&gen::grid2d(12, 13), WeightModel::paper_weighted(), 4);
        let a = dijkstra::<DaryHeap>(&g, 5);
        let b = dijkstra::<PairingHeap>(&g, 5);
        let c = dijkstra::<FibonacciHeap>(&g, 5);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn parents_form_shortest_paths() {
        let g = weights::reweight(&gen::scale_free(200, 3, 2), WeightModel::paper_weighted(), 5);
        let (dist, parent) = dijkstra_with_parents(&g, 0);
        for t in 0..200u32 {
            let path = extract_path(&parent, t).expect("connected");
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), t);
            let mut acc = 0u64;
            for w in path.windows(2) {
                acc += g.arc_weight(w[0], w[1]).expect("path edge exists") as u64;
            }
            assert_eq!(acc, dist[t as usize], "path weight equals distance to {t}");
        }
    }

    #[test]
    fn source_distance_zero_path_trivial() {
        let (_, parent) = dijkstra_with_parents(&diamond(), 2);
        assert_eq!(extract_path(&parent, 2), Some(vec![2]));
    }
}
