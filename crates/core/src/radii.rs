//! Vertex radius assignments.
//!
//! Algorithm 1 takes a function `r : V → R+`. §3 spells out the spectrum:
//! `r ≡ 0` makes it Dijkstra (one substep per step), `r ≡ ∞` makes it
//! Bellman–Ford (one step of many substeps), `r ≡ ∆` is almost ∆-stepping,
//! and `r(v) = r_ρ(v)` from preprocessing gives the paper's bounds. The
//! algorithm is *correct* for every choice; the radii only trade steps
//! against substeps.

use rs_graph::{Dist, VertexId, INF};

/// A radius assignment `r(v)`.
#[derive(Debug, Clone)]
pub enum RadiiSpec<'a> {
    /// `r(v) = 0`: Dijkstra-like; settles one distance level per step.
    Zero,
    /// `r(v) = ∞`: Bellman–Ford-like; one step, substeps to fixpoint.
    Infinite,
    /// `r(v) = ∆`: fixed increment, ∆-stepping-like (§3: "almost
    /// ∆-stepping, but not quite since ∆ is added to the distance of the
    /// nearest frontier vertex instead of to `d_{i-1}`").
    Constant(Dist),
    /// Per-vertex radii, e.g. `r_ρ(v)` from preprocessing.
    PerVertex(&'a [Dist]),
}

impl<'a> RadiiSpec<'a> {
    /// `r(v)`.
    #[inline]
    pub fn get(&self, v: VertexId) -> Dist {
        match self {
            RadiiSpec::Zero => 0,
            RadiiSpec::Infinite => INF,
            RadiiSpec::Constant(d) => *d,
            RadiiSpec::PerVertex(r) => r[v as usize],
        }
    }

    /// `δ + r(v)`, saturating at `INF`.
    #[inline]
    pub fn key(&self, v: VertexId, delta: Dist) -> Dist {
        delta.saturating_add(self.get(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_values() {
        assert_eq!(RadiiSpec::Zero.get(3), 0);
        assert_eq!(RadiiSpec::Infinite.get(3), INF);
        assert_eq!(RadiiSpec::Constant(7).get(3), 7);
        let r = vec![1, 2, 3];
        assert_eq!(RadiiSpec::PerVertex(&r).get(2), 3);
    }

    #[test]
    fn key_saturates() {
        assert_eq!(RadiiSpec::Infinite.key(0, 5), INF);
        assert_eq!(RadiiSpec::Constant(2).key(0, INF - 1), INF);
        assert_eq!(RadiiSpec::Constant(2).key(0, 10), 12);
    }
}
