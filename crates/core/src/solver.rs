//! The unified SSSP solver API.
//!
//! The paper frames Dijkstra, Bellman–Ford, ∆-stepping and radius stepping
//! as points on one spectrum — radii `Zero` / `Infinite` / `Constant(∆)`
//! recover each baseline (§3) — and this module gives the code the same
//! shape: every algorithm is an [`SsspSolver`] producing a
//! [`crate::SsspResult`], constructed through one fluent [`SolverBuilder`].
//!
//! * [`SsspSolver`] — `solve`, goal-bounded `solve_to_goal`,
//!   scratch-reusing [`SsspSolver::solve_with_scratch`], and the
//!   batch-aware multi-source [`SsspSolver::solve_batch`].
//! * [`Algorithm`] — the algorithm selector (`RadiusStepping { engine,
//!   radii }`, `Dijkstra { heap }`, `DeltaStepping { delta }`,
//!   `BellmanFord`, `Bfs`).
//! * [`SolverBuilder`] — picks the algorithm, optionally attaches
//!   (k, ρ)-preprocessing, and toggles tracing / parent recording.
//! * [`BatchPlan`] — the multi-source execution layer: deduplicates the
//!   source set, fans the unique solves over the work-stealing pool with
//!   one reusable [`SolverScratch`] per pool task, and aggregates the
//!   batch's [`crate::StepStats`] into a [`BatchStats`].
//!
//! This module defines the trait, the configuration types, and the
//! radius-stepping solvers. The baseline adapters live in
//! `rs_baselines::solver` (which also supplies the builder's `build()`
//! through its `BuildSolver` extension trait, since the baseline
//! implementations sit above this crate in the dependency graph); the
//! `radius_stepping` facade's prelude re-exports the whole surface.
//!
//! ```
//! use rs_core::solver::{Radii, SolverBuilder, SsspSolver};
//! use rs_graph::{gen, weights, WeightModel};
//!
//! let g = weights::reweight(&gen::grid2d(12, 12), WeightModel::paper_weighted(), 1);
//! let solver = SolverBuilder::new(&g)
//!     .record_parents(true)
//!     .radius_stepping_solver(Default::default(), Radii::Constant(2_000));
//! let out = solver.solve(0);
//! assert_eq!(out.dist[0], 0);
//! assert!(out.extract_path(143).is_some(), "parents recorded uniformly");
//! ```

use rs_graph::{CsrGraph, Dist, VertexId};

use crate::engine::{radius_stepping_with, radius_stepping_with_scratch, EngineConfig, EngineKind};
use crate::preprocess::{PreprocessConfig, Preprocessed};
use crate::radii::RadiiSpec;
use crate::scratch::SolverScratch;
use crate::stats::SsspResult;

/// A single-source shortest-path solver bound to one graph.
///
/// Implementations are interchangeable: on the same graph every solver
/// produces identical `dist` arrays (asserted by the cross-algorithm
/// conformance tests). They differ only in their counters and costs.
pub trait SsspSolver: Sync {
    /// Human-readable algorithm name (for reports and error messages).
    fn name(&self) -> String;

    /// The graph distances refer to. For preprocessed solvers this is the
    /// shortcut-augmented (k, ρ)-graph — distances are identical to the
    /// input graph's by construction.
    fn graph(&self) -> &CsrGraph;

    /// Exact distances from `source` to every vertex.
    fn solve(&self, source: VertexId) -> SsspResult;

    /// Distances from `source`, stopping early once `goal` is settled.
    ///
    /// `dist[goal]` is exact; every other finite entry is a valid upper
    /// bound (settled vertices are exact, unsettled ones tentative or
    /// `INF`). The default implementation runs a full solve, which
    /// trivially satisfies the contract; algorithms with a cheap settled
    /// test override it.
    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        let _ = goal;
        self.solve(source)
    }

    /// Like [`SsspSolver::solve`], but running on caller-provided
    /// [`SolverScratch`] state: after the first (cold) solve on a scratch,
    /// no working distance array, bitset, heap or bucket queue is
    /// allocated again — the serving-path entry point the batch layer fans
    /// out. Results are bit-identical to [`SsspSolver::solve`] (asserted
    /// by the conformance suite); the only observable difference is
    /// [`crate::StepStats::scratch_reused`].
    ///
    /// The default implementation ignores the scratch and delegates to
    /// `solve` (always correct, never warm); every solver in this
    /// workspace overrides it.
    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        let _ = scratch;
        self.solve(source)
    }

    /// Solves from every source, fanning out across the rayon pool — the
    /// paper's motivating workload (§5.4: preprocessing is paid once, then
    /// "Sssp will be run from multiple sources").
    ///
    /// This is the batch-aware path: duplicate sources are answered once
    /// and cloned ([`BatchPlan`] dedup — observationally invisible), and
    /// each pool task reuses one [`SolverScratch`] across every solve it
    /// claims, so an `N`-source batch performs at most
    /// `min(threads, unique sources)` working-state allocations. Use
    /// [`BatchPlan::execute`] directly to also get the aggregated
    /// [`BatchStats`].
    fn solve_batch(&self, sources: &[VertexId]) -> Vec<SsspResult> {
        BatchPlan::new(sources).execute(self).into_results()
    }
}

/// A prepared multi-source batch: the dedup layer of
/// [`SsspSolver::solve_batch`], reusable across solvers.
///
/// Construction groups the requested sources into their unique set
/// (first-occurrence order) and remembers, for every requested slot, which
/// unique solve answers it. [`BatchPlan::execute`] then fans the unique
/// solves over the pool via [`rs_par::worker_map`] — one lazily-created
/// [`SolverScratch`] per pool task, dynamic load balancing via a shared
/// work counter — and expands the answers back to request order.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// The requested sources, in request order.
    sources: Vec<VertexId>,
    /// Unique sources, in first-occurrence order.
    unique: Vec<VertexId>,
    /// `rep[i]` = index into `unique` answering `sources[i]`.
    rep: Vec<usize>,
}

impl BatchPlan {
    /// Plans a batch over `sources` (duplicates allowed, order preserved).
    pub fn new(sources: &[VertexId]) -> Self {
        let mut first_slot: std::collections::HashMap<VertexId, usize> =
            std::collections::HashMap::with_capacity(sources.len());
        let mut unique = Vec::with_capacity(sources.len());
        let mut rep = Vec::with_capacity(sources.len());
        for &s in sources {
            let slot = *first_slot.entry(s).or_insert_with(|| {
                unique.push(s);
                unique.len() - 1
            });
            rep.push(slot);
        }
        BatchPlan { sources: sources.to_vec(), unique, rep }
    }

    /// Number of requested sources (including duplicates).
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when the batch requests nothing.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The requested sources, in request order.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// The deduplicated sources actually solved.
    pub fn unique_sources(&self) -> &[VertexId] {
        &self.unique
    }

    /// Requested solves answered by cloning another slot's result.
    pub fn deduplicated(&self) -> usize {
        self.sources.len() - self.unique.len()
    }

    /// Runs the batch on `solver`: unique solves fan out over the pool
    /// with per-task scratch reuse, results land in request order.
    pub fn execute<S: SsspSolver + ?Sized>(&self, solver: &S) -> BatchOutcome {
        let unique_results: Vec<SsspResult> =
            rs_par::worker_map(self.unique.len(), SolverScratch::new, |scratch, i| {
                solver.solve_with_scratch(self.unique[i], scratch)
            });
        let stats = BatchStats::collect(&unique_results, &self.rep);
        let results = if self.unique.len() == self.sources.len() {
            unique_results
        } else {
            self.rep.iter().map(|&u| unique_results[u].clone()).collect()
        };
        BatchOutcome { results, stats }
    }
}

/// What [`BatchPlan::execute`] returns: per-source results (request order)
/// plus the batch-level aggregates.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One result per requested source, in request order (duplicates are
    /// clones of their unique solve).
    pub results: Vec<SsspResult>,
    /// Aggregated counters for the whole batch.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// Drops the aggregates, keeping the per-source results.
    pub fn into_results(self) -> Vec<SsspResult> {
        self.results
    }
}

/// Per-batch aggregate of the solves' [`crate::StepStats`].
///
/// Step/substep/relaxation totals are summed over the *delivered* results
/// (a deduplicated source counts once per request, so means stay faithful
/// to the requested workload); the scratch counters describe the *unique*
/// solves actually executed — the physical allocation events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requested sources (including duplicates).
    pub solves: usize,
    /// Unique solves actually executed.
    pub unique_solves: usize,
    /// Unique solves that ran entirely on pre-allocated scratch state.
    pub scratch_reuses: usize,
    /// Unique solves that had to allocate (at most one per pool task).
    pub cold_solves: usize,
    /// Total steps over delivered results.
    pub steps: usize,
    /// Total substeps over delivered results.
    pub substeps: usize,
    /// Largest `max_substeps_in_step` over delivered results.
    pub max_substeps_in_step: usize,
    /// Total relaxations over delivered results.
    pub relaxations: u64,
    /// Total settled vertices over delivered results.
    pub settled: usize,
}

impl BatchStats {
    fn collect(unique_results: &[SsspResult], rep: &[usize]) -> BatchStats {
        let mut stats = BatchStats {
            solves: rep.len(),
            unique_solves: unique_results.len(),
            ..Default::default()
        };
        for r in unique_results {
            if r.stats.scratch_reused {
                stats.scratch_reuses += 1;
            } else {
                stats.cold_solves += 1;
            }
        }
        for &u in rep {
            let s = &unique_results[u].stats;
            stats.steps += s.steps;
            stats.substeps += s.substeps;
            stats.max_substeps_in_step = stats.max_substeps_in_step.max(s.max_substeps_in_step);
            stats.relaxations += s.relaxations;
            stats.settled += s.settled;
        }
        stats
    }

    /// Mean steps per requested source.
    pub fn mean_steps(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.steps as f64 / self.solves as f64
        }
    }
}

/// Owned radius assignment (the builder cannot borrow like
/// [`RadiiSpec`] does).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Radii {
    /// `r ≡ 0`: Dijkstra-like (one distance level per step).
    #[default]
    Zero,
    /// `r ≡ ∞`: Bellman–Ford-like (one step, substeps to fixpoint).
    Infinite,
    /// `r ≡ ∆`: ∆-stepping-like.
    Constant(Dist),
    /// Per-vertex radii, e.g. `r_ρ(v)` from preprocessing.
    PerVertex(Vec<Dist>),
}

impl Radii {
    /// Borrowing view for the engines.
    pub fn as_spec(&self) -> RadiiSpec<'_> {
        match self {
            Radii::Zero => RadiiSpec::Zero,
            Radii::Infinite => RadiiSpec::Infinite,
            Radii::Constant(d) => RadiiSpec::Constant(*d),
            Radii::PerVertex(r) => RadiiSpec::PerVertex(r),
        }
    }
}

/// Decrease-key heap selector for the Dijkstra baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapKind {
    /// 4-ary array heap (usually fastest in practice).
    #[default]
    Dary,
    /// Pairing heap.
    Pairing,
    /// Fibonacci heap (the Lemma 4.2 choice).
    Fibonacci,
}

/// Algorithm selector: the five families of the paper's evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Algorithm {
    /// Radius stepping (Algorithm 1/2) with an engine and radii. Attach
    /// [`SolverBuilder::preprocess`] to derive `r_ρ(v)` radii and shortcut
    /// edges instead of passing radii here.
    RadiusStepping { engine: EngineKind, radii: Radii },
    /// Sequential Dijkstra, generic over the decrease-key heap.
    Dijkstra { heap: HeapKind },
    /// Meyer–Sanders ∆-stepping with bucket width ∆.
    DeltaStepping { delta: Dist },
    /// Round-synchronous parallel Bellman–Ford.
    BellmanFord,
    /// Level-synchronous parallel BFS (unit-weight graphs only).
    Bfs,
}

impl Default for Algorithm {
    fn default() -> Self {
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero }
    }
}

/// Cross-algorithm output options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverConfig {
    /// Record a per-step trace where the algorithm supports it.
    pub trace: bool,
    /// Attach the shortest-path tree (`SsspResult::parent`) to results.
    pub record_parents: bool,
}

impl SolverConfig {
    /// Engine options for one solve.
    pub fn engine_config(&self, goal: Option<VertexId>) -> EngineConfig {
        EngineConfig { trace: self.trace, goal }
    }

    /// Applies the post-solve options (currently: parent derivation).
    pub fn finish(&self, g: &CsrGraph, result: SsspResult) -> SsspResult {
        if self.record_parents {
            result.with_parents(g)
        } else {
            result
        }
    }
}

/// The graph a solver runs on: borrowed from the caller, or owned when
/// preprocessing replaced it with the shortcut-augmented (k, ρ)-graph.
#[derive(Debug, Clone)]
pub enum SolverGraph<'g> {
    Borrowed(&'g CsrGraph),
    Owned(CsrGraph),
}

impl std::ops::Deref for SolverGraph<'_> {
    type Target = CsrGraph;

    fn deref(&self) -> &CsrGraph {
        match self {
            SolverGraph::Borrowed(g) => g,
            SolverGraph::Owned(g) => g,
        }
    }
}

/// Fluent construction of any [`SsspSolver`].
///
/// ```
/// use rs_core::solver::{Algorithm, Radii, SolverBuilder, SsspSolver};
/// use rs_core::{EngineKind, PreprocessConfig};
/// use rs_graph::{gen, weights, WeightModel};
///
/// let g = weights::reweight(&gen::grid2d(10, 10), WeightModel::paper_weighted(), 7);
/// let solver = SolverBuilder::new(&g)
///     .algorithm(Algorithm::RadiusStepping {
///         engine: EngineKind::Frontier,
///         radii: Radii::Zero, // replaced by r_rho(v) below
///     })
///     .preprocess(PreprocessConfig::new(1, 16))
///     .trace(true)
///     .radius_stepping_solver_from_algorithm(); // or `.build()` via rs_baselines
/// assert_eq!(solver.solve(0).dist[0], 0);
/// ```
#[derive(Debug, Clone)]
pub struct SolverBuilder<'g> {
    graph: &'g CsrGraph,
    algorithm: Algorithm,
    preprocess: Option<PreprocessConfig>,
    preprocess_cache: Option<std::path::PathBuf>,
    config: SolverConfig,
}

impl<'g> SolverBuilder<'g> {
    /// Starts a builder for `graph` (default algorithm: frontier-engine
    /// radius stepping with zero radii, i.e. batched Dijkstra).
    pub fn new(graph: &'g CsrGraph) -> Self {
        SolverBuilder {
            graph,
            algorithm: Algorithm::default(),
            preprocess: None,
            preprocess_cache: None,
            config: SolverConfig::default(),
        }
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Attaches (k, ρ)-preprocessing: at build time the graph is replaced
    /// by the shortcut-augmented (k, ρ)-graph (distances unchanged) and —
    /// for radius stepping — the radii by `r_ρ(v)`.
    pub fn preprocess(mut self, cfg: PreprocessConfig) -> Self {
        self.preprocess = Some(cfg);
        self
    }

    /// Like [`SolverBuilder::preprocess`], but backed by an on-disk cache:
    /// a preprocessing previously saved at `path` with a matching
    /// configuration (and vertex count) is loaded instead of rebuilt —
    /// paying the `O(m log n + nρ²)` phase once per graph, not once per
    /// process. On a miss (absent, unreadable, or stale file) the
    /// preprocessing is rebuilt and saved back to `path` best-effort.
    pub fn preprocess_cached(
        mut self,
        path: impl Into<std::path::PathBuf>,
        cfg: PreprocessConfig,
    ) -> Self {
        self.preprocess = Some(cfg);
        self.preprocess_cache = Some(path.into());
        self
    }

    /// Toggles per-step tracing (where the algorithm records one).
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Toggles shortest-path-tree recording on every result.
    pub fn record_parents(mut self, on: bool) -> Self {
        self.config.record_parents = on;
        self
    }

    /// Decomposes the builder (used by `rs_baselines::solver::BuildSolver`,
    /// which constructs the baseline adapters this crate cannot name).
    pub fn into_parts(self) -> BuilderParts<'g> {
        BuilderParts {
            graph: self.graph,
            algorithm: self.algorithm,
            preprocess: self.preprocess,
            preprocess_cache: self.preprocess_cache,
            config: self.config,
        }
    }

    /// Builds a radius-stepping solver directly (engine + radii given
    /// explicitly; use `build()` from the facade for the general case).
    pub fn radius_stepping_solver(
        self,
        engine: EngineKind,
        radii: Radii,
    ) -> RadiusSteppingSolver<'g> {
        self.algorithm(Algorithm::RadiusStepping { engine, radii })
            .radius_stepping_solver_from_algorithm()
    }

    /// Builds a radius-stepping solver from the current `algorithm`
    /// selection, applying any attached preprocessing.
    ///
    /// Panics if the selected algorithm is not `RadiusStepping` — the
    /// baseline variants are built by `rs_baselines::solver::BuildSolver`.
    pub fn radius_stepping_solver_from_algorithm(self) -> RadiusSteppingSolver<'g> {
        let parts = self.into_parts();
        let Algorithm::RadiusStepping { engine, radii } = parts.algorithm else {
            panic!(
                "radius_stepping_solver_from_algorithm on {:?}; use BuildSolver::build",
                parts.algorithm
            )
        };
        RadiusSteppingSolver::from_parts(
            parts.graph,
            engine,
            radii,
            parts.preprocess,
            parts.preprocess_cache.as_deref(),
            parts.config,
        )
    }
}

/// The builder's decomposed state (consumed by the `build()` extension).
pub struct BuilderParts<'g> {
    pub graph: &'g CsrGraph,
    pub algorithm: Algorithm,
    pub preprocess: Option<PreprocessConfig>,
    pub preprocess_cache: Option<std::path::PathBuf>,
    pub config: SolverConfig,
}

impl<'g> BuilderParts<'g> {
    /// Resolves the attached preprocessing: returns the graph baselines
    /// should run on (augmented when preprocessing is attached — distances
    /// are preserved, so every solver stays exact).
    pub fn resolve_graph(&self) -> SolverGraph<'g> {
        match &self.preprocess {
            None => SolverGraph::Borrowed(self.graph),
            Some(cfg) => SolverGraph::Owned(
                resolve_preprocessed(self.graph, cfg, self.preprocess_cache.as_deref()).graph,
            ),
        }
    }
}

/// Loads a compatible preprocessing from `cache`, or builds one (saving it
/// back to `cache`, best-effort, when a path is given). A cached file is
/// compatible when its parameters match `cfg` exactly and the content hash
/// of the input graph recorded in its header
/// ([`Preprocessed::input_hash`], computed by
/// [`CsrGraph::content_hash`]) matches `g` — so a mutated graph of the
/// same shape (same vertex and edge counts, different wiring or weights)
/// triggers a rebuild instead of silently serving stale shortcuts.
/// Anything else — missing file, garbage, an old-format file, stale
/// parameters, a different graph — falls back to a rebuild rather than an
/// error.
pub fn resolve_preprocessed(
    g: &CsrGraph,
    cfg: &PreprocessConfig,
    cache: Option<&std::path::Path>,
) -> Preprocessed {
    if let Some(path) = cache {
        if let Ok(pre) = Preprocessed::load(path) {
            if pre.config == *cfg
                && pre.graph.num_vertices() == g.num_vertices()
                && pre.input_hash == g.content_hash()
            {
                return pre;
            }
        }
        let pre = Preprocessed::build(g, cfg);
        // Best-effort: an unwritable cache degrades to rebuild-next-time.
        let _ = pre.save(path);
        pre
    } else {
        Preprocessed::build(g, cfg)
    }
}

/// Radius stepping (either engine, any radii, optional preprocessing)
/// behind the [`SsspSolver`] interface.
pub struct RadiusSteppingSolver<'g> {
    graph: SolverGraph<'g>,
    radii: Radii,
    engine: EngineKind,
    config: SolverConfig,
    preprocessed: bool,
}

impl<'g> RadiusSteppingSolver<'g> {
    /// Direct construction without a builder.
    pub fn new(graph: &'g CsrGraph, engine: EngineKind, radii: Radii) -> Self {
        RadiusSteppingSolver {
            graph: SolverGraph::Borrowed(graph),
            radii,
            engine,
            config: SolverConfig::default(),
            preprocessed: false,
        }
    }

    /// Construction from builder state: preprocessing (when attached)
    /// replaces both the graph and the radii, loading from / saving to the
    /// `cache` path when one was supplied.
    pub fn from_parts(
        graph: &'g CsrGraph,
        engine: EngineKind,
        radii: Radii,
        preprocess: Option<PreprocessConfig>,
        cache: Option<&std::path::Path>,
        config: SolverConfig,
    ) -> Self {
        match preprocess {
            None => RadiusSteppingSolver {
                graph: SolverGraph::Borrowed(graph),
                radii,
                engine,
                config,
                preprocessed: false,
            },
            Some(cfg) => {
                let pre = resolve_preprocessed(graph, &cfg, cache);
                RadiusSteppingSolver {
                    graph: SolverGraph::Owned(pre.graph),
                    radii: Radii::PerVertex(pre.radii),
                    engine,
                    config,
                    preprocessed: true,
                }
            }
        }
    }

    fn run(&self, source: VertexId, goal: Option<VertexId>) -> SsspResult {
        let out = radius_stepping_with(
            &self.graph,
            &self.radii.as_spec(),
            source,
            self.engine,
            self.config.engine_config(goal),
        );
        self.config.finish(&self.graph, out)
    }

    fn run_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        let out = radius_stepping_with_scratch(
            &self.graph,
            &self.radii.as_spec(),
            source,
            self.engine,
            self.config.engine_config(None),
            scratch,
        );
        self.config.finish(&self.graph, out)
    }
}

impl SsspSolver for RadiusSteppingSolver<'_> {
    fn name(&self) -> String {
        let engine = match self.engine {
            EngineKind::Frontier => "frontier",
            EngineKind::Bst => "bst",
            EngineKind::Unweighted => "unweighted",
        };
        if self.preprocessed {
            format!("radius-stepping/{engine} (preprocessed)")
        } else {
            format!("radius-stepping/{engine}")
        }
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn solve(&self, source: VertexId) -> SsspResult {
        self.run(source, None)
    }

    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        self.run(source, Some(goal))
    }

    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        self.run_scratch(source, scratch)
    }
}

/// [`Preprocessed`] is itself a solver: `solve` is `sssp` on the
/// (k, ρ)-graph with the derived radii.
impl SsspSolver for Preprocessed {
    fn name(&self) -> String {
        format!("radius-stepping (k={}, rho={})", self.config.k, self.config.rho)
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn solve(&self, source: VertexId) -> SsspResult {
        self.sssp(source)
    }

    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        radius_stepping_with(
            &self.graph,
            &RadiiSpec::PerVertex(&self.radii),
            source,
            EngineKind::Frontier,
            EngineConfig::with_goal(goal),
        )
    }

    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        radius_stepping_with_scratch(
            &self.graph,
            &RadiiSpec::PerVertex(&self.radii),
            source,
            EngineKind::Frontier,
            EngineConfig::default(),
            scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, weights, WeightModel, INF};

    fn grid() -> CsrGraph {
        weights::reweight(&gen::grid2d(9, 9), WeightModel::paper_weighted(), 4)
    }

    #[test]
    fn builder_constructs_working_solver() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .trace(true)
            .record_parents(true)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let out = solver.solve(0);
        assert_eq!(out.dist[0], 0);
        assert!(out.stats.trace.is_some(), "trace requested");
        let path = out.extract_path(80).expect("connected grid");
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 80);
    }

    #[test]
    fn preprocessing_replaces_radii_and_graph() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .preprocess(PreprocessConfig::new(1, 8))
            .radius_stepping_solver_from_algorithm();
        assert!(solver.name().contains("preprocessed"));
        assert!(solver.graph().num_edges() >= g.num_edges(), "shortcuts added");
        assert!(matches!(solver.radii, Radii::PerVertex(_)));
        let direct =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Bst, Radii::Infinite);
        assert_eq!(solver.solve(3).dist, direct.solve(3).dist);
    }

    #[test]
    fn goal_solve_settles_goal_exactly() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let full = solver.solve(0);
        let bounded = solver.solve_to_goal(0, 40);
        assert_eq!(bounded.dist[40], full.dist[40]);
        assert!(bounded.stats.steps <= full.stats.steps);
        for (b, f) in bounded.dist.iter().zip(&full.dist) {
            assert!(*b >= *f, "goal-bounded entries are upper bounds");
        }
    }

    #[test]
    fn batch_matches_per_source() {
        let g = grid();
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 8));
        let sources = [0u32, 11, 44, 80];
        let batch = pre.solve_batch(&sources);
        assert_eq!(batch.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(batch[i].dist, pre.solve(s).dist);
        }
    }

    #[test]
    fn batch_plan_dedups_and_orders() {
        let plan = BatchPlan::new(&[7, 3, 7, 7, 1, 3]);
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.sources(), &[7, 3, 7, 7, 1, 3]);
        assert_eq!(plan.unique_sources(), &[7, 3, 1], "first-occurrence order");
        assert_eq!(plan.deduplicated(), 3);

        let empty = BatchPlan::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.unique_sources(), &[] as &[VertexId]);
    }

    #[test]
    fn batch_execute_reports_aggregates_and_dedup_is_invisible() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let sources = [5u32, 9, 5, 77, 9, 5];
        let outcome = BatchPlan::new(&sources).execute(&solver);
        assert_eq!(outcome.stats.solves, 6);
        assert_eq!(outcome.stats.unique_solves, 3);
        assert_eq!(
            outcome.stats.cold_solves + outcome.stats.scratch_reuses,
            outcome.stats.unique_solves
        );
        assert!(
            outcome.stats.cold_solves <= rs_par::num_threads().min(3),
            "at most one cold solve per pool task"
        );
        // Aggregates sum over delivered results (duplicates re-counted).
        let per_source: Vec<SsspResult> = sources.iter().map(|&s| solver.solve(s)).collect();
        let steps: usize = per_source.iter().map(|r| r.stats.steps).sum();
        assert_eq!(outcome.stats.steps, steps);
        assert!((outcome.stats.mean_steps() - steps as f64 / 6.0).abs() < 1e-12);
        // Dedup is observationally invisible.
        for (out, reference) in outcome.results.iter().zip(&per_source) {
            assert_eq!(out.dist, reference.dist);
        }

        // Empty and singleton batches.
        let empty = BatchPlan::new(&[]).execute(&solver);
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats, BatchStats::default());
        let single = BatchPlan::new(&[33]).execute(&solver);
        assert_eq!(single.results.len(), 1);
        assert_eq!(single.results[0].dist, solver.solve(33).dist);
        assert_eq!(single.stats.unique_solves, 1);
    }

    #[test]
    fn solve_with_scratch_interleaved_matches_fresh() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .record_parents(true)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Constant(1_500));
        let mut scratch = SolverScratch::new();
        for s in [0u32, 80, 40, 0, 17] {
            let warm = solver.solve_with_scratch(s, &mut scratch);
            let fresh = solver.solve(s);
            assert_eq!(warm.dist, fresh.dist, "source {s}");
            assert_eq!(warm.parent, fresh.parent, "source {s}: parents recorded on both paths");
        }
        assert_eq!(scratch.reuses(), 4);
    }

    #[test]
    fn cache_rebuilds_on_mutated_same_size_graph() {
        // Same vertex AND edge counts, different weights: the old
        // shape-based staleness check accepted this cache; the content
        // hash in the header must reject it.
        let g1 = grid();
        let g2 = rs_graph::weights::reweight(
            &rs_graph::gen::grid2d(9, 9),
            rs_graph::WeightModel::paper_weighted(),
            99, // different weight seed, same topology
        );
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_ne!(g1.content_hash(), g2.content_hash());

        let cfg = PreprocessConfig::new(1, 8);
        let path = std::env::temp_dir().join(format!(
            "rs_hash_cache_{}_{:p}.bin",
            std::process::id(),
            &g1
        ));
        std::fs::remove_file(&path).ok();

        let pre1 = resolve_preprocessed(&g1, &cfg, Some(&path));
        assert_eq!(pre1.input_hash, g1.content_hash());
        assert_eq!(Preprocessed::load(&path).unwrap().input_hash, g1.content_hash());

        // Mutated graph, same shape: must rebuild (and refresh the file).
        let pre2 = resolve_preprocessed(&g2, &cfg, Some(&path));
        assert_eq!(pre2.input_hash, g2.content_hash(), "stale cache served for mutated graph");
        assert_eq!(Preprocessed::load(&path).unwrap().input_hash, g2.content_hash());
        let direct =
            SolverBuilder::new(&g2).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        assert_eq!(pre2.solve(5).dist, direct.solve(5).dist);

        // Unchanged graph: served from cache (hash matches).
        let pre1_again = resolve_preprocessed(&g2, &cfg, Some(&path));
        assert_eq!(pre1_again.input_hash, g2.content_hash());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn preprocess_cached_roundtrip() {
        let g = grid();
        let cfg = PreprocessConfig::new(2, 10);
        let path = std::env::temp_dir().join(format!(
            "rs_solver_cache_{}_{:p}.bin",
            std::process::id(),
            &g
        ));
        std::fs::remove_file(&path).ok();

        // First build: cache miss — builds and persists.
        let first = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert!(path.exists(), "cache file must be written on a miss");
        let expect = first.solve(5).dist;

        // Second build: served from the cache, identical results.
        let cached = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert!(cached.name().contains("preprocessed"));
        assert_eq!(cached.solve(5).dist, expect);

        // The cached file round-trips the full preprocessing.
        let loaded = Preprocessed::load(&path).unwrap();
        assert_eq!(loaded.config, cfg);
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());

        // Stale parameters are rebuilt (and the file refreshed), not
        // silently reused.
        let other = PreprocessConfig::new(1, 6);
        let rebuilt = SolverBuilder::new(&g)
            .preprocess_cached(&path, other)
            .radius_stepping_solver_from_algorithm();
        assert_eq!(rebuilt.solve(5).dist, expect, "distances never depend on the cache");
        assert_eq!(Preprocessed::load(&path).unwrap().config, other, "file refreshed");

        // Garbage in the cache degrades to a rebuild, never an error.
        std::fs::write(&path, b"definitely not a preprocessing").unwrap();
        let recovered = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert_eq!(recovered.solve(5).dist, expect);

        // A cache written for a different graph (here: different edge
        // count) is rejected and rebuilt, not reused.
        let other_graph =
            rs_graph::weights::reweight(&rs_graph::gen::path(81), WeightModel::paper_weighted(), 2);
        assert_eq!(other_graph.num_vertices(), g.num_vertices(), "same n, different m");
        let cross = SolverBuilder::new(&other_graph)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        let direct = SolverBuilder::new(&other_graph)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        assert_eq!(cross.solve(5).dist, direct.solve(5).dist, "stale-graph cache must rebuild");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unreachable_goal_terminates() {
        let mut b = rs_graph::EdgeListBuilder::new(4);
        b.add_edge(0, 1, 3);
        let g = b.build();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let out = solver.solve_to_goal(0, 3);
        assert_eq!(out.dist[3], INF);
    }
}
