//! The unified SSSP solver API: one query plane for every algorithm.
//!
//! The paper frames Dijkstra, Bellman–Ford, ∆-stepping and radius stepping
//! as points on one spectrum — radii `Zero` / `Infinite` / `Constant(∆)`
//! recover each baseline (§3) — and this module gives the code the same
//! shape: every algorithm is an [`SsspSolver`] answering [`Query`]s,
//! constructed through one fluent [`SolverBuilder`].
//!
//! * [`Query`] / [`QueryResponse`] — the request/response pair: a
//!   [`QueryShape`] (`SingleSource` or the serving workhorse
//!   `PointToPoint`) plus output options (`want_paths`, `want_trace`).
//! * [`SsspSolver::execute`] — the single entry point every solver
//!   implements: goal-bounded, scratch-reusing, with inline parent
//!   recording on the point-to-point path. The legacy `solve` /
//!   `solve_to_goal` / `solve_with_scratch` / `solve_batch` methods are
//!   thin default wrappers over it.
//! * [`Algorithm`] — the algorithm selector (`RadiusStepping { engine,
//!   radii }`, `Dijkstra { heap }`, `DeltaStepping { delta }`,
//!   `BellmanFord`, `Bfs`).
//! * [`SolverBuilder`] — picks the algorithm, optionally attaches
//!   (k, ρ)-preprocessing, and toggles tracing / parent recording.
//! * [`QueryBatch`] — the mixed-shape batch layer: deduplicates by full
//!   query key, fans the unique queries over the work-stealing pool with
//!   one pre-warmed [`SolverScratch`] per pool task, and aggregates the
//!   batch's [`crate::StepStats`] into a [`BatchStats`] (including the
//!   goal-bounded traffic counters).
//!
//! This module defines the trait, the configuration types, and the
//! radius-stepping solvers. The baseline adapters live in
//! `rs_baselines::solver` (which also supplies the builder's `build()`
//! through its `BuildSolver` extension trait, since the baseline
//! implementations sit above this crate in the dependency graph); the
//! `radius_stepping` facade's prelude re-exports the whole surface.
//!
//! ```
//! use rs_core::solver::{Query, Radii, SolverBuilder, SsspSolver};
//! use rs_core::SolverScratch;
//! use rs_graph::{gen, weights, WeightModel};
//!
//! let g = weights::reweight(&gen::grid2d(12, 12), WeightModel::paper_weighted(), 1);
//! let solver = SolverBuilder::new(&g)
//!     .radius_stepping_solver(Default::default(), Radii::Constant(2_000));
//! let mut scratch = SolverScratch::new();
//! let trip = solver.execute(&Query::point_to_point(0, 143).with_paths(), &mut scratch);
//! let route = trip.goal_path().expect("grid is connected");
//! assert_eq!((route[0], *route.last().unwrap()), (0, 143));
//! // The same scratch serves the next query warm.
//! let again = solver.execute(&Query::point_to_point(143, 0), &mut scratch);
//! assert!(again.stats().scratch_reused);
//! ```

use rs_graph::{CsrGraph, Dist, VertexId, INF};

use crate::engine::{radius_stepping_with_scratch, EngineConfig, EngineKind};
use crate::preprocess::{PreprocessConfig, Preprocessed};
use crate::radii::RadiiSpec;
use crate::scratch::SolverScratch;
use crate::stats::{SsspResult, StepStats};

/// What one request asks a solver to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// Exact distances from `source` to every vertex.
    SingleSource { source: VertexId },
    /// Distances from `source` until `goal` is settled — the dominant
    /// serving shape (point-to-point routing traffic). `dist[goal]` is
    /// exact; every other finite entry is a valid upper bound.
    PointToPoint { source: VertexId, goal: VertexId },
}

/// One request against an [`SsspSolver`]: a [`QueryShape`] plus output
/// options. `Copy`, `Eq` and `Hash` so [`QueryBatch`] can deduplicate by
/// the *full* query key (two requests are interchangeable only when shape
/// *and* options agree).
///
/// ```
/// use rs_core::solver::Query;
/// let q = Query::point_to_point(3, 99).with_paths();
/// assert_eq!(q.source(), 3);
/// assert_eq!(q.goal(), Some(99));
/// assert!(q.want_paths && !q.want_trace);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query {
    /// What to compute.
    pub shape: QueryShape,
    /// Return a shortest-path tree. On a `PointToPoint` query parents are
    /// recorded *inline* during relaxation (O(1) per relaxation, no
    /// all-edges post-pass; see [`crate::EngineConfig::record_parents`]),
    /// covering at least the goal path; on a `SingleSource` query the full
    /// tree is derived by the parallel post-pass.
    pub want_paths: bool,
    /// Record a per-step trace where the algorithm supports one.
    pub want_trace: bool,
}

impl Query {
    /// A full single-source query.
    pub fn single_source(source: VertexId) -> Query {
        Query { shape: QueryShape::SingleSource { source }, want_paths: false, want_trace: false }
    }

    /// A goal-bounded point-to-point query.
    pub fn point_to_point(source: VertexId, goal: VertexId) -> Query {
        Query {
            shape: QueryShape::PointToPoint { source, goal },
            want_paths: false,
            want_trace: false,
        }
    }

    /// Requests path extraction on the response.
    pub fn with_paths(mut self) -> Query {
        self.want_paths = true;
        self
    }

    /// Requests a per-step trace.
    pub fn with_trace(mut self) -> Query {
        self.want_trace = true;
        self
    }

    /// The query's source vertex.
    pub fn source(&self) -> VertexId {
        match self.shape {
            QueryShape::SingleSource { source } | QueryShape::PointToPoint { source, .. } => source,
        }
    }

    /// The goal vertex of a point-to-point query.
    pub fn goal(&self) -> Option<VertexId> {
        match self.shape {
            QueryShape::SingleSource { .. } => None,
            QueryShape::PointToPoint { goal, .. } => Some(goal),
        }
    }

    /// True for goal-bounded queries.
    pub fn is_point_to_point(&self) -> bool {
        matches!(self.shape, QueryShape::PointToPoint { .. })
    }
}

/// What [`SsspSolver::execute`] returns: the executed [`Query`] (so batch
/// consumers can correlate responses) plus the underlying
/// [`crate::SsspResult`], with goal-aware conveniences on top.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The request this response answers.
    pub query: Query,
    /// Distances, optional parents, per-query [`StepStats`].
    pub result: SsspResult,
}

impl QueryResponse {
    /// The distance array (exact everywhere for `SingleSource`; exact at
    /// the goal and an upper bound elsewhere for `PointToPoint`).
    pub fn dist(&self) -> &[Dist] {
        &self.result.dist
    }

    /// The per-query execution counters.
    pub fn stats(&self) -> &StepStats {
        &self.result.stats
    }

    /// The goal's exact distance, for a reachable `PointToPoint` query
    /// (`None` for `SingleSource` queries and unreachable goals).
    pub fn goal_distance(&self) -> Option<Dist> {
        let goal = self.query.goal()?;
        let d = self.result.dist[goal as usize];
        (d != INF).then_some(d)
    }

    /// On-demand extraction of the `source → goal` path from the recorded
    /// parents (requires `want_paths`; `None` for `SingleSource` queries
    /// and unreachable goals). Costs O(path length).
    ///
    /// The path's edges are edges of [`SsspSolver::graph`]. For a solver
    /// built with preprocessing that is the shortcut-augmented
    /// (k, ρ)-graph: consecutive path vertices may be joined by a
    /// *shortcut* edge — same total distance as the underlying hops (the
    /// augmentation is distance-preserving) but not necessarily an edge of
    /// the original input graph. Consumers that need input-graph hops
    /// should query a non-preprocessed solver (or expand shortcuts
    /// themselves; see the ROADMAP follow-up).
    pub fn goal_path(&self) -> Option<Vec<VertexId>> {
        self.result.extract_path(self.query.goal()?)
    }

    /// On-demand extraction of the path to any vertex the solve settled
    /// (requires `want_paths`; point-to-point responses cover at least the
    /// goal path). Paths are on [`SsspSolver::graph`] — see
    /// [`QueryResponse::goal_path`] for the preprocessing caveat.
    pub fn extract_path(&self, t: VertexId) -> Option<Vec<VertexId>> {
        self.result.extract_path(t)
    }

    /// Unwraps into the legacy [`SsspResult`] (what the `solve_*` wrapper
    /// methods return).
    pub fn into_result(self) -> SsspResult {
        self.result
    }
}

/// A single-source shortest-path solver bound to one graph.
///
/// Implementations are interchangeable: on the same graph every solver
/// produces identical `dist` arrays (asserted by the cross-algorithm
/// conformance tests). They differ only in their counters and costs.
///
/// The one required computation method is [`SsspSolver::execute`]; the
/// legacy `solve_*` family are default wrappers over it, so downstream
/// code migrates mechanically and every entry point shares the same
/// goal-bounded, scratch-reusing machinery.
pub trait SsspSolver: Sync {
    /// Human-readable algorithm name (for reports and error messages).
    fn name(&self) -> String;

    /// The graph distances refer to. For preprocessed solvers this is the
    /// shortcut-augmented (k, ρ)-graph — distances are identical to the
    /// input graph's by construction.
    fn graph(&self) -> &CsrGraph;

    /// Answers `query` on caller-provided [`SolverScratch`] state — the
    /// single entry point behind every other method.
    ///
    /// * `SingleSource` queries produce exact distances everywhere.
    /// * `PointToPoint` queries stop as soon as the goal is settled
    ///   (`dist[goal]` exact, everything else an upper bound or `INF`),
    ///   and with `want_paths` record parents inline during relaxation —
    ///   no all-edges post-pass on the serving path.
    /// * After the first (cold) query on a scratch, no working distance
    ///   array, bitset, heap, bucket queue or treap node is allocated
    ///   again ([`crate::StepStats::scratch_reused`]); pre-warm with
    ///   [`SsspSolver::warm_scratch`] to make even the first query warm.
    ///
    /// Results are bit-identical across scratches (asserted by the
    /// conformance suite): which scratch served a query is not observable
    /// beyond `scratch_reused`.
    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse;

    /// Pre-sizes `scratch` for this solver so a latency-critical *first*
    /// query skips the cold allocation spike. The default pre-sizes the
    /// shared working structures for [`SsspSolver::graph`]; solvers with
    /// private structures (Dijkstra's heap, ∆-stepping's bucket queue)
    /// override it to warm those too. [`QueryBatch::execute`] calls this
    /// when creating per-worker scratches.
    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        scratch.warm_up(self.graph());
    }

    /// Exact distances from `source` to every vertex (legacy wrapper over
    /// [`SsspSolver::execute`] with a throwaway scratch).
    fn solve(&self, source: VertexId) -> SsspResult {
        self.execute(&Query::single_source(source), &mut SolverScratch::new()).into_result()
    }

    /// Distances from `source`, stopping early once `goal` is settled
    /// (legacy wrapper; `dist[goal]` exact, other finite entries valid
    /// upper bounds). Reuse a scratch via `execute` for serving traffic.
    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        self.execute(&Query::point_to_point(source, goal), &mut SolverScratch::new()).into_result()
    }

    /// Like [`SsspSolver::solve`] on reusable scratch state (legacy
    /// wrapper over [`SsspSolver::execute`]).
    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        self.execute(&Query::single_source(source), scratch).into_result()
    }

    /// Solves from every source, fanning out across the rayon pool — the
    /// paper's motivating workload (§5.4: preprocessing is paid once, then
    /// "Sssp will be run from multiple sources").
    ///
    /// Legacy wrapper over [`QueryBatch`]: duplicate sources are answered
    /// once and cloned (observationally invisible), and each pool task
    /// reuses one pre-warmed [`SolverScratch`] across every query it
    /// claims. Use [`QueryBatch::execute`] directly for mixed query shapes
    /// and the aggregated [`BatchStats`].
    fn solve_batch(&self, sources: &[VertexId]) -> Vec<SsspResult> {
        QueryBatch::from_sources(sources).execute(self).into_results()
    }
}

/// A prepared mixed-shape batch: the dedup layer behind
/// [`SsspSolver::solve_batch`], reusable across solvers, accepting any
/// mix of [`Query`] values.
///
/// Construction groups the requested queries into their unique set
/// (first-occurrence order, keyed by the *full* query — shape and output
/// options) and remembers, for every requested slot, which unique
/// execution answers it. [`QueryBatch::execute`] then fans the unique
/// queries over the pool via [`rs_par::worker_map`] — one lazily-created,
/// pre-warmed [`SolverScratch`] per pool task, dynamic load balancing via
/// a shared work counter — and expands the answers back to request order.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The requested queries, in request order.
    queries: Vec<Query>,
    /// Unique queries, in first-occurrence order.
    unique: Vec<Query>,
    /// `rep[i]` = index into `unique` answering `queries[i]`.
    rep: Vec<usize>,
}

impl QueryBatch {
    /// Plans a batch over `queries` (duplicates allowed, order preserved).
    pub fn new(queries: &[Query]) -> Self {
        let mut first_slot: std::collections::HashMap<Query, usize> =
            std::collections::HashMap::with_capacity(queries.len());
        let mut unique = Vec::with_capacity(queries.len());
        let mut rep = Vec::with_capacity(queries.len());
        for &q in queries {
            let slot = *first_slot.entry(q).or_insert_with(|| {
                unique.push(q);
                unique.len() - 1
            });
            rep.push(slot);
        }
        QueryBatch { queries: queries.to_vec(), unique, rep }
    }

    /// Plans an all-targets batch: one `SingleSource` query per entry —
    /// the [`SsspSolver::solve_batch`] shape.
    pub fn from_sources(sources: &[VertexId]) -> Self {
        let queries: Vec<Query> = sources.iter().map(|&s| Query::single_source(s)).collect();
        QueryBatch::new(&queries)
    }

    /// Number of requested queries (including duplicates).
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch requests nothing.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The requested queries, in request order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The deduplicated queries actually executed.
    pub fn unique_queries(&self) -> &[Query] {
        &self.unique
    }

    /// Requested queries answered by cloning another slot's response.
    pub fn deduplicated(&self) -> usize {
        self.queries.len() - self.unique.len()
    }

    /// Runs the batch on `solver`: unique queries fan out over the pool
    /// with per-task pre-warmed scratch reuse ([`SsspSolver::warm_scratch`]
    /// — first queries skip the cold allocation spike), responses land in
    /// request order.
    pub fn execute<S: SsspSolver + ?Sized>(&self, solver: &S) -> BatchOutcome {
        let unique_responses: Vec<QueryResponse> = rs_par::worker_map(
            self.unique.len(),
            || {
                let mut scratch = SolverScratch::new();
                solver.warm_scratch(&mut scratch);
                scratch
            },
            |scratch, i| solver.execute(&self.unique[i], scratch),
        );
        let stats = BatchStats::collect(&unique_responses, &self.rep);
        let responses = if self.unique.len() == self.queries.len() {
            unique_responses
        } else {
            self.rep.iter().map(|&u| unique_responses[u].clone()).collect()
        };
        BatchOutcome { responses, stats }
    }
}

/// What [`QueryBatch::execute`] returns: per-query responses (request
/// order) plus the batch-level aggregates.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One response per requested query, in request order (duplicates are
    /// clones of their unique execution).
    pub responses: Vec<QueryResponse>,
    /// Aggregated counters for the whole batch.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// Drops the aggregates and query keys, keeping the bare results.
    pub fn into_results(self) -> Vec<SsspResult> {
        self.responses.into_iter().map(QueryResponse::into_result).collect()
    }
}

/// Per-batch aggregate of the queries' [`crate::StepStats`].
///
/// Step/substep/relaxation totals are summed over the *delivered*
/// responses (a deduplicated query counts once per request, so means stay
/// faithful to the requested workload); the scratch counters describe the
/// *unique* executions — the physical allocation events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requested queries (including duplicates).
    pub solves: usize,
    /// Unique queries actually executed.
    pub unique_solves: usize,
    /// Unique executions that ran entirely on pre-allocated scratch state.
    pub scratch_reuses: usize,
    /// Unique executions that had to allocate (at most one per pool task;
    /// zero when [`SsspSolver::warm_scratch`] covers the algorithm).
    pub cold_solves: usize,
    /// Delivered point-to-point (goal-bounded) responses.
    pub point_to_point: usize,
    /// Delivered point-to-point responses whose goal was reachable.
    pub goals_reached: usize,
    /// Total steps over delivered responses.
    pub steps: usize,
    /// Total substeps over delivered responses.
    pub substeps: usize,
    /// Largest `max_substeps_in_step` over delivered responses.
    pub max_substeps_in_step: usize,
    /// Total relaxations over delivered responses.
    pub relaxations: u64,
    /// Total settled vertices over delivered responses.
    pub settled: usize,
}

impl BatchStats {
    fn collect(unique_responses: &[QueryResponse], rep: &[usize]) -> BatchStats {
        let mut stats = BatchStats {
            solves: rep.len(),
            unique_solves: unique_responses.len(),
            ..Default::default()
        };
        for r in unique_responses {
            if r.result.stats.scratch_reused {
                stats.scratch_reuses += 1;
            } else {
                stats.cold_solves += 1;
            }
        }
        for &u in rep {
            let r = &unique_responses[u];
            let s = &r.result.stats;
            stats.steps += s.steps;
            stats.substeps += s.substeps;
            stats.max_substeps_in_step = stats.max_substeps_in_step.max(s.max_substeps_in_step);
            stats.relaxations += s.relaxations;
            stats.settled += s.settled;
            if let Some(goal) = r.query.goal() {
                stats.point_to_point += 1;
                if r.result.dist[goal as usize] != INF {
                    stats.goals_reached += 1;
                }
            }
        }
        stats
    }

    /// Mean steps per requested query.
    pub fn mean_steps(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.steps as f64 / self.solves as f64
        }
    }
}

/// Owned radius assignment (the builder cannot borrow like
/// [`RadiiSpec`] does).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Radii {
    /// `r ≡ 0`: Dijkstra-like (one distance level per step).
    #[default]
    Zero,
    /// `r ≡ ∞`: Bellman–Ford-like (one step, substeps to fixpoint).
    Infinite,
    /// `r ≡ ∆`: ∆-stepping-like.
    Constant(Dist),
    /// Per-vertex radii, e.g. `r_ρ(v)` from preprocessing.
    PerVertex(Vec<Dist>),
}

impl Radii {
    /// Borrowing view for the engines.
    pub fn as_spec(&self) -> RadiiSpec<'_> {
        match self {
            Radii::Zero => RadiiSpec::Zero,
            Radii::Infinite => RadiiSpec::Infinite,
            Radii::Constant(d) => RadiiSpec::Constant(*d),
            Radii::PerVertex(r) => RadiiSpec::PerVertex(r),
        }
    }
}

/// Decrease-key heap selector for the Dijkstra baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapKind {
    /// 4-ary array heap (usually fastest in practice).
    #[default]
    Dary,
    /// Pairing heap.
    Pairing,
    /// Fibonacci heap (the Lemma 4.2 choice).
    Fibonacci,
}

/// Algorithm selector: the five families of the paper's evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Algorithm {
    /// Radius stepping (Algorithm 1/2) with an engine and radii. Attach
    /// [`SolverBuilder::preprocess`] to derive `r_ρ(v)` radii and shortcut
    /// edges instead of passing radii here.
    RadiusStepping { engine: EngineKind, radii: Radii },
    /// Sequential Dijkstra, generic over the decrease-key heap.
    Dijkstra { heap: HeapKind },
    /// Meyer–Sanders ∆-stepping with bucket width ∆.
    DeltaStepping { delta: Dist },
    /// Round-synchronous parallel Bellman–Ford.
    BellmanFord,
    /// Level-synchronous parallel BFS (unit-weight graphs only).
    Bfs,
}

impl Default for Algorithm {
    fn default() -> Self {
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero }
    }
}

/// Cross-algorithm output options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverConfig {
    /// Record a per-step trace where the algorithm supports it.
    pub trace: bool,
    /// Attach the shortest-path tree (`SsspResult::parent`) to results.
    pub record_parents: bool,
}

impl SolverConfig {
    /// Whether `query` should come back with a shortest-path tree: the
    /// query's own option ORed with the builder-level toggle.
    pub fn wants_paths(&self, query: &Query) -> bool {
        self.record_parents || query.want_paths
    }

    /// Whether `query` should record a trace (same OR).
    pub fn wants_trace(&self, query: &Query) -> bool {
        self.trace || query.want_trace
    }

    /// Attaches the shortest-path tree to `result` if `query` asked for
    /// one and the solve did not already record it inline: point-to-point
    /// queries derive exactly the goal path (no all-edges post-pass),
    /// single-source queries the full tree.
    pub fn finish_paths(&self, g: &CsrGraph, query: &Query, mut result: SsspResult) -> SsspResult {
        if self.wants_paths(query) && result.parent.is_none() {
            result.parent = Some(match query.goal() {
                Some(goal) => crate::stats::goal_path_parents(g, &result.dist, goal),
                None => crate::stats::derive_parents(g, &result.dist),
            });
        }
        result
    }
}

/// The graph a solver runs on: borrowed from the caller, or owned when
/// preprocessing replaced it with the shortcut-augmented (k, ρ)-graph.
#[derive(Debug, Clone)]
pub enum SolverGraph<'g> {
    Borrowed(&'g CsrGraph),
    Owned(CsrGraph),
}

impl std::ops::Deref for SolverGraph<'_> {
    type Target = CsrGraph;

    fn deref(&self) -> &CsrGraph {
        match self {
            SolverGraph::Borrowed(g) => g,
            SolverGraph::Owned(g) => g,
        }
    }
}

/// Fluent construction of any [`SsspSolver`].
///
/// ```
/// use rs_core::solver::{Algorithm, Radii, SolverBuilder, SsspSolver};
/// use rs_core::{EngineKind, PreprocessConfig};
/// use rs_graph::{gen, weights, WeightModel};
///
/// let g = weights::reweight(&gen::grid2d(10, 10), WeightModel::paper_weighted(), 7);
/// let solver = SolverBuilder::new(&g)
///     .algorithm(Algorithm::RadiusStepping {
///         engine: EngineKind::Frontier,
///         radii: Radii::Zero, // replaced by r_rho(v) below
///     })
///     .preprocess(PreprocessConfig::new(1, 16))
///     .trace(true)
///     .radius_stepping_solver_from_algorithm(); // or `.build()` via rs_baselines
/// assert_eq!(solver.solve(0).dist[0], 0);
/// ```
#[derive(Debug, Clone)]
pub struct SolverBuilder<'g> {
    graph: &'g CsrGraph,
    algorithm: Algorithm,
    preprocess: Option<PreprocessConfig>,
    preprocess_cache: Option<std::path::PathBuf>,
    config: SolverConfig,
}

impl<'g> SolverBuilder<'g> {
    /// Starts a builder for `graph` (default algorithm: frontier-engine
    /// radius stepping with zero radii, i.e. batched Dijkstra).
    pub fn new(graph: &'g CsrGraph) -> Self {
        SolverBuilder {
            graph,
            algorithm: Algorithm::default(),
            preprocess: None,
            preprocess_cache: None,
            config: SolverConfig::default(),
        }
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Attaches (k, ρ)-preprocessing: at build time the graph is replaced
    /// by the shortcut-augmented (k, ρ)-graph (distances unchanged) and —
    /// for radius stepping — the radii by `r_ρ(v)`.
    pub fn preprocess(mut self, cfg: PreprocessConfig) -> Self {
        self.preprocess = Some(cfg);
        self
    }

    /// Like [`SolverBuilder::preprocess`], but backed by an on-disk cache:
    /// a preprocessing previously saved at `path` with a matching
    /// configuration (and vertex count) is loaded instead of rebuilt —
    /// paying the `O(m log n + nρ²)` phase once per graph, not once per
    /// process. On a miss (absent, unreadable, or stale file) the
    /// preprocessing is rebuilt and saved back to `path` best-effort.
    pub fn preprocess_cached(
        mut self,
        path: impl Into<std::path::PathBuf>,
        cfg: PreprocessConfig,
    ) -> Self {
        self.preprocess = Some(cfg);
        self.preprocess_cache = Some(path.into());
        self
    }

    /// Toggles per-step tracing (where the algorithm records one).
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Toggles shortest-path-tree recording on every result.
    pub fn record_parents(mut self, on: bool) -> Self {
        self.config.record_parents = on;
        self
    }

    /// Decomposes the builder (used by `rs_baselines::solver::BuildSolver`,
    /// which constructs the baseline adapters this crate cannot name).
    pub fn into_parts(self) -> BuilderParts<'g> {
        BuilderParts {
            graph: self.graph,
            algorithm: self.algorithm,
            preprocess: self.preprocess,
            preprocess_cache: self.preprocess_cache,
            config: self.config,
        }
    }

    /// Builds a radius-stepping solver directly (engine + radii given
    /// explicitly; use `build()` from the facade for the general case).
    pub fn radius_stepping_solver(
        self,
        engine: EngineKind,
        radii: Radii,
    ) -> RadiusSteppingSolver<'g> {
        self.algorithm(Algorithm::RadiusStepping { engine, radii })
            .radius_stepping_solver_from_algorithm()
    }

    /// Builds a radius-stepping solver from the current `algorithm`
    /// selection, applying any attached preprocessing.
    ///
    /// Panics if the selected algorithm is not `RadiusStepping` — the
    /// baseline variants are built by `rs_baselines::solver::BuildSolver`.
    pub fn radius_stepping_solver_from_algorithm(self) -> RadiusSteppingSolver<'g> {
        let parts = self.into_parts();
        let Algorithm::RadiusStepping { engine, radii } = parts.algorithm else {
            panic!(
                "radius_stepping_solver_from_algorithm on {:?}; use BuildSolver::build",
                parts.algorithm
            )
        };
        RadiusSteppingSolver::from_parts(
            parts.graph,
            engine,
            radii,
            parts.preprocess,
            parts.preprocess_cache.as_deref(),
            parts.config,
        )
    }
}

/// The builder's decomposed state (consumed by the `build()` extension).
pub struct BuilderParts<'g> {
    pub graph: &'g CsrGraph,
    pub algorithm: Algorithm,
    pub preprocess: Option<PreprocessConfig>,
    pub preprocess_cache: Option<std::path::PathBuf>,
    pub config: SolverConfig,
}

impl<'g> BuilderParts<'g> {
    /// Resolves the attached preprocessing: returns the graph baselines
    /// should run on (augmented when preprocessing is attached — distances
    /// are preserved, so every solver stays exact).
    pub fn resolve_graph(&self) -> SolverGraph<'g> {
        match &self.preprocess {
            None => SolverGraph::Borrowed(self.graph),
            Some(cfg) => SolverGraph::Owned(
                resolve_preprocessed(self.graph, cfg, self.preprocess_cache.as_deref()).graph,
            ),
        }
    }
}

/// Loads a compatible preprocessing from `cache`, or builds one (saving it
/// back to `cache`, best-effort, when a path is given). A cached file is
/// compatible when its parameters match `cfg` exactly and the content hash
/// of the input graph recorded in its header
/// ([`Preprocessed::input_hash`], computed by
/// [`CsrGraph::content_hash`]) matches `g` — so a mutated graph of the
/// same shape (same vertex and edge counts, different wiring or weights)
/// triggers a rebuild instead of silently serving stale shortcuts.
/// Anything else — missing file, garbage, an old-format file, stale
/// parameters, a different graph — falls back to a rebuild rather than an
/// error.
pub fn resolve_preprocessed(
    g: &CsrGraph,
    cfg: &PreprocessConfig,
    cache: Option<&std::path::Path>,
) -> Preprocessed {
    if let Some(path) = cache {
        if let Ok(pre) = Preprocessed::load(path) {
            if pre.config == *cfg
                && pre.graph.num_vertices() == g.num_vertices()
                && pre.input_hash == g.content_hash()
            {
                return pre;
            }
        }
        let pre = Preprocessed::build(g, cfg);
        // Best-effort: an unwritable cache degrades to rebuild-next-time.
        let _ = pre.save(path);
        pre
    } else {
        Preprocessed::build(g, cfg)
    }
}

/// Radius stepping (either engine, any radii, optional preprocessing)
/// behind the [`SsspSolver`] interface.
pub struct RadiusSteppingSolver<'g> {
    graph: SolverGraph<'g>,
    radii: Radii,
    engine: EngineKind,
    config: SolverConfig,
    preprocessed: bool,
}

impl<'g> RadiusSteppingSolver<'g> {
    /// Direct construction without a builder.
    pub fn new(graph: &'g CsrGraph, engine: EngineKind, radii: Radii) -> Self {
        RadiusSteppingSolver {
            graph: SolverGraph::Borrowed(graph),
            radii,
            engine,
            config: SolverConfig::default(),
            preprocessed: false,
        }
    }

    /// Construction from builder state: preprocessing (when attached)
    /// replaces both the graph and the radii, loading from / saving to the
    /// `cache` path when one was supplied.
    pub fn from_parts(
        graph: &'g CsrGraph,
        engine: EngineKind,
        radii: Radii,
        preprocess: Option<PreprocessConfig>,
        cache: Option<&std::path::Path>,
        config: SolverConfig,
    ) -> Self {
        match preprocess {
            None => RadiusSteppingSolver {
                graph: SolverGraph::Borrowed(graph),
                radii,
                engine,
                config,
                preprocessed: false,
            },
            Some(cfg) => {
                let pre = resolve_preprocessed(graph, &cfg, cache);
                RadiusSteppingSolver {
                    graph: SolverGraph::Owned(pre.graph),
                    radii: Radii::PerVertex(pre.radii),
                    engine,
                    config,
                    preprocessed: true,
                }
            }
        }
    }
}

impl SsspSolver for RadiusSteppingSolver<'_> {
    fn name(&self) -> String {
        let engine = match self.engine {
            EngineKind::Frontier => "frontier",
            EngineKind::Bst => "bst",
            EngineKind::Unweighted => "unweighted",
        };
        if self.preprocessed {
            format!("radius-stepping/{engine} (preprocessed)")
        } else {
            format!("radius-stepping/{engine}")
        }
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        let goal = query.goal();
        let want_paths = self.config.wants_paths(query);
        let cfg = EngineConfig {
            trace: self.config.wants_trace(query),
            goal,
            // Goal-bounded path requests record parents inline during
            // relaxation; full solves keep the deterministic parallel
            // derivation (applied below by finish_paths).
            record_parents: want_paths && goal.is_some(),
        };
        let out = radius_stepping_with_scratch(
            &self.graph,
            &self.radii.as_spec(),
            query.source(),
            self.engine,
            cfg,
            scratch,
        );
        QueryResponse { query: *query, result: self.config.finish_paths(&self.graph, query, out) }
    }

    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        warm_for_engine(scratch, &self.graph, self.engine);
    }
}

/// Engine-aware scratch warm-up: shared state plus the frontier/substep
/// buffers for the two general engines, the treap node arena (its
/// `3n + 4` peak bound) on top for the BST engine, and only the visited
/// bitset for the unweighted engine (which never touches the distance
/// structures — the lean BFS path).
fn warm_for_engine(scratch: &mut SolverScratch, g: &CsrGraph, engine: EngineKind) {
    match engine {
        EngineKind::Frontier => {
            scratch.warm_up(g);
            scratch.warm_engine_buffers(g.num_vertices());
        }
        EngineKind::Bst => {
            scratch.warm_up(g);
            scratch.warm_engine_buffers(g.num_vertices());
            scratch.warm_treap_arena(3 * g.num_vertices() + 4);
        }
        EngineKind::Unweighted => scratch.warm_up_lean(g),
    }
}

/// [`Preprocessed`] is itself a solver: `execute` runs the frontier engine
/// on the (k, ρ)-graph with the derived radii.
impl SsspSolver for Preprocessed {
    fn name(&self) -> String {
        format!("radius-stepping (k={}, rho={})", self.config.k, self.config.rho)
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        let goal = query.goal();
        let cfg = EngineConfig {
            trace: query.want_trace,
            goal,
            record_parents: query.want_paths && goal.is_some(),
        };
        let out = radius_stepping_with_scratch(
            &self.graph,
            &RadiiSpec::PerVertex(&self.radii),
            query.source(),
            EngineKind::Frontier,
            cfg,
            scratch,
        );
        let result = SolverConfig::default().finish_paths(&self.graph, query, out);
        QueryResponse { query: *query, result }
    }

    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        warm_for_engine(scratch, &self.graph, EngineKind::Frontier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, weights, WeightModel, INF};

    fn grid() -> CsrGraph {
        weights::reweight(&gen::grid2d(9, 9), WeightModel::paper_weighted(), 4)
    }

    #[test]
    fn builder_constructs_working_solver() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .trace(true)
            .record_parents(true)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let out = solver.solve(0);
        assert_eq!(out.dist[0], 0);
        assert!(out.stats.trace.is_some(), "trace requested");
        let path = out.extract_path(80).expect("connected grid");
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 80);
    }

    #[test]
    fn preprocessing_replaces_radii_and_graph() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .preprocess(PreprocessConfig::new(1, 8))
            .radius_stepping_solver_from_algorithm();
        assert!(solver.name().contains("preprocessed"));
        assert!(solver.graph().num_edges() >= g.num_edges(), "shortcuts added");
        assert!(matches!(solver.radii, Radii::PerVertex(_)));
        let direct =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Bst, Radii::Infinite);
        assert_eq!(solver.solve(3).dist, direct.solve(3).dist);
    }

    #[test]
    fn goal_solve_settles_goal_exactly() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let full = solver.solve(0);
        let bounded = solver.solve_to_goal(0, 40);
        assert_eq!(bounded.dist[40], full.dist[40]);
        assert!(bounded.stats.steps <= full.stats.steps);
        for (b, f) in bounded.dist.iter().zip(&full.dist) {
            assert!(*b >= *f, "goal-bounded entries are upper bounds");
        }
    }

    #[test]
    fn batch_matches_per_source() {
        let g = grid();
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 8));
        let sources = [0u32, 11, 44, 80];
        let batch = pre.solve_batch(&sources);
        assert_eq!(batch.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(batch[i].dist, pre.solve(s).dist);
        }
    }

    #[test]
    fn query_batch_dedups_by_full_key_and_orders() {
        let queries = [
            Query::point_to_point(7, 3),
            Query::single_source(7),
            Query::point_to_point(7, 3),
            Query::point_to_point(7, 3).with_paths(), // options matter
            Query::single_source(1),
            Query::single_source(7),
        ];
        let batch = QueryBatch::new(&queries);
        assert_eq!(batch.len(), 6);
        assert_eq!(batch.queries(), &queries);
        assert_eq!(
            batch.unique_queries(),
            &[
                Query::point_to_point(7, 3),
                Query::single_source(7),
                Query::point_to_point(7, 3).with_paths(),
                Query::single_source(1),
            ],
            "first-occurrence order, keyed by shape AND options"
        );
        assert_eq!(batch.deduplicated(), 2);

        let empty = QueryBatch::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.unique_queries(), &[] as &[Query]);

        // from_sources is the legacy all-targets shape.
        let plan = QueryBatch::from_sources(&[7, 3, 7]);
        assert_eq!(plan.unique_queries(), &[Query::single_source(7), Query::single_source(3)]);
    }

    #[test]
    fn batch_execute_reports_aggregates_and_dedup_is_invisible() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let sources = [5u32, 9, 5, 77, 9, 5];
        let outcome = QueryBatch::from_sources(&sources).execute(&solver);
        assert_eq!(outcome.stats.solves, 6);
        assert_eq!(outcome.stats.unique_solves, 3);
        assert_eq!(outcome.stats.point_to_point, 0);
        assert_eq!(
            outcome.stats.cold_solves + outcome.stats.scratch_reuses,
            outcome.stats.unique_solves
        );
        assert!(
            outcome.stats.cold_solves <= rs_par::num_threads().min(3),
            "at most one cold solve per pool task"
        );
        // Aggregates sum over delivered results (duplicates re-counted).
        let per_source: Vec<SsspResult> = sources.iter().map(|&s| solver.solve(s)).collect();
        let steps: usize = per_source.iter().map(|r| r.stats.steps).sum();
        assert_eq!(outcome.stats.steps, steps);
        assert!((outcome.stats.mean_steps() - steps as f64 / 6.0).abs() < 1e-12);
        // Dedup is observationally invisible.
        for (out, reference) in outcome.responses.iter().zip(&per_source) {
            assert_eq!(out.dist(), reference.dist);
        }

        // Empty and singleton batches.
        let empty = QueryBatch::new(&[]).execute(&solver);
        assert!(empty.responses.is_empty());
        assert_eq!(empty.stats, BatchStats::default());
        let single = QueryBatch::from_sources(&[33]).execute(&solver);
        assert_eq!(single.responses.len(), 1);
        assert_eq!(single.responses[0].dist(), solver.solve(33).dist);
        assert_eq!(single.stats.unique_solves, 1);
    }

    #[test]
    fn mixed_batch_counts_goal_bounded_traffic() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let queries = [
            Query::point_to_point(0, 40),
            Query::single_source(0),
            Query::point_to_point(0, 40), // dedup'd
            Query::point_to_point(5, 80).with_paths(),
        ];
        let outcome = QueryBatch::new(&queries).execute(&solver);
        assert_eq!(outcome.stats.solves, 4);
        assert_eq!(outcome.stats.unique_solves, 3);
        assert_eq!(outcome.stats.point_to_point, 3, "delivered p2p responses");
        assert_eq!(outcome.stats.goals_reached, 3, "grid is connected");
        // Responses line up with their queries and are individually exact.
        let full = solver.solve(0);
        assert_eq!(outcome.responses[0].goal_distance(), Some(full.dist[40]));
        assert_eq!(outcome.responses[1].dist(), full.dist);
        assert_eq!(outcome.responses[2].dist(), outcome.responses[0].dist(), "clone of unique");
        let path = outcome.responses[3].goal_path().expect("paths requested");
        assert_eq!((path[0], *path.last().unwrap()), (5, 80));
    }

    #[test]
    fn execute_point_to_point_warm_matches_cold() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Constant(1_500));
        let mut scratch = SolverScratch::new();
        for (i, (s, t)) in [(0u32, 80u32), (80, 0), (40, 13), (0, 80)].into_iter().enumerate() {
            let warm = solver.execute(&Query::point_to_point(s, t), &mut scratch);
            let cold = solver.execute(&Query::point_to_point(s, t), &mut SolverScratch::new());
            assert_eq!(warm.dist(), cold.dist(), "query {i} diverged on a warm scratch");
            assert_eq!(warm.stats().scratch_reused, i > 0);
            assert_eq!(warm.goal_distance(), Some(solver.solve(s).dist[t as usize]));
        }
    }

    #[test]
    fn solve_with_scratch_interleaved_matches_fresh() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .record_parents(true)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Constant(1_500));
        let mut scratch = SolverScratch::new();
        for s in [0u32, 80, 40, 0, 17] {
            let warm = solver.solve_with_scratch(s, &mut scratch);
            let fresh = solver.solve(s);
            assert_eq!(warm.dist, fresh.dist, "source {s}");
            assert_eq!(warm.parent, fresh.parent, "source {s}: parents recorded on both paths");
        }
        assert_eq!(scratch.reuses(), 4);
    }

    #[test]
    fn cache_rebuilds_on_mutated_same_size_graph() {
        // Same vertex AND edge counts, different weights: the old
        // shape-based staleness check accepted this cache; the content
        // hash in the header must reject it.
        let g1 = grid();
        let g2 = rs_graph::weights::reweight(
            &rs_graph::gen::grid2d(9, 9),
            rs_graph::WeightModel::paper_weighted(),
            99, // different weight seed, same topology
        );
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_ne!(g1.content_hash(), g2.content_hash());

        let cfg = PreprocessConfig::new(1, 8);
        let path = std::env::temp_dir().join(format!(
            "rs_hash_cache_{}_{:p}.bin",
            std::process::id(),
            &g1
        ));
        std::fs::remove_file(&path).ok();

        let pre1 = resolve_preprocessed(&g1, &cfg, Some(&path));
        assert_eq!(pre1.input_hash, g1.content_hash());
        assert_eq!(Preprocessed::load(&path).unwrap().input_hash, g1.content_hash());

        // Mutated graph, same shape: must rebuild (and refresh the file).
        let pre2 = resolve_preprocessed(&g2, &cfg, Some(&path));
        assert_eq!(pre2.input_hash, g2.content_hash(), "stale cache served for mutated graph");
        assert_eq!(Preprocessed::load(&path).unwrap().input_hash, g2.content_hash());
        let direct =
            SolverBuilder::new(&g2).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        assert_eq!(pre2.solve(5).dist, direct.solve(5).dist);

        // Unchanged graph: served from cache (hash matches).
        let pre1_again = resolve_preprocessed(&g2, &cfg, Some(&path));
        assert_eq!(pre1_again.input_hash, g2.content_hash());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn preprocess_cached_roundtrip() {
        let g = grid();
        let cfg = PreprocessConfig::new(2, 10);
        let path = std::env::temp_dir().join(format!(
            "rs_solver_cache_{}_{:p}.bin",
            std::process::id(),
            &g
        ));
        std::fs::remove_file(&path).ok();

        // First build: cache miss — builds and persists.
        let first = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert!(path.exists(), "cache file must be written on a miss");
        let expect = first.solve(5).dist;

        // Second build: served from the cache, identical results.
        let cached = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert!(cached.name().contains("preprocessed"));
        assert_eq!(cached.solve(5).dist, expect);

        // The cached file round-trips the full preprocessing.
        let loaded = Preprocessed::load(&path).unwrap();
        assert_eq!(loaded.config, cfg);
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());

        // Stale parameters are rebuilt (and the file refreshed), not
        // silently reused.
        let other = PreprocessConfig::new(1, 6);
        let rebuilt = SolverBuilder::new(&g)
            .preprocess_cached(&path, other)
            .radius_stepping_solver_from_algorithm();
        assert_eq!(rebuilt.solve(5).dist, expect, "distances never depend on the cache");
        assert_eq!(Preprocessed::load(&path).unwrap().config, other, "file refreshed");

        // Garbage in the cache degrades to a rebuild, never an error.
        std::fs::write(&path, b"definitely not a preprocessing").unwrap();
        let recovered = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert_eq!(recovered.solve(5).dist, expect);

        // A cache written for a different graph (here: different edge
        // count) is rejected and rebuilt, not reused.
        let other_graph =
            rs_graph::weights::reweight(&rs_graph::gen::path(81), WeightModel::paper_weighted(), 2);
        assert_eq!(other_graph.num_vertices(), g.num_vertices(), "same n, different m");
        let cross = SolverBuilder::new(&other_graph)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        let direct = SolverBuilder::new(&other_graph)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        assert_eq!(cross.solve(5).dist, direct.solve(5).dist, "stale-graph cache must rebuild");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unreachable_goal_terminates() {
        let mut b = rs_graph::EdgeListBuilder::new(4);
        b.add_edge(0, 1, 3);
        let g = b.build();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let out = solver.solve_to_goal(0, 3);
        assert_eq!(out.dist[3], INF);
    }
}
