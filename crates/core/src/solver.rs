//! The unified SSSP solver API: one query plane for every algorithm.
//!
//! The paper frames Dijkstra, Bellman–Ford, ∆-stepping and radius stepping
//! as points on one spectrum — radii `Zero` / `Infinite` / `Constant(∆)`
//! recover each baseline (§3) — and this module gives the code the same
//! shape: every algorithm is an [`SsspSolver`] answering [`Query`]s,
//! constructed through one fluent [`SolverBuilder`].
//!
//! * [`Query`] / [`QueryResponse`] — the request/response pair: a
//!   [`QueryShape`] (`SingleSource`, the serving workhorse
//!   `PointToPoint`, the fan-out `OneToMany` — k goals for the price of
//!   one solve — and the distance-table `ManyToMany`, executed as
//!   parallel one-to-many rows) plus output options (`want_paths`,
//!   `want_trace`).
//! * [`SsspSolver::execute`] — the single entry point every solver
//!   implements: goal-bounded, scratch-reusing, with inline parent
//!   recording on the goal-bounded paths. The legacy `solve` /
//!   `solve_to_goal` / `solve_with_scratch` / `solve_batch` methods are
//!   thin default wrappers over it.
//! * [`Algorithm`] — the algorithm selector (`RadiusStepping { engine,
//!   radii }`, `Dijkstra { heap }`, `DeltaStepping { delta }`,
//!   `BellmanFord`, `Bfs`).
//! * [`SolverBuilder`] — picks the algorithm, optionally attaches
//!   (k, ρ)-preprocessing, and toggles tracing / parent recording.
//! * [`QueryBatch`] — the mixed-shape batch layer: deduplicates by
//!   canonical query key (goal sets sorted + deduplicated), fans the
//!   unique queries over the work-stealing pool with one pre-warmed
//!   [`SolverScratch`] per pool task, and **streams** responses as each
//!   solve completes ([`QueryBatch::stream`]; [`QueryBatch::execute`] is
//!   the drained, materialised form), aggregating the batch's
//!   [`crate::StepStats`] into a [`BatchStats`] (including the
//!   goal-bounded traffic counters).
//!
//! This module defines the trait, the configuration types, and the
//! radius-stepping solvers. The baseline adapters live in
//! `rs_baselines::solver` (which also supplies the builder's `build()`
//! through its `BuildSolver` extension trait, since the baseline
//! implementations sit above this crate in the dependency graph); the
//! `radius_stepping` facade's prelude re-exports the whole surface.
//!
//! ```
//! use rs_core::solver::{Query, Radii, SolverBuilder, SsspSolver};
//! use rs_core::SolverScratch;
//! use rs_graph::{gen, weights, WeightModel};
//!
//! let g = weights::reweight(&gen::grid2d(12, 12), WeightModel::paper_weighted(), 1);
//! let solver = SolverBuilder::new(&g)
//!     .radius_stepping_solver(Default::default(), Radii::Constant(2_000));
//! let mut scratch = SolverScratch::new();
//! let trip = solver.execute(&Query::point_to_point(0, 143).with_paths(), &mut scratch);
//! let route = trip.goal_path().expect("grid is connected");
//! assert_eq!((route[0], *route.last().unwrap()), (0, 143));
//! // The same scratch serves the next query warm.
//! let again = solver.execute(&Query::point_to_point(143, 0), &mut scratch);
//! assert!(again.stats().scratch_reused);
//! ```

use std::sync::Arc;

use rs_graph::{CsrGraph, Dist, VertexId, INF};

use crate::engine::{p2p, radius_stepping_with_scratch, EngineConfig, EngineKind, Goals};
use crate::landmarks::{Landmarks, DEFAULT_LANDMARKS};
use crate::preprocess::{PreprocessConfig, Preprocessed, ShortcutExpander};
use crate::radii::RadiiSpec;
use crate::scratch::SolverScratch;
use crate::stats::{SsspResult, StepStats};

/// What one request asks a solver to compute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// Exact distances from `source` to every vertex.
    SingleSource { source: VertexId },
    /// Distances from `source` until `goal` is settled — the dominant
    /// serving shape (point-to-point routing traffic). `dist[goal]` is
    /// exact; every other finite entry is a valid upper bound.
    PointToPoint { source: VertexId, goal: VertexId },
    /// Distances from `source` until *every* goal is settled — the fan-out
    /// routing shape: one solve answers `goals.len()` destinations, so k
    /// goals cost one solve instead of k point-to-point queries. Every
    /// `dist[goal]` is exact (and bit-identical to the per-goal
    /// point-to-point answer); other finite entries are upper bounds.
    /// Goal order and duplicates are observationally irrelevant (the solve
    /// runs on the sorted-deduplicated set; [`QueryBatch`] dedups by that
    /// canonical form).
    OneToMany { source: VertexId, goals: Vec<VertexId> },
    /// A distance table: one [`QueryShape::OneToMany`] row per source,
    /// fanned over the thread pool in parallel. `sources` must be
    /// non-empty; row `i` of the response is the solve from `sources[i]`.
    ManyToMany { sources: Vec<VertexId>, goals: Vec<VertexId> },
}

/// One request against an [`SsspSolver`]: a [`QueryShape`] plus output
/// options. `Eq` and `Hash` so [`QueryBatch`] can deduplicate by the
/// *full* query key (two requests are interchangeable only when shape —
/// up to goal-set order — *and* options agree).
///
/// ```
/// use rs_core::solver::Query;
/// let q = Query::point_to_point(3, 99).with_paths();
/// assert_eq!(q.source(), 3);
/// assert_eq!(q.goal(), Some(99));
/// assert!(q.want_paths && !q.want_trace);
/// let fan = Query::one_to_many(3, [99, 7, 99]);
/// assert_eq!(fan.goals(), &[99, 7, 99]);
/// assert_eq!(fan.canonical().goals(), &[7, 99]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// What to compute.
    pub shape: QueryShape,
    /// Return a shortest-path tree. On a goal-bounded query parents are
    /// recorded *inline* during relaxation (O(1) per relaxation, no
    /// all-edges post-pass; see [`crate::EngineConfig::record_parents`]),
    /// covering at least every goal path; on a `SingleSource` query the
    /// full tree is derived by the parallel post-pass.
    pub want_paths: bool,
    /// Record a per-step trace where the algorithm supports one.
    pub want_trace: bool,
}

impl Query {
    fn new(shape: QueryShape) -> Query {
        Query { shape, want_paths: false, want_trace: false }
    }

    /// A full single-source query.
    pub fn single_source(source: VertexId) -> Query {
        Query::new(QueryShape::SingleSource { source })
    }

    /// A goal-bounded point-to-point query.
    pub fn point_to_point(source: VertexId, goal: VertexId) -> Query {
        Query::new(QueryShape::PointToPoint { source, goal })
    }

    /// A one-to-many fan-out query: one solve, every goal settled.
    pub fn one_to_many(source: VertexId, goals: impl Into<Vec<VertexId>>) -> Query {
        Query::new(QueryShape::OneToMany { source, goals: goals.into() })
    }

    /// A many-to-many distance-table query (`sources` must be non-empty).
    pub fn many_to_many(
        sources: impl Into<Vec<VertexId>>,
        goals: impl Into<Vec<VertexId>>,
    ) -> Query {
        let sources = sources.into();
        assert!(!sources.is_empty(), "a many-to-many query needs at least one source");
        Query::new(QueryShape::ManyToMany { sources, goals: goals.into() })
    }

    /// Requests path extraction on the response.
    pub fn with_paths(mut self) -> Query {
        self.want_paths = true;
        self
    }

    /// Requests a per-step trace.
    pub fn with_trace(mut self) -> Query {
        self.want_trace = true;
        self
    }

    /// The query's (first) source vertex; see [`Query::sources`] for the
    /// full list of a many-to-many query.
    pub fn source(&self) -> VertexId {
        self.sources()[0]
    }

    /// All source vertices: one per response row.
    pub fn sources(&self) -> &[VertexId] {
        match &self.shape {
            QueryShape::SingleSource { source }
            | QueryShape::PointToPoint { source, .. }
            | QueryShape::OneToMany { source, .. } => std::slice::from_ref(source),
            QueryShape::ManyToMany { sources, .. } => sources,
        }
    }

    /// The goal vertices, in request order (empty for `SingleSource`).
    pub fn goals(&self) -> &[VertexId] {
        match &self.shape {
            QueryShape::SingleSource { .. } => &[],
            QueryShape::PointToPoint { goal, .. } => std::slice::from_ref(goal),
            QueryShape::OneToMany { goals, .. } | QueryShape::ManyToMany { goals, .. } => goals,
        }
    }

    /// The goal vertex of a point-to-point query (`None` for every other
    /// shape — multi-goal shapes answer through [`Query::goals`]).
    pub fn goal(&self) -> Option<VertexId> {
        match self.shape {
            QueryShape::PointToPoint { goal, .. } => Some(goal),
            _ => None,
        }
    }

    /// True for the point-to-point shape.
    pub fn is_point_to_point(&self) -> bool {
        matches!(self.shape, QueryShape::PointToPoint { .. })
    }

    /// True for goal-bounded shapes (everything but `SingleSource`).
    pub fn is_goal_bounded(&self) -> bool {
        !matches!(self.shape, QueryShape::SingleSource { .. })
    }

    /// True for the many-to-many table shape.
    pub fn is_many_to_many(&self) -> bool {
        matches!(self.shape, QueryShape::ManyToMany { .. })
    }

    /// Number of rows the response will carry (1 for single-solve shapes).
    pub fn rows(&self) -> usize {
        self.sources().len()
    }

    /// The sorted-deduplicated goal set — what a solve actually runs on.
    pub fn canonical_goals(&self) -> Vec<VertexId> {
        let mut goals = self.goals().to_vec();
        goals.sort_unstable();
        goals.dedup();
        goals
    }

    /// The canonical dedup key: goal lists sorted and deduplicated (goal
    /// order never affects a response's content — distances are read from
    /// the row's distance array — so permuted goal lists must share one
    /// [`QueryBatch`] dedup slot). Sources keep their order: it defines
    /// the response's row order.
    pub fn canonical(&self) -> Query {
        let shape = match &self.shape {
            QueryShape::OneToMany { source, .. } => {
                QueryShape::OneToMany { source: *source, goals: self.canonical_goals() }
            }
            QueryShape::ManyToMany { sources, .. } => {
                QueryShape::ManyToMany { sources: sources.clone(), goals: self.canonical_goals() }
            }
            other => other.clone(),
        };
        Query { shape, want_paths: self.want_paths, want_trace: self.want_trace }
    }
}

/// The engine-facing goal bound for one solve of `query` (`OneToMany`
/// goals are canonicalised into `buf` and borrowed from there). Panics on
/// `ManyToMany` — table queries dispatch through
/// [`execute_many_to_many`] before reaching a single solve.
pub fn solve_goals<'q>(query: &'q Query, buf: &'q mut Vec<VertexId>) -> Goals<'q> {
    match &query.shape {
        QueryShape::SingleSource { .. } => Goals::None,
        QueryShape::PointToPoint { goal, .. } => Goals::One(*goal),
        QueryShape::OneToMany { goals, .. } => {
            buf.clear();
            buf.extend_from_slice(goals);
            buf.sort_unstable();
            buf.dedup();
            Goals::Many(buf)
        }
        QueryShape::ManyToMany { .. } => {
            panic!("ManyToMany is executed row-wise via execute_many_to_many")
        }
    }
}

/// Executes a [`QueryShape::ManyToMany`] query as parallel
/// [`QueryShape::OneToMany`] rows over the work-stealing pool — the shared
/// table path behind every solver's `execute`. Each pool task reuses one
/// pre-warmed [`SolverScratch`] across the rows it claims
/// ([`rs_par::worker_map`] load balancing), so an r-source table performs
/// exactly r solves. Per-task scratches come from the process-wide
/// [`crate::scratch::global_scratch_pool`], so *repeated* tables stop
/// creating (and re-allocating) scratches once the pool has seen the peak
/// task concurrency — the steady state a serving workload lives in.
pub fn execute_many_to_many<S: SsspSolver + ?Sized>(solver: &S, query: &Query) -> QueryResponse {
    execute_many_to_many_pooled(solver, query, crate::scratch::global_scratch_pool())
}

/// [`execute_many_to_many`] drawing per-task scratches from an explicit
/// [`ScratchPool`] — the testable seam (callers wanting isolation from the
/// process-wide pool, e.g. to assert creation counts, pass their own).
pub fn execute_many_to_many_pooled<S: SsspSolver + ?Sized>(
    solver: &S,
    query: &Query,
    pool: &crate::scratch::ScratchPool,
) -> QueryResponse {
    let QueryShape::ManyToMany { sources, goals } = &query.shape else {
        panic!("execute_many_to_many on {:?}", query.shape)
    };
    let rows: Vec<SsspResult> = rs_par::worker_map(
        sources.len(),
        || {
            let mut scratch = pool.checkout();
            solver.warm_scratch(&mut scratch);
            scratch
        },
        |scratch, i| {
            let row = Query {
                shape: QueryShape::OneToMany { source: sources[i], goals: goals.clone() },
                want_paths: query.want_paths,
                want_trace: query.want_trace,
            };
            solver.execute(&row, scratch).into_result()
        },
    );
    QueryResponse::table(query.clone(), rows)
}

/// What [`SsspSolver::execute`] returns: the executed [`Query`] (so batch
/// consumers can correlate responses) plus one [`crate::SsspResult`] row
/// per query source (a single row for every shape but `ManyToMany`), with
/// goal-aware conveniences on top.
///
/// Responses from a preprocessed solver carry the preprocessing's
/// [`ShortcutExpander`], so every extracted path is an exact *input-graph*
/// route: shortcut hops are unrolled into their underlying input edges in
/// O(output hops) at extraction time.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The request this response answers.
    pub query: Query,
    /// One result per query source, in [`Query::sources`] order.
    rows: Vec<SsspResult>,
    /// Shortcut → input-edge expansion (preprocessed solvers only).
    expander: Option<Arc<ShortcutExpander>>,
}

impl QueryResponse {
    /// A single-row response (every shape but `ManyToMany`).
    pub fn single(query: Query, result: SsspResult) -> QueryResponse {
        QueryResponse { query, rows: vec![result], expander: None }
    }

    /// A multi-row (`ManyToMany`) response; `rows[i]` answers
    /// `query.sources()[i]`.
    pub fn table(query: Query, rows: Vec<SsspResult>) -> QueryResponse {
        debug_assert_eq!(rows.len(), query.rows());
        QueryResponse { query, rows, expander: None }
    }

    /// Attaches a shortcut expansion table (preprocessed solvers call this
    /// so extracted paths ride input-graph edges only).
    pub fn with_expander(mut self, expander: Option<Arc<ShortcutExpander>>) -> QueryResponse {
        self.expander = expander;
        self
    }

    /// The primary (first-row) result — the only row for every shape but
    /// `ManyToMany`.
    pub fn result(&self) -> &SsspResult {
        &self.rows[0]
    }

    /// All result rows, in [`Query::sources`] order.
    pub fn rows(&self) -> &[SsspResult] {
        &self.rows
    }

    /// The primary row's distance array (exact everywhere for
    /// `SingleSource`; exact at every goal and an upper bound elsewhere
    /// for the goal-bounded shapes).
    pub fn dist(&self) -> &[Dist] {
        &self.rows[0].dist
    }

    /// The primary row's execution counters (sum over [`QueryResponse::rows`]
    /// yourself for a table's aggregate).
    pub fn stats(&self) -> &StepStats {
        &self.rows[0].stats
    }

    /// The goal's exact distance, for a reachable `PointToPoint` query
    /// (`None` for other shapes and unreachable goals; multi-goal shapes
    /// answer through [`QueryResponse::goal_distances`]).
    pub fn goal_distance(&self) -> Option<Dist> {
        let goal = self.query.goal()?;
        let d = self.rows[0].dist[goal as usize];
        (d != INF).then_some(d)
    }

    /// Per-goal exact distances of row `row`, in the *requested* goal
    /// order (`None` per unreachable goal). Empty for `SingleSource`.
    pub fn goal_distances_in_row(&self, row: usize) -> Vec<Option<Dist>> {
        let dist = &self.rows[row].dist;
        self.query
            .goals()
            .iter()
            .map(|&g| {
                let d = dist[g as usize];
                (d != INF).then_some(d)
            })
            .collect()
    }

    /// Per-goal exact distances of the primary row (see
    /// [`QueryResponse::goal_distances_in_row`]).
    pub fn goal_distances(&self) -> Vec<Option<Dist>> {
        self.goal_distances_in_row(0)
    }

    /// The full distance table: `table()[i][j]` = distance from
    /// `sources()[i]` to `goals()[j]` (`None` if unreachable). One row for
    /// single-solve shapes, `sources().len()` rows for `ManyToMany`.
    pub fn distance_table(&self) -> Vec<Vec<Option<Dist>>> {
        (0..self.rows.len()).map(|r| self.goal_distances_in_row(r)).collect()
    }

    /// Shortcut-expands a raw extracted path into input-graph hops (a
    /// pass-through when the solver had no preprocessing attached).
    fn expand(&self, row: usize, path: Option<Vec<VertexId>>) -> Option<Vec<VertexId>> {
        let path = path?;
        Some(match &self.expander {
            None => path,
            Some(e) => e.expand_path(&path, &self.rows[row].dist),
        })
    }

    /// On-demand extraction of the `source → goal` path of a
    /// `PointToPoint` query from the recorded parents (requires
    /// `want_paths`; `None` for other shapes and unreachable goals). Costs
    /// O(path length).
    ///
    /// The path's edges are edges of the *input* graph: for a solver built
    /// with preprocessing, shortcut hops are expanded into their
    /// underlying input edges (same total distance) before the path is
    /// returned. Multi-goal shapes extract through
    /// [`QueryResponse::goal_path_to`] / [`QueryResponse::goal_paths`].
    pub fn goal_path(&self) -> Option<Vec<VertexId>> {
        self.goal_path_to(self.query.goal()?)
    }

    /// The primary row's path to one goal of a goal-bounded query
    /// (requires `want_paths`; `None` for unreachable goals). Input-graph
    /// exact, like [`QueryResponse::goal_path`].
    pub fn goal_path_to(&self, goal: VertexId) -> Option<Vec<VertexId>> {
        self.path_in_row(0, goal)
    }

    /// Per-goal paths of the primary row, in requested goal order.
    pub fn goal_paths(&self) -> Vec<Option<Vec<VertexId>>> {
        self.query.goals().iter().map(|&g| self.goal_path_to(g)).collect()
    }

    /// Path from `sources()[row]` to `goal` (the table shape's
    /// per-cell route; requires `want_paths`). Input-graph exact.
    pub fn path_in_row(&self, row: usize, goal: VertexId) -> Option<Vec<VertexId>> {
        self.expand(row, self.rows[row].extract_path(goal))
    }

    /// On-demand extraction of the path to any vertex the primary row
    /// settled (requires `want_paths`; goal-bounded responses cover at
    /// least every goal path). Input-graph exact, like
    /// [`QueryResponse::goal_path`].
    pub fn extract_path(&self, t: VertexId) -> Option<Vec<VertexId>> {
        self.expand(0, self.rows[0].extract_path(t))
    }

    /// Unwraps into the primary row's [`SsspResult`] (what the `solve_*`
    /// wrapper methods return).
    pub fn into_result(self) -> SsspResult {
        self.rows.into_iter().next().expect("a response has at least one row")
    }
}

/// A single-source shortest-path solver bound to one graph.
///
/// Implementations are interchangeable: on the same graph every solver
/// produces identical `dist` arrays (asserted by the cross-algorithm
/// conformance tests). They differ only in their counters and costs.
///
/// The one required computation method is [`SsspSolver::execute`]; the
/// legacy `solve_*` family are default wrappers over it, so downstream
/// code migrates mechanically and every entry point shares the same
/// goal-bounded, scratch-reusing machinery.
pub trait SsspSolver: Sync {
    /// Human-readable algorithm name (for reports and error messages).
    fn name(&self) -> String;

    /// The graph distances refer to. For preprocessed solvers this is the
    /// shortcut-augmented (k, ρ)-graph — distances are identical to the
    /// input graph's by construction.
    fn graph(&self) -> &CsrGraph;

    /// Answers `query` on caller-provided [`SolverScratch`] state — the
    /// single entry point behind every other method.
    ///
    /// * `SingleSource` queries produce exact distances everywhere.
    /// * `PointToPoint` queries stop as soon as the goal is settled
    ///   (`dist[goal]` exact, everything else an upper bound or `INF`),
    ///   and with `want_paths` record parents inline during relaxation —
    ///   no all-edges post-pass on the serving path.
    /// * `OneToMany` queries run **one** solve that stops once every goal
    ///   is settled: per-goal distances and paths are bit-identical to
    ///   the per-goal `PointToPoint` answers at a fraction of the solves.
    /// * `ManyToMany` queries fan their rows over the pool (the caller's
    ///   scratch is bypassed; each pool task warms its own) and return
    ///   one result row per source.
    /// * After the first (cold) query on a scratch, no working distance
    ///   array, bitset, heap, bucket queue or treap node is allocated
    ///   again ([`crate::StepStats::scratch_reused`]); pre-warm with
    ///   [`SsspSolver::warm_scratch`] to make even the first query warm.
    ///
    /// Results are bit-identical across scratches (asserted by the
    /// conformance suite): which scratch served a query is not observable
    /// beyond `scratch_reused`.
    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse;

    /// Pre-sizes `scratch` for this solver so a latency-critical *first*
    /// query skips the cold allocation spike. The default pre-sizes the
    /// shared working structures for [`SsspSolver::graph`]; solvers with
    /// private structures (Dijkstra's heap, ∆-stepping's bucket queue)
    /// override it to warm those too. [`QueryBatch::execute`] calls this
    /// when creating per-worker scratches.
    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        scratch.warm_up(self.graph());
    }

    /// Exact distances from `source` to every vertex (legacy wrapper over
    /// [`SsspSolver::execute`] with a throwaway scratch).
    fn solve(&self, source: VertexId) -> SsspResult {
        self.execute(&Query::single_source(source), &mut SolverScratch::new()).into_result()
    }

    /// Distances from `source`, stopping early once `goal` is settled
    /// (legacy wrapper; `dist[goal]` exact, other finite entries valid
    /// upper bounds). Reuse a scratch via `execute` for serving traffic.
    fn solve_to_goal(&self, source: VertexId, goal: VertexId) -> SsspResult {
        self.execute(&Query::point_to_point(source, goal), &mut SolverScratch::new()).into_result()
    }

    /// Like [`SsspSolver::solve`] on reusable scratch state (legacy
    /// wrapper over [`SsspSolver::execute`]).
    fn solve_with_scratch(&self, source: VertexId, scratch: &mut SolverScratch) -> SsspResult {
        self.execute(&Query::single_source(source), scratch).into_result()
    }

    /// Solves from every source, fanning out across the rayon pool — the
    /// paper's motivating workload (§5.4: preprocessing is paid once, then
    /// "Sssp will be run from multiple sources").
    ///
    /// Legacy wrapper over [`QueryBatch`]: duplicate sources are answered
    /// once and cloned (observationally invisible), and each pool task
    /// reuses one pre-warmed [`SolverScratch`] across every query it
    /// claims. Use [`QueryBatch::execute`] directly for mixed query shapes
    /// and the aggregated [`BatchStats`].
    fn solve_batch(&self, sources: &[VertexId]) -> Vec<SsspResult> {
        QueryBatch::from_sources(sources).execute(self).into_results()
    }
}

/// A prepared mixed-shape batch: the dedup layer behind
/// [`SsspSolver::solve_batch`], reusable across solvers, accepting any
/// mix of [`Query`] values.
///
/// Construction groups the requested queries into their unique set
/// (first-occurrence order, keyed by the *full* query — shape and output
/// options) and remembers, for every requested slot, which unique
/// execution answers it. [`QueryBatch::execute`] then fans the unique
/// queries over the pool via [`rs_par::worker_map`] — one lazily-created,
/// pre-warmed [`SolverScratch`] per pool task, dynamic load balancing via
/// a shared work counter — and expands the answers back to request order.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// The requested queries, in request order.
    queries: Vec<Query>,
    /// Unique queries, in first-occurrence order.
    unique: Vec<Query>,
    /// `rep[i]` = index into `unique` answering `queries[i]`.
    rep: Vec<usize>,
}

impl QueryBatch {
    /// Plans a batch over `queries` (duplicates allowed, order preserved).
    /// Dedup keys are *canonical* queries ([`Query::canonical`]): goal
    /// lists are sorted and deduplicated before keying, so one-to-many
    /// requests with permuted goal lists share a dedup slot (their
    /// responses are interchangeable — distances are read from the row's
    /// distance array, never from goal positions).
    pub fn new(queries: &[Query]) -> Self {
        let mut first_slot: std::collections::HashMap<Query, usize> =
            std::collections::HashMap::with_capacity(queries.len());
        let mut unique = Vec::with_capacity(queries.len());
        let mut rep = Vec::with_capacity(queries.len());
        for q in queries {
            let slot = *first_slot.entry(q.canonical()).or_insert_with(|| {
                unique.push(q.clone());
                unique.len() - 1
            });
            rep.push(slot);
        }
        QueryBatch { queries: queries.to_vec(), unique, rep }
    }

    /// Plans an all-targets batch: one `SingleSource` query per entry —
    /// the [`SsspSolver::solve_batch`] shape.
    pub fn from_sources(sources: &[VertexId]) -> Self {
        let queries: Vec<Query> = sources.iter().map(|&s| Query::single_source(s)).collect();
        QueryBatch::new(&queries)
    }

    /// Number of requested queries (including duplicates).
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch requests nothing.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The requested queries, in request order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The deduplicated queries actually executed.
    pub fn unique_queries(&self) -> &[Query] {
        &self.unique
    }

    /// Requested queries answered by cloning another slot's response.
    pub fn deduplicated(&self) -> usize {
        self.queries.len() - self.unique.len()
    }

    /// Runs the batch on `solver` and materialises every response: a thin
    /// wrapper over [`QueryBatch::stream`] that collects deliveries back
    /// into request order. Responses are bit-identical to the streamed
    /// ones (same executions — `execute` *is* the stream, drained).
    pub fn execute<S: SsspSolver + ?Sized>(&self, solver: &S) -> BatchOutcome {
        let mut responses: Vec<Option<QueryResponse>> = vec![None; self.queries.len()];
        let stats = self.stream(solver, |slot, response| {
            debug_assert!(responses[slot].is_none(), "each slot delivered exactly once");
            responses[slot] = Some(response);
        });
        let responses = responses.into_iter().map(|r| r.expect("every slot delivered")).collect();
        BatchOutcome { responses, stats }
    }

    /// Runs the batch on `solver`, delivering responses **as each solve
    /// completes** instead of materialising the whole batch: a slow query
    /// no longer blocks the fast ones, so a server can pipeline replies.
    ///
    /// Unique queries fan out over the pool with per-task pre-warmed
    /// scratch reuse ([`SsspSolver::warm_scratch`] — first queries skip
    /// the cold allocation spike); the caller's thread drains completions
    /// and invokes `sink(request_slot, response)` once per *requested*
    /// query. Duplicates are delivered (as clones, with their own
    /// requested `query` key) the moment their unique execution lands.
    /// Delivery order is completion order — use the slot index to
    /// reorder when request order matters, or use [`QueryBatch::execute`].
    /// Returns the aggregated [`BatchStats`] once every response is
    /// delivered.
    ///
    /// Responses flow through a **bounded** channel sized to the pool
    /// (see [`QueryBatch::default_stream_capacity`]): a slow sink applies
    /// backpressure to the solver workers instead of letting finished
    /// responses pile up unboundedly. Use [`QueryBatch::stream_bounded`]
    /// to pick the capacity explicitly.
    pub fn stream<S, F>(&self, solver: &S, sink: F) -> BatchStats
    where
        S: SsspSolver + ?Sized,
        F: FnMut(usize, QueryResponse),
    {
        self.stream_bounded(solver, Self::default_stream_capacity(), sink)
    }

    /// Default response-channel capacity for [`QueryBatch::stream`]: two
    /// finished responses per pool worker (and at least 4), enough to keep
    /// every worker busy while the sink drains without ever holding more
    /// than `O(threads)` responses in flight.
    pub fn default_stream_capacity() -> usize {
        (2 * rs_par::num_threads()).max(4)
    }

    /// [`QueryBatch::stream`] with an explicit response-channel bound.
    ///
    /// At most `capacity` finished-but-undelivered responses are buffered;
    /// beyond that, solver workers **block in `send`** (one completed
    /// response held per blocked worker) until the sink catches up, so
    /// peak memory for a batch of any length is `O(capacity + threads)`
    /// responses rather than `O(batch)`. This cannot deadlock: the
    /// caller's thread does nothing but drain the channel, and the
    /// producers need no resource the sink holds.
    ///
    /// `capacity` is clamped to at least 1 (a rendezvous of 0 would serialise
    /// workers against the sink for no benefit).
    pub fn stream_bounded<S, F>(&self, solver: &S, capacity: usize, mut sink: F) -> BatchStats
    where
        S: SsspSolver + ?Sized,
        F: FnMut(usize, QueryResponse),
    {
        let mut stats = BatchStats {
            solves: self.queries.len(),
            unique_solves: self.unique.len(),
            ..Default::default()
        };
        if self.queries.is_empty() {
            return stats;
        }
        // Request slots answered by each unique execution.
        let mut slots_of: Vec<Vec<usize>> = vec![Vec::new(); self.unique.len()];
        for (slot, &u) in self.rep.iter().enumerate() {
            slots_of[u].push(slot);
        }

        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, QueryResponse)>(capacity.max(1));
        std::thread::scope(|scope| {
            // The producer fans the unique queries over the pool from a
            // scoped thread; the calling thread stays free to drain the
            // channel, so deliveries interleave with execution at every
            // pool size (worker_map_sink streams even its sequential
            // fallback item-by-item).
            let producer = scope.spawn(move || {
                rs_par::worker_map_sink(
                    self.unique.len(),
                    || {
                        let mut scratch = SolverScratch::new();
                        solver.warm_scratch(&mut scratch);
                        scratch
                    },
                    |scratch, i| solver.execute(&self.unique[i], scratch),
                    |i, response| {
                        // A dropped receiver just stops deliveries; the
                        // remaining solves complete and are discarded.
                        let _ = tx.send((i, response));
                    },
                );
            });
            for (u, response) in rx.iter() {
                stats.absorb_unique(&response);
                // Clone only for true duplicates: the last slot (every
                // unique has at least one) takes the response by move, so
                // a duplicate-free batch never copies a dist array.
                let (&last, dups) = slots_of[u].split_last().expect("unique from ≥1 request");
                for &slot in dups {
                    let mut delivered = response.clone();
                    delivered.query = self.queries[slot].clone();
                    stats.absorb_delivered(&delivered);
                    sink(slot, delivered);
                }
                let mut delivered = response;
                delivered.query = self.queries[last].clone();
                stats.absorb_delivered(&delivered);
                sink(last, delivered);
            }
            producer.join().expect("batch producer panicked");
        });
        stats
    }
}

/// What [`QueryBatch::execute`] returns: per-query responses (request
/// order) plus the batch-level aggregates.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One response per requested query, in request order (duplicates are
    /// clones of their unique execution).
    pub responses: Vec<QueryResponse>,
    /// Aggregated counters for the whole batch.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// Drops the aggregates and query keys, keeping the bare results.
    pub fn into_results(self) -> Vec<SsspResult> {
        self.responses.into_iter().map(QueryResponse::into_result).collect()
    }
}

/// Per-batch aggregate of the queries' [`crate::StepStats`].
///
/// Step/substep/relaxation totals are summed over the *delivered*
/// responses (a deduplicated query counts once per request, so means stay
/// faithful to the requested workload); the scratch and `executed_solves`
/// counters describe the *unique* executions' physical solve rows — the
/// allocation and work events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requested queries (including duplicates).
    pub solves: usize,
    /// Unique queries actually executed.
    pub unique_solves: usize,
    /// Physical solve rows run for the unique executions: 1 per
    /// single-solve query — a one-to-many query with k goals still counts
    /// exactly 1 — and `sources.len()` per many-to-many table.
    pub executed_solves: usize,
    /// Physical solve rows that ran entirely on pre-allocated scratch
    /// state.
    pub scratch_reuses: usize,
    /// Physical solve rows that had to allocate (at most one per pool
    /// task; zero when [`SsspSolver::warm_scratch`] covers the algorithm).
    pub cold_solves: usize,
    /// Delivered point-to-point responses.
    pub point_to_point: usize,
    /// Delivered one-to-many responses.
    pub one_to_many: usize,
    /// Delivered many-to-many responses.
    pub many_to_many: usize,
    /// Goal lookups across delivered goal-bounded responses (a
    /// point-to-point counts 1, a one-to-many its goal-list length, a
    /// table rows × goals).
    pub goals_requested: usize,
    /// Of [`BatchStats::goals_requested`], how many were reachable.
    pub goals_reached: usize,
    /// Total steps over delivered responses (all rows).
    pub steps: usize,
    /// Total substeps over delivered responses.
    pub substeps: usize,
    /// Largest `max_substeps_in_step` over delivered responses.
    pub max_substeps_in_step: usize,
    /// Total relaxations over delivered responses.
    pub relaxations: u64,
    /// Total edges scanned during relaxation over delivered responses
    /// (see [`crate::StepStats::relaxed_edges`]).
    pub relaxed_edges: u64,
    /// Total settled vertices over delivered responses.
    pub settled: usize,
}

impl BatchStats {
    /// Folds one *unique* execution's physical counters in (once per
    /// unique query, regardless of how many request slots it answers).
    /// Public so serving layers that execute queries outside
    /// [`QueryBatch`] (e.g. on a cache miss) can keep one stats ledger.
    pub fn absorb_unique(&mut self, response: &QueryResponse) {
        for row in response.rows() {
            self.executed_solves += 1;
            if row.stats.scratch_reused {
                self.scratch_reuses += 1;
            } else {
                self.cold_solves += 1;
            }
        }
    }

    /// Folds one *delivered* response's workload counters in (once per
    /// request slot; duplicates re-count, keeping means faithful to the
    /// requested traffic). Public for the same serving layers as
    /// [`BatchStats::absorb_unique`]; cache hits are delivered responses
    /// that were never uniquely executed.
    pub fn absorb_delivered(&mut self, response: &QueryResponse) {
        for row in response.rows() {
            let s = &row.stats;
            self.steps += s.steps;
            self.substeps += s.substeps;
            self.max_substeps_in_step = self.max_substeps_in_step.max(s.max_substeps_in_step);
            self.relaxations += s.relaxations;
            self.relaxed_edges += s.relaxed_edges;
            self.settled += s.settled;
        }
        match &response.query.shape {
            QueryShape::SingleSource { .. } => {}
            QueryShape::PointToPoint { .. } => self.point_to_point += 1,
            QueryShape::OneToMany { .. } => self.one_to_many += 1,
            QueryShape::ManyToMany { .. } => self.many_to_many += 1,
        }
        let goals = response.query.goals();
        for row in response.rows() {
            self.goals_requested += goals.len();
            self.goals_reached += goals.iter().filter(|&&g| row.dist[g as usize] != INF).count();
        }
    }

    /// Mean steps per requested query.
    pub fn mean_steps(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.steps as f64 / self.solves as f64
        }
    }

    /// Mean physical solves per requested query — the dedup + fan-out
    /// economy metric (a one-to-many query with k goals contributes one
    /// solve, so a pure fan-out batch reads well below the k it replaces).
    pub fn mean_solves_per_query(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.executed_solves as f64 / self.solves as f64
        }
    }

    /// Folds `other` into `self` counter-wise — exact, as every field is a
    /// sum except `max_substeps_in_step` (a max). Serving layers use this
    /// to roll per-lane ledgers into a server-wide total.
    pub fn merge(&mut self, other: &BatchStats) {
        self.solves += other.solves;
        self.unique_solves += other.unique_solves;
        self.executed_solves += other.executed_solves;
        self.scratch_reuses += other.scratch_reuses;
        self.cold_solves += other.cold_solves;
        self.point_to_point += other.point_to_point;
        self.one_to_many += other.one_to_many;
        self.many_to_many += other.many_to_many;
        self.goals_requested += other.goals_requested;
        self.goals_reached += other.goals_reached;
        self.steps += other.steps;
        self.substeps += other.substeps;
        self.max_substeps_in_step = self.max_substeps_in_step.max(other.max_substeps_in_step);
        self.relaxations += other.relaxations;
        self.relaxed_edges += other.relaxed_edges;
        self.settled += other.settled;
    }
}

/// Owned radius assignment (the builder cannot borrow like
/// [`RadiiSpec`] does).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Radii {
    /// `r ≡ 0`: Dijkstra-like (one distance level per step).
    #[default]
    Zero,
    /// `r ≡ ∞`: Bellman–Ford-like (one step, substeps to fixpoint).
    Infinite,
    /// `r ≡ ∆`: ∆-stepping-like.
    Constant(Dist),
    /// Per-vertex radii, e.g. `r_ρ(v)` from preprocessing.
    PerVertex(Vec<Dist>),
}

impl Radii {
    /// Borrowing view for the engines.
    pub fn as_spec(&self) -> RadiiSpec<'_> {
        match self {
            Radii::Zero => RadiiSpec::Zero,
            Radii::Infinite => RadiiSpec::Infinite,
            Radii::Constant(d) => RadiiSpec::Constant(*d),
            Radii::PerVertex(r) => RadiiSpec::PerVertex(r),
        }
    }
}

/// Decrease-key heap selector for the Dijkstra baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapKind {
    /// 4-ary array heap (usually fastest in practice).
    #[default]
    Dary,
    /// Pairing heap.
    Pairing,
    /// Fibonacci heap (the Lemma 4.2 choice).
    Fibonacci,
}

/// Algorithm selector: the five families of the paper's evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Algorithm {
    /// Radius stepping (Algorithm 1/2) with an engine and radii. Attach
    /// [`SolverBuilder::preprocess`] to derive `r_ρ(v)` radii and shortcut
    /// edges instead of passing radii here.
    RadiusStepping { engine: EngineKind, radii: Radii },
    /// Sequential Dijkstra, generic over the decrease-key heap.
    Dijkstra { heap: HeapKind },
    /// Meyer–Sanders ∆-stepping with bucket width ∆.
    DeltaStepping { delta: Dist },
    /// Round-synchronous parallel Bellman–Ford.
    BellmanFord,
    /// Level-synchronous parallel BFS (unit-weight graphs only).
    Bfs,
}

impl Default for Algorithm {
    fn default() -> Self {
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero }
    }
}

/// How a solver answers the [`QueryShape::PointToPoint`] serving shape.
///
/// Every mode returns the same goal distance bit-for-bit (asserted by the
/// p2p conformance suite); they differ only in how many edges they scan
/// ([`crate::StepStats::relaxed_edges`]) and which non-goal entries carry
/// finite upper bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum P2pMode {
    /// The goal-bounded forward solve (the engine/baseline early-exit
    /// path). The default: bit-identical by construction with one-to-many
    /// solves over the same goal set.
    #[default]
    Forward,
    /// Bidirectional meet-in-the-middle search over the graph and its
    /// cached [`rs_graph::CsrGraph::transpose`]
    /// ([`crate::engine::p2p::bidirectional`]).
    Bidirectional,
    /// Goal-directed ALT search ([`crate::engine::p2p::goal_directed`]).
    /// Requires a [`crate::Landmarks`] table: solvers built with this mode
    /// take it from the attached preprocessing (persisted in the `RSP4`
    /// cache) or elect one at construction time.
    GoalDirected,
    /// `GoalDirected` when the attached preprocessing supplies landmarks,
    /// `Bidirectional` otherwise — goal-directed pruning when it is free,
    /// never a construction-time landmark build.
    Auto,
}

/// Cross-algorithm output options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverConfig {
    /// Record a per-step trace where the algorithm supports it.
    pub trace: bool,
    /// Attach the shortest-path tree (`SsspResult::parent`) to results.
    pub record_parents: bool,
    /// Point-to-point execution strategy (see [`P2pMode`]).
    pub p2p_mode: P2pMode,
}

impl SolverConfig {
    /// Whether `query` should come back with a shortest-path tree: the
    /// query's own option ORed with the builder-level toggle.
    pub fn wants_paths(&self, query: &Query) -> bool {
        self.record_parents || query.want_paths
    }

    /// Whether `query` should record a trace (same OR).
    pub fn wants_trace(&self, query: &Query) -> bool {
        self.trace || query.want_trace
    }

    /// Attaches the shortest-path tree to `result` if `query` asked for
    /// one and the solve did not already record it inline: goal-bounded
    /// queries derive exactly the goal paths (no all-edges post-pass,
    /// one backwards walk per goal), single-source queries the full tree.
    pub fn finish_paths(&self, g: &CsrGraph, query: &Query, mut result: SsspResult) -> SsspResult {
        if self.wants_paths(query) && result.parent.is_none() {
            result.parent = Some(if query.is_goal_bounded() {
                crate::stats::goals_path_parents(g, &result.dist, query.goals())
            } else {
                crate::stats::derive_parents(g, &result.dist)
            });
        }
        result
    }
}

/// The graph a solver runs on: borrowed from the caller, or owned when
/// preprocessing replaced it with the shortcut-augmented (k, ρ)-graph.
#[derive(Debug, Clone)]
pub enum SolverGraph<'g> {
    Borrowed(&'g CsrGraph),
    Owned(CsrGraph),
}

impl std::ops::Deref for SolverGraph<'_> {
    type Target = CsrGraph;

    fn deref(&self) -> &CsrGraph {
        match self {
            SolverGraph::Borrowed(g) => g,
            SolverGraph::Owned(g) => g,
        }
    }
}

/// Fluent construction of any [`SsspSolver`].
///
/// ```
/// use rs_core::solver::{Algorithm, Radii, SolverBuilder, SsspSolver};
/// use rs_core::{EngineKind, PreprocessConfig};
/// use rs_graph::{gen, weights, WeightModel};
///
/// let g = weights::reweight(&gen::grid2d(10, 10), WeightModel::paper_weighted(), 7);
/// let solver = SolverBuilder::new(&g)
///     .algorithm(Algorithm::RadiusStepping {
///         engine: EngineKind::Frontier,
///         radii: Radii::Zero, // replaced by r_rho(v) below
///     })
///     .preprocess(PreprocessConfig::new(1, 16))
///     .trace(true)
///     .radius_stepping_solver_from_algorithm(); // or `.build()` via rs_baselines
/// assert_eq!(solver.solve(0).dist[0], 0);
/// ```
#[derive(Debug, Clone)]
pub struct SolverBuilder<'g> {
    graph: &'g CsrGraph,
    algorithm: Algorithm,
    preprocess: Option<PreprocessConfig>,
    preprocess_cache: Option<std::path::PathBuf>,
    config: SolverConfig,
}

impl<'g> SolverBuilder<'g> {
    /// Starts a builder for `graph` (default algorithm: frontier-engine
    /// radius stepping with zero radii, i.e. batched Dijkstra).
    pub fn new(graph: &'g CsrGraph) -> Self {
        SolverBuilder {
            graph,
            algorithm: Algorithm::default(),
            preprocess: None,
            preprocess_cache: None,
            config: SolverConfig::default(),
        }
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Attaches (k, ρ)-preprocessing: at build time the graph is replaced
    /// by the shortcut-augmented (k, ρ)-graph (distances unchanged) and —
    /// for radius stepping — the radii by `r_ρ(v)`.
    pub fn preprocess(mut self, cfg: PreprocessConfig) -> Self {
        self.preprocess = Some(cfg);
        self
    }

    /// Like [`SolverBuilder::preprocess`], but backed by an on-disk cache:
    /// a preprocessing previously saved at `path` with a matching
    /// configuration (and vertex count) is loaded instead of rebuilt —
    /// paying the `O(m log n + nρ²)` phase once per graph, not once per
    /// process. On a miss (absent, unreadable, or stale file) the
    /// preprocessing is rebuilt and saved back to `path` best-effort.
    pub fn preprocess_cached(
        mut self,
        path: impl Into<std::path::PathBuf>,
        cfg: PreprocessConfig,
    ) -> Self {
        self.preprocess = Some(cfg);
        self.preprocess_cache = Some(path.into());
        self
    }

    /// Toggles per-step tracing (where the algorithm records one).
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Toggles shortest-path-tree recording on every result.
    pub fn record_parents(mut self, on: bool) -> Self {
        self.config.record_parents = on;
        self
    }

    /// Selects the point-to-point execution strategy (see [`P2pMode`]).
    /// `GoalDirected` without attached preprocessing elects a landmark
    /// table at build time (`DEFAULT_LANDMARKS` sequential Dijkstras).
    pub fn p2p_mode(mut self, mode: P2pMode) -> Self {
        self.config.p2p_mode = mode;
        self
    }

    /// Decomposes the builder (used by `rs_baselines::solver::BuildSolver`,
    /// which constructs the baseline adapters this crate cannot name).
    pub fn into_parts(self) -> BuilderParts<'g> {
        BuilderParts {
            graph: self.graph,
            algorithm: self.algorithm,
            preprocess: self.preprocess,
            preprocess_cache: self.preprocess_cache,
            config: self.config,
        }
    }

    /// Builds a radius-stepping solver directly (engine + radii given
    /// explicitly; use `build()` from the facade for the general case).
    pub fn radius_stepping_solver(
        self,
        engine: EngineKind,
        radii: Radii,
    ) -> RadiusSteppingSolver<'g> {
        self.algorithm(Algorithm::RadiusStepping { engine, radii })
            .radius_stepping_solver_from_algorithm()
    }

    /// Builds a radius-stepping solver from the current `algorithm`
    /// selection, applying any attached preprocessing.
    ///
    /// Panics if the selected algorithm is not `RadiusStepping` — the
    /// baseline variants are built by `rs_baselines::solver::BuildSolver`.
    pub fn radius_stepping_solver_from_algorithm(self) -> RadiusSteppingSolver<'g> {
        let parts = self.into_parts();
        let Algorithm::RadiusStepping { engine, radii } = parts.algorithm else {
            panic!(
                "radius_stepping_solver_from_algorithm on {:?}; use BuildSolver::build",
                parts.algorithm
            )
        };
        RadiusSteppingSolver::from_parts(
            parts.graph,
            engine,
            radii,
            parts.preprocess,
            parts.preprocess_cache.as_deref(),
            parts.config,
        )
    }
}

/// The builder's decomposed state (consumed by the `build()` extension).
pub struct BuilderParts<'g> {
    pub graph: &'g CsrGraph,
    pub algorithm: Algorithm,
    pub preprocess: Option<PreprocessConfig>,
    pub preprocess_cache: Option<std::path::PathBuf>,
    pub config: SolverConfig,
}

impl<'g> BuilderParts<'g> {
    /// Resolves the attached preprocessing: returns the graph baselines
    /// should run on (augmented when preprocessing is attached — distances
    /// are preserved, so every solver stays exact) plus the shortcut
    /// expansion table for input-graph-exact path extraction.
    pub fn resolve_graph_and_expander(&self) -> (SolverGraph<'g>, Option<Arc<ShortcutExpander>>) {
        let (graph, expander, _) = self.resolve_graph_expander_landmarks();
        (graph, expander)
    }

    /// [`BuilderParts::resolve_graph_and_expander`] plus the ALT landmark
    /// table the configured [`P2pMode`] calls for: the preprocessing's
    /// persisted table when one is attached, a build-time election for
    /// `GoalDirected` without preprocessing, `None` for the modes that
    /// never read landmarks.
    pub fn resolve_graph_expander_landmarks(
        &self,
    ) -> (SolverGraph<'g>, Option<Arc<ShortcutExpander>>, Option<Arc<Landmarks>>) {
        let (graph, expander, mut landmarks) = match &self.preprocess {
            None => (SolverGraph::Borrowed(self.graph), None, None),
            Some(cfg) => {
                let pre = resolve_preprocessed(self.graph, cfg, self.preprocess_cache.as_deref());
                (SolverGraph::Owned(pre.graph), Some(pre.expander), pre.landmarks)
            }
        };
        match self.config.p2p_mode {
            P2pMode::GoalDirected if landmarks.is_none() => {
                // Shortcuts preserve distances, so a table elected on the
                // resolved graph bounds input-graph distances too.
                landmarks = Some(Arc::new(Landmarks::build(&graph, DEFAULT_LANDMARKS)));
            }
            P2pMode::Forward | P2pMode::Bidirectional => landmarks = None,
            _ => {}
        }
        (graph, expander, landmarks)
    }

    /// [`BuilderParts::resolve_graph_and_expander`] dropping the expander.
    pub fn resolve_graph(&self) -> SolverGraph<'g> {
        self.resolve_graph_and_expander().0
    }
}

/// Loads a compatible preprocessing from `cache`, or builds one (saving it
/// back to `cache`, best-effort, when a path is given). A cached file is
/// compatible when its parameters match `cfg` exactly and the content hash
/// of the input graph recorded in its header
/// ([`Preprocessed::input_hash`], computed by
/// [`CsrGraph::content_hash`]) matches `g` — so a mutated graph of the
/// same shape (same vertex and edge counts, different wiring or weights)
/// triggers a rebuild instead of silently serving stale shortcuts.
/// Anything else — missing file, garbage, an old-format file, stale
/// parameters, a different graph — falls back to a rebuild rather than an
/// error.
pub fn resolve_preprocessed(
    g: &CsrGraph,
    cfg: &PreprocessConfig,
    cache: Option<&std::path::Path>,
) -> Preprocessed {
    if let Some(path) = cache {
        if let Ok(pre) = Preprocessed::load(path) {
            if pre.config == *cfg
                && pre.graph.num_vertices() == g.num_vertices()
                && pre.input_hash == g.content_hash()
            {
                return pre;
            }
        }
        let pre = Preprocessed::build(g, cfg);
        // Best-effort: an unwritable cache degrades to rebuild-next-time.
        let _ = pre.save(path);
        pre
    } else {
        Preprocessed::build(g, cfg)
    }
}

/// Radius stepping (either engine, any radii, optional preprocessing)
/// behind the [`SsspSolver`] interface.
pub struct RadiusSteppingSolver<'g> {
    graph: SolverGraph<'g>,
    radii: Radii,
    engine: EngineKind,
    config: SolverConfig,
    /// Shortcut expansion table when preprocessing replaced the graph —
    /// attached to every response so extracted paths ride input edges.
    expander: Option<Arc<ShortcutExpander>>,
    /// ALT landmark table when the configured [`P2pMode`] reads one
    /// (guaranteed present for `GoalDirected`, optional for `Auto`).
    landmarks: Option<Arc<Landmarks>>,
}

impl<'g> RadiusSteppingSolver<'g> {
    /// Direct construction without a builder.
    pub fn new(graph: &'g CsrGraph, engine: EngineKind, radii: Radii) -> Self {
        RadiusSteppingSolver {
            graph: SolverGraph::Borrowed(graph),
            radii,
            engine,
            config: SolverConfig::default(),
            expander: None,
            landmarks: None,
        }
    }

    /// Construction from builder state: preprocessing (when attached)
    /// replaces both the graph and the radii — and supplies the persisted
    /// landmark table when the configured [`P2pMode`] reads one — loading
    /// from / saving to the `cache` path when one was supplied.
    pub fn from_parts(
        graph: &'g CsrGraph,
        engine: EngineKind,
        radii: Radii,
        preprocess: Option<PreprocessConfig>,
        cache: Option<&std::path::Path>,
        config: SolverConfig,
    ) -> Self {
        match preprocess {
            None => {
                let landmarks = (config.p2p_mode == P2pMode::GoalDirected)
                    .then(|| Arc::new(Landmarks::build(graph, DEFAULT_LANDMARKS)));
                RadiusSteppingSolver {
                    graph: SolverGraph::Borrowed(graph),
                    radii,
                    engine,
                    config,
                    expander: None,
                    landmarks,
                }
            }
            Some(cfg) => {
                let pre = resolve_preprocessed(graph, &cfg, cache);
                let landmarks = match config.p2p_mode {
                    P2pMode::GoalDirected => pre.landmarks.clone().or_else(|| {
                        Some(Arc::new(Landmarks::build(&pre.graph, DEFAULT_LANDMARKS)))
                    }),
                    P2pMode::Auto => pre.landmarks.clone(),
                    P2pMode::Forward | P2pMode::Bidirectional => None,
                };
                RadiusSteppingSolver {
                    graph: SolverGraph::Owned(pre.graph),
                    radii: Radii::PerVertex(pre.radii),
                    engine,
                    config,
                    expander: Some(pre.expander),
                    landmarks,
                }
            }
        }
    }

    /// The mode [`SsspSolver::execute`] actually dispatches for a
    /// point-to-point query: `Auto` resolves to goal-directed when a
    /// landmark table is on hand (i.e. came with preprocessing), else
    /// bidirectional.
    fn effective_p2p(&self) -> P2pMode {
        match self.config.p2p_mode {
            P2pMode::Auto if self.landmarks.is_some() => P2pMode::GoalDirected,
            P2pMode::Auto => P2pMode::Bidirectional,
            mode => mode,
        }
    }
}

impl SsspSolver for RadiusSteppingSolver<'_> {
    fn name(&self) -> String {
        let engine = match self.engine {
            EngineKind::Frontier => "frontier",
            EngineKind::Bst => "bst",
            EngineKind::Unweighted => "unweighted",
        };
        if self.expander.is_some() {
            format!("radius-stepping/{engine} (preprocessed)")
        } else {
            format!("radius-stepping/{engine}")
        }
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        if query.is_many_to_many() {
            return execute_many_to_many(self, query).with_expander(self.expander.clone());
        }
        // Point-to-point queries go through the goal-bounded kernels when a
        // non-forward mode is configured (frontier engine only — the BST
        // and unweighted engines always run the forward early-exit path).
        if let QueryShape::PointToPoint { source, goal } = query.shape {
            if self.engine == EngineKind::Frontier {
                let want_paths = self.config.wants_paths(query);
                let out = match self.effective_p2p() {
                    P2pMode::Forward | P2pMode::Auto => None,
                    P2pMode::Bidirectional => Some(p2p::bidirectional::<rs_ds::DaryHeap>(
                        &self.graph,
                        source,
                        goal,
                        want_paths,
                        scratch,
                    )),
                    P2pMode::GoalDirected => {
                        let lm = self.landmarks.as_ref().expect("GoalDirected owns landmarks");
                        Some(p2p::goal_directed::<rs_ds::DaryHeap>(
                            &self.graph,
                            source,
                            goal,
                            lm,
                            want_paths,
                            scratch,
                        ))
                    }
                };
                if let Some(out) = out {
                    return QueryResponse::single(query.clone(), out)
                        .with_expander(self.expander.clone());
                }
            }
        }
        let mut goal_buf = Vec::new();
        let goals = solve_goals(query, &mut goal_buf);
        let want_paths = self.config.wants_paths(query);
        let cfg = EngineConfig {
            trace: self.config.wants_trace(query),
            goals,
            // Goal-bounded path requests record parents inline during
            // relaxation; full solves keep the deterministic parallel
            // derivation (applied below by finish_paths).
            record_parents: want_paths && goals.bounded(),
        };
        let out = radius_stepping_with_scratch(
            &self.graph,
            &self.radii.as_spec(),
            query.source(),
            self.engine,
            cfg,
            scratch,
        );
        let result = self.config.finish_paths(&self.graph, query, out);
        QueryResponse::single(query.clone(), result).with_expander(self.expander.clone())
    }

    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        warm_for_engine(scratch, &self.graph, self.engine);
        if self.engine == EngineKind::Frontier {
            let n = self.graph.num_vertices();
            match self.effective_p2p() {
                P2pMode::Bidirectional => {
                    scratch.warm_up_bidir(&self.graph);
                    scratch.warm_heap::<rs_ds::DaryHeap>(n);
                    scratch.warm_heap_rev::<rs_ds::DaryHeap>(n);
                }
                P2pMode::GoalDirected => scratch.warm_heap::<rs_ds::DaryHeap>(n),
                P2pMode::Forward | P2pMode::Auto => {}
            }
        }
    }
}

/// Engine-aware scratch warm-up: shared state plus the frontier/substep
/// buffers for the two general engines, the treap node arena (its
/// `3n + 4` peak bound) on top for the BST engine, and only the visited
/// bitset for the unweighted engine (which never touches the distance
/// structures — the lean BFS path).
fn warm_for_engine(scratch: &mut SolverScratch, g: &CsrGraph, engine: EngineKind) {
    match engine {
        EngineKind::Frontier => {
            scratch.warm_up(g);
            scratch.warm_engine_buffers(g.num_vertices());
        }
        EngineKind::Bst => {
            scratch.warm_up(g);
            scratch.warm_engine_buffers(g.num_vertices());
            scratch.warm_treap_arena(3 * g.num_vertices() + 4);
        }
        EngineKind::Unweighted => scratch.warm_up_lean(g),
    }
}

/// [`Preprocessed`] is itself a solver: `execute` runs the frontier engine
/// on the (k, ρ)-graph with the derived radii.
impl SsspSolver for Preprocessed {
    fn name(&self) -> String {
        format!("radius-stepping (k={}, rho={})", self.config.k, self.config.rho)
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        if query.is_many_to_many() {
            return execute_many_to_many(self, query).with_expander(Some(self.expander.clone()));
        }
        let mut goal_buf = Vec::new();
        let goals = solve_goals(query, &mut goal_buf);
        let cfg = EngineConfig {
            trace: query.want_trace,
            goals,
            record_parents: query.want_paths && goals.bounded(),
        };
        let out = radius_stepping_with_scratch(
            &self.graph,
            &RadiiSpec::PerVertex(&self.radii),
            query.source(),
            EngineKind::Frontier,
            cfg,
            scratch,
        );
        let result = SolverConfig::default().finish_paths(&self.graph, query, out);
        QueryResponse::single(query.clone(), result).with_expander(Some(self.expander.clone()))
    }

    fn warm_scratch(&self, scratch: &mut SolverScratch) {
        warm_for_engine(scratch, &self.graph, EngineKind::Frontier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, weights, WeightModel, INF};

    fn grid() -> CsrGraph {
        weights::reweight(&gen::grid2d(9, 9), WeightModel::paper_weighted(), 4)
    }

    #[test]
    fn builder_constructs_working_solver() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .trace(true)
            .record_parents(true)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let out = solver.solve(0);
        assert_eq!(out.dist[0], 0);
        assert!(out.stats.trace.is_some(), "trace requested");
        let path = out.extract_path(80).expect("connected grid");
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 80);
    }

    #[test]
    fn preprocessing_replaces_radii_and_graph() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .preprocess(PreprocessConfig::new(1, 8))
            .radius_stepping_solver_from_algorithm();
        assert!(solver.name().contains("preprocessed"));
        assert!(solver.graph().num_edges() >= g.num_edges(), "shortcuts added");
        assert!(matches!(solver.radii, Radii::PerVertex(_)));
        let direct =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Bst, Radii::Infinite);
        assert_eq!(solver.solve(3).dist, direct.solve(3).dist);
    }

    #[test]
    fn goal_solve_settles_goal_exactly() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let full = solver.solve(0);
        let bounded = solver.solve_to_goal(0, 40);
        assert_eq!(bounded.dist[40], full.dist[40]);
        assert!(bounded.stats.steps <= full.stats.steps);
        for (b, f) in bounded.dist.iter().zip(&full.dist) {
            assert!(*b >= *f, "goal-bounded entries are upper bounds");
        }
    }

    #[test]
    fn batch_matches_per_source() {
        let g = grid();
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 8));
        let sources = [0u32, 11, 44, 80];
        let batch = pre.solve_batch(&sources);
        assert_eq!(batch.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(batch[i].dist, pre.solve(s).dist);
        }
    }

    #[test]
    fn query_batch_dedups_by_full_key_and_orders() {
        let queries = [
            Query::point_to_point(7, 3),
            Query::single_source(7),
            Query::point_to_point(7, 3),
            Query::point_to_point(7, 3).with_paths(), // options matter
            Query::single_source(1),
            Query::single_source(7),
        ];
        let batch = QueryBatch::new(&queries);
        assert_eq!(batch.len(), 6);
        assert_eq!(batch.queries(), &queries);
        assert_eq!(
            batch.unique_queries(),
            &[
                Query::point_to_point(7, 3),
                Query::single_source(7),
                Query::point_to_point(7, 3).with_paths(),
                Query::single_source(1),
            ],
            "first-occurrence order, keyed by shape AND options"
        );
        assert_eq!(batch.deduplicated(), 2);

        let empty = QueryBatch::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.unique_queries(), &[] as &[Query]);

        // from_sources is the legacy all-targets shape.
        let plan = QueryBatch::from_sources(&[7, 3, 7]);
        assert_eq!(plan.unique_queries(), &[Query::single_source(7), Query::single_source(3)]);
    }

    #[test]
    fn batch_execute_reports_aggregates_and_dedup_is_invisible() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let sources = [5u32, 9, 5, 77, 9, 5];
        let outcome = QueryBatch::from_sources(&sources).execute(&solver);
        assert_eq!(outcome.stats.solves, 6);
        assert_eq!(outcome.stats.unique_solves, 3);
        assert_eq!(outcome.stats.point_to_point, 0);
        assert_eq!(
            outcome.stats.cold_solves + outcome.stats.scratch_reuses,
            outcome.stats.unique_solves
        );
        assert!(
            outcome.stats.cold_solves <= rs_par::num_threads().min(3),
            "at most one cold solve per pool task"
        );
        // Aggregates sum over delivered results (duplicates re-counted).
        let per_source: Vec<SsspResult> = sources.iter().map(|&s| solver.solve(s)).collect();
        let steps: usize = per_source.iter().map(|r| r.stats.steps).sum();
        assert_eq!(outcome.stats.steps, steps);
        assert!((outcome.stats.mean_steps() - steps as f64 / 6.0).abs() < 1e-12);
        // Dedup is observationally invisible.
        for (out, reference) in outcome.responses.iter().zip(&per_source) {
            assert_eq!(out.dist(), reference.dist);
        }

        // Empty and singleton batches.
        let empty = QueryBatch::new(&[]).execute(&solver);
        assert!(empty.responses.is_empty());
        assert_eq!(empty.stats, BatchStats::default());
        let single = QueryBatch::from_sources(&[33]).execute(&solver);
        assert_eq!(single.responses.len(), 1);
        assert_eq!(single.responses[0].dist(), solver.solve(33).dist);
        assert_eq!(single.stats.unique_solves, 1);
    }

    #[test]
    fn mixed_batch_counts_goal_bounded_traffic() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let queries = [
            Query::point_to_point(0, 40),
            Query::single_source(0),
            Query::point_to_point(0, 40), // dedup'd
            Query::point_to_point(5, 80).with_paths(),
        ];
        let outcome = QueryBatch::new(&queries).execute(&solver);
        assert_eq!(outcome.stats.solves, 4);
        assert_eq!(outcome.stats.unique_solves, 3);
        assert_eq!(outcome.stats.point_to_point, 3, "delivered p2p responses");
        assert_eq!(outcome.stats.goals_reached, 3, "grid is connected");
        // Responses line up with their queries and are individually exact.
        let full = solver.solve(0);
        assert_eq!(outcome.responses[0].goal_distance(), Some(full.dist[40]));
        assert_eq!(outcome.responses[1].dist(), full.dist);
        assert_eq!(outcome.responses[2].dist(), outcome.responses[0].dist(), "clone of unique");
        let path = outcome.responses[3].goal_path().expect("paths requested");
        assert_eq!((path[0], *path.last().unwrap()), (5, 80));
    }

    #[test]
    fn execute_point_to_point_warm_matches_cold() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Constant(1_500));
        let mut scratch = SolverScratch::new();
        for (i, (s, t)) in [(0u32, 80u32), (80, 0), (40, 13), (0, 80)].into_iter().enumerate() {
            let warm = solver.execute(&Query::point_to_point(s, t), &mut scratch);
            let cold = solver.execute(&Query::point_to_point(s, t), &mut SolverScratch::new());
            assert_eq!(warm.dist(), cold.dist(), "query {i} diverged on a warm scratch");
            assert_eq!(warm.stats().scratch_reused, i > 0);
            assert_eq!(warm.goal_distance(), Some(solver.solve(s).dist[t as usize]));
        }
    }

    #[test]
    fn solve_with_scratch_interleaved_matches_fresh() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .record_parents(true)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Constant(1_500));
        let mut scratch = SolverScratch::new();
        for s in [0u32, 80, 40, 0, 17] {
            let warm = solver.solve_with_scratch(s, &mut scratch);
            let fresh = solver.solve(s);
            assert_eq!(warm.dist, fresh.dist, "source {s}");
            assert_eq!(warm.parent, fresh.parent, "source {s}: parents recorded on both paths");
        }
        assert_eq!(scratch.reuses(), 4);
    }

    #[test]
    fn cache_rebuilds_on_mutated_same_size_graph() {
        // Same vertex AND edge counts, different weights: the old
        // shape-based staleness check accepted this cache; the content
        // hash in the header must reject it.
        let g1 = grid();
        let g2 = rs_graph::weights::reweight(
            &rs_graph::gen::grid2d(9, 9),
            rs_graph::WeightModel::paper_weighted(),
            99, // different weight seed, same topology
        );
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_ne!(g1.content_hash(), g2.content_hash());

        let cfg = PreprocessConfig::new(1, 8);
        let path = std::env::temp_dir().join(format!(
            "rs_hash_cache_{}_{:p}.bin",
            std::process::id(),
            &g1
        ));
        std::fs::remove_file(&path).ok();

        let pre1 = resolve_preprocessed(&g1, &cfg, Some(&path));
        assert_eq!(pre1.input_hash, g1.content_hash());
        assert_eq!(Preprocessed::load(&path).unwrap().input_hash, g1.content_hash());

        // Mutated graph, same shape: must rebuild (and refresh the file).
        let pre2 = resolve_preprocessed(&g2, &cfg, Some(&path));
        assert_eq!(pre2.input_hash, g2.content_hash(), "stale cache served for mutated graph");
        assert_eq!(Preprocessed::load(&path).unwrap().input_hash, g2.content_hash());
        let direct =
            SolverBuilder::new(&g2).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        assert_eq!(pre2.solve(5).dist, direct.solve(5).dist);

        // Unchanged graph: served from cache (hash matches).
        let pre1_again = resolve_preprocessed(&g2, &cfg, Some(&path));
        assert_eq!(pre1_again.input_hash, g2.content_hash());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn preprocess_cached_roundtrip() {
        let g = grid();
        let cfg = PreprocessConfig::new(2, 10);
        let path = std::env::temp_dir().join(format!(
            "rs_solver_cache_{}_{:p}.bin",
            std::process::id(),
            &g
        ));
        std::fs::remove_file(&path).ok();

        // First build: cache miss — builds and persists.
        let first = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert!(path.exists(), "cache file must be written on a miss");
        let expect = first.solve(5).dist;

        // Second build: served from the cache, identical results.
        let cached = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert!(cached.name().contains("preprocessed"));
        assert_eq!(cached.solve(5).dist, expect);

        // The cached file round-trips the full preprocessing.
        let loaded = Preprocessed::load(&path).unwrap();
        assert_eq!(loaded.config, cfg);
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());

        // Stale parameters are rebuilt (and the file refreshed), not
        // silently reused.
        let other = PreprocessConfig::new(1, 6);
        let rebuilt = SolverBuilder::new(&g)
            .preprocess_cached(&path, other)
            .radius_stepping_solver_from_algorithm();
        assert_eq!(rebuilt.solve(5).dist, expect, "distances never depend on the cache");
        assert_eq!(Preprocessed::load(&path).unwrap().config, other, "file refreshed");

        // Garbage in the cache degrades to a rebuild, never an error.
        std::fs::write(&path, b"definitely not a preprocessing").unwrap();
        let recovered = SolverBuilder::new(&g)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        assert_eq!(recovered.solve(5).dist, expect);

        // A cache written for a different graph (here: different edge
        // count) is rejected and rebuilt, not reused.
        let other_graph =
            rs_graph::weights::reweight(&rs_graph::gen::path(81), WeightModel::paper_weighted(), 2);
        assert_eq!(other_graph.num_vertices(), g.num_vertices(), "same n, different m");
        let cross = SolverBuilder::new(&other_graph)
            .preprocess_cached(&path, cfg)
            .radius_stepping_solver_from_algorithm();
        let direct = SolverBuilder::new(&other_graph)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        assert_eq!(cross.solve(5).dist, direct.solve(5).dist, "stale-graph cache must rebuild");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unreachable_goal_terminates() {
        let mut b = rs_graph::EdgeListBuilder::new(4);
        b.add_edge(0, 1, 3);
        let g = b.build();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let out = solver.solve_to_goal(0, 3);
        assert_eq!(out.dist[3], INF);
    }

    #[test]
    fn one_to_many_settles_every_goal_in_one_solve() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Constant(1_500));
        let full = solver.solve(0);
        let goals = [80u32, 3, 44, 3]; // duplicates + arbitrary order
        let mut scratch = SolverScratch::new();
        let resp = solver.execute(&Query::one_to_many(0, goals), &mut scratch);
        assert_eq!(scratch.solves(), 1, "k goals must cost exactly one solve");
        assert_eq!(
            resp.goal_distances(),
            goals.iter().map(|&t| Some(full.dist[t as usize])).collect::<Vec<_>>(),
            "per-goal distances exact, in requested order (duplicates answered)"
        );
        for (v, (&b, &f)) in resp.dist().iter().zip(&full.dist).enumerate() {
            assert!(b >= f, "vertex {v}: goal-bounded entries are upper bounds");
        }
        // An empty goal set is trivially satisfied: source only.
        let trivial = solver.execute(&Query::one_to_many(7, []), &mut scratch);
        assert_eq!(trivial.dist()[7], 0);
        assert!(trivial.goal_distances().is_empty());
        assert_eq!(trivial.stats().settled, 1, "nothing beyond the source settles");
    }

    #[test]
    fn many_to_many_builds_the_distance_table() {
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let sources = [0u32, 40, 80];
        let goals = [3u32, 77];
        let resp = solver.execute(&Query::many_to_many(sources, goals), &mut SolverScratch::new());
        assert_eq!(resp.rows().len(), sources.len());
        let table = resp.distance_table();
        for (i, &s) in sources.iter().enumerate() {
            let full = solver.solve(s);
            for (j, &t) in goals.iter().enumerate() {
                assert_eq!(table[i][j], Some(full.dist[t as usize]), "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn batch_dedup_canonicalises_goal_sets() {
        let queries = [
            Query::one_to_many(0, [3, 7]),
            Query::one_to_many(0, [7, 3]),    // permuted: same slot
            Query::one_to_many(0, [7, 3, 7]), // duplicated goal: same slot
            Query::one_to_many(0, [7]),       // different set: own slot
            Query::many_to_many([1, 2], [9, 4]),
            Query::many_to_many([1, 2], [4, 9]), // permuted goals: same slot
            Query::many_to_many([2, 1], [4, 9]), // source order is row order: own slot
        ];
        let batch = QueryBatch::new(&queries);
        assert_eq!(batch.unique_queries().len(), 4);
        assert_eq!(batch.deduplicated(), 3);
        // Delivered responses keep their *requested* query key.
        let g = grid();
        let solver =
            SolverBuilder::new(&g).radius_stepping_solver(EngineKind::Frontier, Radii::Zero);
        let outcome = QueryBatch::new(&queries).execute(&solver);
        for (resp, q) in outcome.responses.iter().zip(&queries) {
            assert_eq!(&resp.query, q, "dedup must not rewrite the requested goal order");
        }
        assert_eq!(outcome.responses[1].goal_distances()[0], {
            let d = solver.solve(0).dist[7];
            Some(d)
        });
        assert_eq!(outcome.stats.one_to_many, 4);
        assert_eq!(outcome.stats.many_to_many, 3);
        // 2 one-to-many uniques (1 row each) + 2 table uniques (2 rows
        // each): the 3 deduplicated requests cost nothing.
        assert_eq!(outcome.stats.executed_solves, 2 + 2 * 2);
    }

    #[test]
    fn streaming_batch_matches_materialised_execution() {
        let g = grid();
        let solver = SolverBuilder::new(&g)
            .radius_stepping_solver(EngineKind::Frontier, Radii::Constant(900));
        let queries = [
            Query::point_to_point(0, 80).with_paths(),
            Query::single_source(5),
            Query::one_to_many(40, [0, 80, 13]),
            Query::point_to_point(0, 80).with_paths(), // dup
        ];
        let materialised = QueryBatch::new(&queries).execute(&solver);
        let mut streamed: Vec<Option<QueryResponse>> = vec![None; queries.len()];
        let stream_stats = QueryBatch::new(&queries).stream(&solver, |slot, resp| {
            streamed[slot] = Some(resp);
        });
        assert_eq!(stream_stats, materialised.stats);
        for (slot, resp) in streamed.into_iter().enumerate() {
            let resp = resp.expect("every slot delivered exactly once");
            assert_eq!(resp.query, materialised.responses[slot].query);
            assert_eq!(resp.dist(), materialised.responses[slot].dist(), "slot {slot}");
            assert_eq!(resp.goal_path(), materialised.responses[slot].goal_path(), "slot {slot}");
        }
    }
}
