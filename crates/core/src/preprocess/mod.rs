//! (k, ρ)-graph preprocessing (§4).
//!
//! [`Preprocessed::build`] runs a truncated Dijkstra from every vertex in
//! parallel (Lemma 4.2), derives the vertex radii `r(v) = r_ρ(v)`, selects
//! shortcut edges with the chosen heuristic, and merges them into the
//! graph (duplicate edges keep the minimum weight). The result satisfies
//! `r(v) ≤ r̄_k(v)` and `|B(v, r(v))| ≥ ρ` — the preconditions of
//! Theorems 3.2 and 3.3 — whenever every vertex can reach at least ρ
//! vertices, so each subsequent [`Preprocessed::sssp`] call takes at most
//! `⌈n/ρ⌉(1 + ⌈log₂ ρL⌉)` steps of at most `k + 2` substeps.
//!
//! For step-count experiments at very large ρ (where `n·ρ` shortcut edges
//! cannot be materialised — the paper's Tables 4–7 go to ρ = 10⁴ on
//! million-vertex graphs), use [`balls::compute_radii`] and run the engine
//! on the original graph: the step bound of Theorem 3.3 depends only on
//! the radii, not on the shortcuts (shortcuts bound the *substeps*).

pub mod balls;
pub mod dp;
pub mod expand;
pub mod greedy;

pub use balls::{ball_search, compute_radii, Ball, BallMember, BallScratch};
pub use dp::dp_shortcuts;
pub use expand::ShortcutExpander;
pub use greedy::{full_shortcuts, greedy_count, greedy_shortcuts};

use std::sync::Arc;

use rayon::prelude::*;

use rs_graph::builder::merge_edges;
use rs_graph::{CsrGraph, Dist, Edge, VertexId};

use crate::engine::{radius_stepping_with, EngineConfig, EngineKind};
use crate::landmarks::{Landmarks, DEFAULT_LANDMARKS};
use crate::radii::RadiiSpec;
use crate::stats::SsspResult;

/// Which shortcut-selection rule to use (§4.1–4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShortcutHeuristic {
    /// (1, ρ): direct shortcut to every ball member (§4.1). Up to `n·ρ`
    /// edges; the fewest-edges choice only when `k = 1`.
    Full,
    /// Source-to-(k·i+1)-hop-levels rule (§4.2.1).
    Greedy,
    /// Per-tree-optimal dynamic program (§4.2.2); the paper's recommended
    /// heuristic.
    #[default]
    Dp,
}

/// Preprocessing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocessConfig {
    /// Hop bound `k ≥ 1`: each step of the solver takes ≤ `k + 2` substeps.
    pub k: u32,
    /// Ball size ρ ≥ 1: the solver takes `O((n/ρ) log ρL)` steps.
    pub rho: usize,
    /// Shortcut heuristic.
    pub heuristic: ShortcutHeuristic,
}

impl PreprocessConfig {
    /// Config with the paper's default heuristic for the given `k`
    /// ((1,ρ)-Full when `k = 1`, DP otherwise).
    pub fn new(k: u32, rho: usize) -> Self {
        assert!(k >= 1 && rho >= 1);
        let heuristic = if k == 1 { ShortcutHeuristic::Full } else { ShortcutHeuristic::Dp };
        PreprocessConfig { k, rho, heuristic }
    }

    /// Overrides the heuristic.
    pub fn with_heuristic(mut self, h: ShortcutHeuristic) -> Self {
        self.heuristic = h;
        self
    }
}

/// Preprocessing outcome measurements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Shortcut edges proposed by the heuristic, summed over sources
    /// (before deduplication against existing edges) — the quantity
    /// Figures 3 and Tables 2–3 report as a fraction of `m`.
    pub raw_shortcuts: usize,
    /// Net new undirected edges after the min-weight merge.
    pub effective_new_edges: usize,
    /// Undirected edge count of the input graph.
    pub original_edges: usize,
    /// Total edges examined by all ball searches (Lemma 4.2 work measure).
    pub explored_edges: u64,
    /// Total ball memberships (≥ n·ρ; ties can push it higher).
    pub ball_members: u64,
}

impl PreprocessStats {
    /// `raw_shortcuts / original_edges`: the paper's "factors of additional
    /// edges".
    pub fn added_edge_factor(&self) -> f64 {
        self.raw_shortcuts as f64 / self.original_edges.max(1) as f64
    }
}

/// A graph prepared for radius stepping: shortcut-augmented topology plus
/// the vertex radii.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The (k, ρ)-graph: input plus shortcut edges.
    pub graph: CsrGraph,
    /// `r(v) = r_ρ(v)` (distance to the ρ-th closest vertex, counting `v`).
    pub radii: Vec<Dist>,
    /// Parameters used.
    pub config: PreprocessConfig,
    /// [`CsrGraph::content_hash`] of the *input* graph (pre-shortcut).
    /// Persisted in the cache header so `preprocess_cached` detects a
    /// mutated-but-same-size graph and rebuilds instead of serving stale
    /// shortcuts.
    pub input_hash: u64,
    /// Shortcut → input-edge expansion table: each proposed shortcut's
    /// ball-tree parent chain, recorded so path extraction can unroll
    /// shortcut hops into exact input-graph routes (see
    /// [`ShortcutExpander::expand_path`]). Shared (`Arc`) with every
    /// `QueryResponse` a preprocessed solver produces; persisted in the
    /// `RSP4` cache format.
    pub expander: Arc<ShortcutExpander>,
    /// ALT landmark table for goal-directed point-to-point queries:
    /// [`DEFAULT_LANDMARKS`] vertices elected by farthest-point traversal
    /// with their full distance fields (built on the augmented graph —
    /// shortcuts preserve distances, so the fields equal the input
    /// graph's). Persisted in the `RSP4` cache; `None` only for
    /// preprocessings loaded from partial states built elsewhere.
    pub landmarks: Option<Arc<Landmarks>>,
    /// Measurements.
    pub stats: PreprocessStats,
}

impl Preprocessed {
    /// Runs the full preprocessing phase over all sources in parallel.
    pub fn build(g: &CsrGraph, cfg: &PreprocessConfig) -> Preprocessed {
        let (radii, shortcuts, expander, stats) = preprocess_parts(g, cfg, true);
        let graph = merge_edges(g, &shortcuts);
        let effective = graph.num_edges() - g.num_edges();
        let landmarks = Arc::new(Landmarks::build(&graph, DEFAULT_LANDMARKS));
        Preprocessed {
            graph,
            radii,
            config: *cfg,
            input_hash: g.content_hash(),
            expander: Arc::new(expander),
            landmarks: Some(landmarks),
            stats: PreprocessStats { effective_new_edges: effective, ..stats },
        }
    }

    /// Solves SSSP from `source` on the preprocessed graph (frontier
    /// engine).
    pub fn sssp(&self, source: VertexId) -> SsspResult {
        self.sssp_with(source, EngineKind::Frontier, EngineConfig::default())
    }

    /// Solves SSSP with an explicit engine/config.
    pub fn sssp_with(
        &self,
        source: VertexId,
        kind: EngineKind,
        config: EngineConfig<'_>,
    ) -> SsspResult {
        radius_stepping_with(&self.graph, &RadiiSpec::PerVertex(&self.radii), source, kind, config)
    }

    /// Persists the preprocessing (augmented graph + radii + parameters) so
    /// the `O(m log n + nρ²)`-work phase is paid once per graph, not once
    /// per process.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        // "RSP4": format 4 added the ALT landmark table (format 3 the
        // shortcut expansion chains, format 2 the input-graph content
        // hash). Older files ("RSPP", "RSP2", "RSP3") fail to load and are
        // transparently rebuilt.
        w.write_all(b"RSP4")?;
        w.write_all(&self.input_hash.to_le_bytes())?;
        w.write_all(&self.config.k.to_le_bytes())?;
        w.write_all(&(self.config.rho as u64).to_le_bytes())?;
        let h: u8 = match self.config.heuristic {
            ShortcutHeuristic::Full => 0,
            ShortcutHeuristic::Greedy => 1,
            ShortcutHeuristic::Dp => 2,
        };
        w.write_all(&[h])?;
        for s in [
            self.stats.raw_shortcuts as u64,
            self.stats.effective_new_edges as u64,
            self.stats.original_edges as u64,
            self.stats.explored_edges,
            self.stats.ball_members,
        ] {
            w.write_all(&s.to_le_bytes())?;
        }
        w.write_all(&(self.radii.len() as u64).to_le_bytes())?;
        for &r in &self.radii {
            w.write_all(&r.to_le_bytes())?;
        }
        w.write_all(&(self.expander.len() as u64).to_le_bytes())?;
        for (src, member, parent, dist) in self.expander.iter() {
            w.write_all(&src.to_le_bytes())?;
            w.write_all(&member.to_le_bytes())?;
            w.write_all(&parent.to_le_bytes())?;
            w.write_all(&dist.to_le_bytes())?;
        }
        // Landmark table: count, then per landmark its vertex id and full
        // distance field (row length = vertex count, implied by the radii
        // section above).
        let empty = Landmarks::from_parts(Vec::new(), Vec::new());
        let lm = self.landmarks.as_deref().unwrap_or(&empty);
        w.write_all(&(lm.len() as u32).to_le_bytes())?;
        for (l, &id) in lm.ids().iter().enumerate() {
            w.write_all(&id.to_le_bytes())?;
            for &d in lm.field(l) {
                w.write_all(&d.to_le_bytes())?;
            }
        }
        rs_graph::io::write_binary_to(&self.graph, &mut w)?;
        w.flush()
    }

    /// Loads a preprocessing written by [`Preprocessed::save`].
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Preprocessed> {
        use std::io::Read;
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"RSP4" {
            return Err(bad("not a saved preprocessing (or an old format)"));
        }
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let input_hash = u64::from_le_bytes(b8);
        r.read_exact(&mut b4)?;
        let k = u32::from_le_bytes(b4);
        r.read_exact(&mut b8)?;
        let rho = u64::from_le_bytes(b8) as usize;
        let mut hb = [0u8; 1];
        r.read_exact(&mut hb)?;
        let heuristic = match hb[0] {
            0 => ShortcutHeuristic::Full,
            1 => ShortcutHeuristic::Greedy,
            2 => ShortcutHeuristic::Dp,
            _ => return Err(bad("unknown heuristic tag")),
        };
        let mut nums = [0u64; 5];
        for v in &mut nums {
            r.read_exact(&mut b8)?;
            *v = u64::from_le_bytes(b8);
        }
        r.read_exact(&mut b8)?;
        let n = u64::from_le_bytes(b8) as usize;
        let mut radii = Vec::with_capacity(n);
        for _ in 0..n {
            r.read_exact(&mut b8)?;
            radii.push(u64::from_le_bytes(b8));
        }
        r.read_exact(&mut b8)?;
        let links = u64::from_le_bytes(b8) as usize;
        let mut expander = ShortcutExpander::new();
        for _ in 0..links {
            let mut ids = [[0u8; 4]; 3];
            for id in &mut ids {
                r.read_exact(id)?;
            }
            r.read_exact(&mut b8)?;
            expander.insert(
                u32::from_le_bytes(ids[0]),
                u32::from_le_bytes(ids[1]),
                u32::from_le_bytes(ids[2]),
                u64::from_le_bytes(b8),
            );
        }
        r.read_exact(&mut b4)?;
        let lm_count = u32::from_le_bytes(b4) as usize;
        let mut lm_ids = Vec::with_capacity(lm_count);
        let mut lm_fields = Vec::with_capacity(lm_count);
        for _ in 0..lm_count {
            r.read_exact(&mut b4)?;
            lm_ids.push(u32::from_le_bytes(b4));
            let mut field = Vec::with_capacity(n);
            for _ in 0..n {
                r.read_exact(&mut b8)?;
                field.push(u64::from_le_bytes(b8));
            }
            lm_fields.push(field);
        }
        let landmarks = Arc::new(Landmarks::from_parts(lm_ids, lm_fields));
        let graph = rs_graph::io::read_binary_from(&mut r)?;
        if graph.num_vertices() != n {
            return Err(bad("radii length does not match the embedded graph"));
        }
        Ok(Preprocessed {
            graph,
            radii,
            config: PreprocessConfig { k, rho, heuristic },
            input_hash,
            expander: Arc::new(expander),
            landmarks: Some(landmarks),
            stats: PreprocessStats {
                raw_shortcuts: nums[0] as usize,
                effective_new_edges: nums[1] as usize,
                original_edges: nums[2] as usize,
                explored_edges: nums[3],
                ball_members: nums[4],
            },
        })
    }
}

/// Shared worker: balls → (radii, shortcut list, stats) without building
/// the merged graph (exposed for experiments that only need counts; the
/// expansion chains are skipped — use [`Preprocessed::build`] for the
/// path-serving pipeline).
pub fn preprocess_edges(
    g: &CsrGraph,
    cfg: &PreprocessConfig,
) -> (Vec<Dist>, Vec<Edge>, PreprocessStats) {
    let (radii, shortcuts, _, stats) = preprocess_parts(g, cfg, false);
    (radii, shortcuts, stats)
}

/// One shortcut's ball-tree ancestry, recorded for expansion: for every
/// vertex on the tree path from a shortcut target up to the ball source,
/// `(vertex, tree parent, exact ball distance)`.
type ChainLinks = Vec<(VertexId, VertexId, Dist)>;

/// Ball-tree parent chains of every shortcut target in one ball — the raw
/// material of the [`ShortcutExpander`]. Chains overlap, so each link is
/// recorded once (walks stop at the first already-recorded ancestor).
fn ball_chains(ball: &Ball, shortcuts: &[Edge]) -> ChainLinks {
    if shortcuts.is_empty() {
        return Vec::new();
    }
    let info: std::collections::HashMap<VertexId, (VertexId, Dist)> =
        ball.members.iter().map(|m| (m.v, (m.parent, m.dist))).collect();
    let mut recorded: std::collections::HashMap<VertexId, (VertexId, Dist)> =
        std::collections::HashMap::new();
    for &(_, target, _) in shortcuts {
        let mut cur = target;
        while cur != ball.source {
            if recorded.contains_key(&cur) {
                break; // the rest of this chain is already recorded
            }
            let (parent, dist) = info[&cur];
            recorded.insert(cur, (parent, dist));
            cur = parent;
        }
    }
    recorded.into_iter().map(|(v, (p, d))| (v, p, d)).collect()
}

/// The full per-source pass: balls → (radii, shortcut list, expansion
/// chains, stats). Chain recording costs O(total chain length) and is
/// gated so count-only experiments skip it.
fn preprocess_parts(
    g: &CsrGraph,
    cfg: &PreprocessConfig,
    record_chains: bool,
) -> (Vec<Dist>, Vec<Edge>, ShortcutExpander, PreprocessStats) {
    let ws = g.weight_sorted();
    let n = g.num_vertices();
    let per_source: Vec<(Dist, Vec<Edge>, ChainLinks, u64, u64)> = (0..n as VertexId)
        .into_par_iter()
        .map_init(
            || BallScratch::new(n),
            |scratch, v| {
                let ball = ball_search(&ws, v, cfg.rho, cfg.rho, scratch);
                let edges = match cfg.heuristic {
                    ShortcutHeuristic::Full => full_shortcuts(&ball),
                    ShortcutHeuristic::Greedy => greedy_shortcuts(&ball, cfg.k),
                    ShortcutHeuristic::Dp => dp_shortcuts(&ball, cfg.k),
                };
                let chains = if record_chains { ball_chains(&ball, &edges) } else { Vec::new() };
                (ball.radius, edges, chains, ball.explored_edges, ball.members.len() as u64)
            },
        )
        .collect();

    let mut radii = Vec::with_capacity(n);
    let mut shortcuts = Vec::new();
    let mut expander = ShortcutExpander::new();
    let mut stats = PreprocessStats { original_edges: g.num_edges(), ..Default::default() };
    for (source, (radius, edges, chains, explored, members)) in per_source.into_iter().enumerate() {
        radii.push(radius);
        stats.raw_shortcuts += edges.len();
        stats.explored_edges += explored;
        stats.ball_members += members;
        shortcuts.extend(edges);
        for (v, parent, dist) in chains {
            expander.insert(source as VertexId, v, parent, dist);
        }
    }
    (radii, shortcuts, expander, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_baselines::dijkstra_default;
    use rs_graph::{gen, weights, WeightModel, INF};

    fn weighted_grid() -> CsrGraph {
        weights::reweight(&gen::grid2d(10, 10), WeightModel::paper_weighted(), 11)
    }

    #[test]
    fn build_preserves_distances() {
        let g = weighted_grid();
        for cfg in [
            PreprocessConfig::new(1, 8),
            PreprocessConfig::new(3, 16),
            PreprocessConfig::new(3, 16).with_heuristic(ShortcutHeuristic::Greedy),
        ] {
            let pre = Preprocessed::build(&g, &cfg);
            pre.graph.check_invariants().unwrap();
            for s in [0u32, 37, 99] {
                assert_eq!(
                    dijkstra_default(&pre.graph, s),
                    dijkstra_default(&g, s),
                    "shortcuts must not change distances ({cfg:?})"
                );
            }
        }
    }

    #[test]
    fn sssp_matches_dijkstra_and_respects_substep_bound() {
        let g = weighted_grid();
        for (k, rho) in [(1u32, 4usize), (1, 16), (2, 10), (3, 25), (4, 50)] {
            let pre = Preprocessed::build(&g, &PreprocessConfig::new(k, rho));
            for s in [0u32, 55] {
                let out = pre.sssp_with(s, EngineKind::Frontier, EngineConfig::with_trace());
                assert_eq!(out.dist, dijkstra_default(&g, s));
                assert!(
                    out.stats.max_substeps_in_step <= (k as usize) + 2,
                    "Theorem 3.2 violated: {} substeps with k={k}",
                    out.stats.max_substeps_in_step
                );
            }
        }
    }

    #[test]
    fn step_bound_theorem_holds() {
        // Theorem 3.3: steps ≤ ⌈n/ρ⌉ (1 + ⌈log₂ ρL⌉).
        let g = weighted_grid();
        let n = g.num_vertices();
        for rho in [2usize, 8, 32] {
            let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, rho));
            let bound = crate::verify::step_bound(n, rho, pre.graph.max_weight() as u64);
            let out = pre.sssp(0);
            assert!(
                out.stats.steps <= bound,
                "steps {} > bound {bound} at rho={rho}",
                out.stats.steps
            );
        }
    }

    #[test]
    fn dp_adds_no_more_than_greedy_globally() {
        let g = gen::scale_free(300, 4, 2);
        let base = PreprocessConfig::new(3, 30);
        let (_, _, dp) = preprocess_edges(&g, &base.with_heuristic(ShortcutHeuristic::Dp));
        let (_, _, gr) = preprocess_edges(&g, &base.with_heuristic(ShortcutHeuristic::Greedy));
        assert!(dp.raw_shortcuts <= gr.raw_shortcuts);
        assert!(dp.added_edge_factor() <= gr.added_edge_factor());
    }

    #[test]
    fn radii_independent_of_heuristic() {
        let g = weighted_grid();
        let base = PreprocessConfig::new(2, 12);
        let (r1, _, _) = preprocess_edges(&g, &base.with_heuristic(ShortcutHeuristic::Full));
        let (r2, _, _) = preprocess_edges(&g, &base.with_heuristic(ShortcutHeuristic::Dp));
        assert_eq!(r1, r2);
    }

    #[test]
    fn full_and_k1_dp_produce_same_effective_graph() {
        let g = weighted_grid();
        let full = Preprocessed::build(&g, &PreprocessConfig::new(1, 10));
        let dp = Preprocessed::build(
            &g,
            &PreprocessConfig { k: 1, rho: 10, heuristic: ShortcutHeuristic::Dp },
        );
        assert_eq!(full.graph, dp.graph, "hop-1 members dedup to the same graph");
    }

    #[test]
    fn save_load_roundtrip() {
        let g = weighted_grid();
        let pre = Preprocessed::build(
            &g,
            &PreprocessConfig::new(2, 12).with_heuristic(ShortcutHeuristic::Dp),
        );
        let path = std::env::temp_dir().join(format!("rs_pre_{}.bin", std::process::id()));
        pre.save(&path).unwrap();
        let loaded = Preprocessed::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.graph, pre.graph);
        assert_eq!(loaded.radii, pre.radii);
        assert_eq!(loaded.config, pre.config);
        assert_eq!(loaded.stats, pre.stats);
        assert_eq!(loaded.expander, pre.expander, "expansion chains round-trip");
        assert_eq!(loaded.landmarks, pre.landmarks, "landmark table round-trips");
        assert_eq!(
            pre.landmarks.as_ref().map(|lm| lm.len()),
            Some(DEFAULT_LANDMARKS),
            "build elects the default landmark count"
        );
        assert!(!pre.expander.is_empty(), "a (2,12) grid preprocessing records chains");
        assert_eq!(loaded.input_hash, g.content_hash(), "header records the input hash");
        assert_eq!(loaded.sssp(9).dist, pre.sssp(9).dist);
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("rs_pre_bad_{}.bin", std::process::id()));
        std::fs::write(&path, b"WRONG").unwrap();
        assert!(Preprocessed::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn small_graph_radius_inf_still_correct() {
        // ρ larger than the graph: radii become INF, algorithm degenerates
        // to Bellman-Ford but stays correct.
        let g = weights::reweight(&gen::cycle(6), WeightModel::paper_weighted(), 3);
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 50));
        assert!(pre.radii.iter().all(|&r| r == INF));
        let out = pre.sssp(2);
        assert_eq!(out.dist, dijkstra_default(&g, 2));
        assert_eq!(out.stats.steps, 1);
    }
}
