//! The dynamic-programming shortcut heuristic (§4.2.2).
//!
//! Per shortest-path tree, computes the minimum number of source-rooted
//! shortcuts (Claim 4.3: the best shortcut always starts at the source)
//! that bring every member within `k` hops, via the paper's recurrence
//!
//! ```text
//! F(u, t) = 1 + Σ_{w ∈ children(u)} F(w, 1)                     if t = k
//! F(u, t) = min(1 + Σ F(w, 1),  Σ F(w, t+1))                    if t < k
//! ```
//!
//! where `t` is the hop depth of `u`'s parent. Solved bottom-up in `O(kρ)`
//! per tree (members arrive in pop order, so reverse order is a valid
//! topological order), then the chosen edges are recovered top-down.
//! Optimal per tree, not globally (the paper leaves global optimality
//! open); §5.2 shows it shines on hub-heavy graphs.

use std::collections::HashMap;

use rs_graph::{Edge, VertexId};

use super::balls::Ball;
use super::greedy::dist_as_weight;

/// Shortcut edges the DP heuristic selects for one ball.
pub fn dp_shortcuts(ball: &Ball, k: u32) -> Vec<Edge> {
    assert!(k >= 1);
    let b = ball.members.len();
    if b <= 1 {
        return Vec::new();
    }
    let k = k as usize;

    // Tree structure over member indices.
    let idx_of: HashMap<VertexId, u32> =
        ball.members.iter().enumerate().map(|(i, m)| (m.v, i as u32)).collect();
    let mut child_off = vec![0u32; b + 1];
    for m in ball.members.iter().skip(1) {
        child_off[idx_of[&m.parent] as usize + 1] += 1;
    }
    for i in 0..b {
        child_off[i + 1] += child_off[i];
    }
    let mut children = vec![0u32; b - 1];
    let mut cursor = child_off.clone();
    for (i, m) in ball.members.iter().enumerate().skip(1) {
        let p = idx_of[&m.parent] as usize;
        children[cursor[p] as usize] = i as u32;
        cursor[p] += 1;
    }
    let kids = |i: usize| &children[child_off[i] as usize..child_off[i + 1] as usize];

    // Bottom-up DP. f[i][t] for t in 0..=k, flattened.
    let stride = k + 1;
    let mut f = vec![0u32; b * stride];
    let mut shortcut_cost = vec![0u32; b];
    for i in (1..b).rev() {
        let sc = 1 + kids(i).iter().map(|&c| f[c as usize * stride + 1]).sum::<u32>();
        shortcut_cost[i] = sc;
        f[i * stride + k] = sc;
        for t in 0..k {
            let keep: u32 = kids(i).iter().map(|&c| f[c as usize * stride + t + 1]).sum();
            f[i * stride + t] = sc.min(keep);
        }
    }

    // Top-down recovery: shortcut node i whenever the DP chose it.
    let mut out = Vec::new();
    let mut stack: Vec<(u32, usize)> = kids(0).iter().map(|&c| (c, 0)).collect();
    while let Some((i, t)) = stack.pop() {
        let i = i as usize;
        let keep: u32 = if t < k {
            kids(i).iter().map(|&c| f[c as usize * stride + t + 1]).sum()
        } else {
            u32::MAX
        };
        let take_shortcut = t == k || shortcut_cost[i] <= keep;
        let child_t = if take_shortcut {
            let m = &ball.members[i];
            out.push((ball.source, m.v, dist_as_weight(m.dist)));
            1
        } else {
            t + 1
        };
        for &c in kids(i) {
            stack.push((c, child_t));
        }
    }
    out
}

/// The DP optimum (edge count) without materialising the edges; equals
/// `Σ_{u ∈ children(source)} F(u, 0)`.
pub fn dp_cost(ball: &Ball, k: u32) -> usize {
    dp_shortcuts(ball, k).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::balls::{ball_search, Ball, BallMember, BallScratch};
    use crate::preprocess::greedy::{greedy_shortcuts, hops_with_shortcuts};
    use rs_graph::{gen, weights, WeightModel};

    fn ball_of(g: &rs_graph::CsrGraph, v: u32, rho: usize) -> Ball {
        let ws = g.weight_sorted();
        let mut scratch = BallScratch::new(g.num_vertices());
        ball_search(&ws, v, rho, rho, &mut scratch)
    }

    /// Hand-built ball: chain of k vertices then `leaves` children at depth
    /// k+1 — the §4.2.1 example where greedy adds `leaves` edges but one
    /// suffices.
    fn chain_with_leaves(k: u32, leaves: u32) -> Ball {
        let mut members = vec![BallMember { v: 0, dist: 0, hops: 0, parent: 0 }];
        for i in 1..=k {
            members.push(BallMember { v: i, dist: i as u64, hops: i, parent: i - 1 });
        }
        for j in 0..leaves {
            members.push(BallMember { v: k + 1 + j, dist: (k + 1) as u64, hops: k + 1, parent: k });
        }
        Ball { source: 0, members, radius: (k + 1) as u64, explored_edges: 0 }
    }

    #[test]
    fn paper_chain_example_dp_beats_greedy() {
        let k = 3;
        let ball = chain_with_leaves(k, 10);
        let greedy = greedy_shortcuts(&ball, k);
        let dp = dp_shortcuts(&ball, k);
        assert_eq!(greedy.len(), 10, "greedy shortcuts every depth-(k+1) leaf");
        assert_eq!(dp.len(), 1, "one shortcut into the chain suffices");
        // Any chain node at depth ≥ 2 works (leaves land at 1 + (k+1-d) ≤ k
        // hops); both choices cost 1 and the DP may pick either.
        assert!((2..=k).contains(&dp[0].1));
        let hops = hops_with_shortcuts(&ball, &dp.iter().map(|e| e.1).collect::<Vec<_>>());
        assert!(hops.iter().all(|&h| h <= k));
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        for (g, rho) in [
            (weights::reweight(&gen::grid2d(9, 9), WeightModel::paper_weighted(), 4), 24usize),
            (gen::scale_free(300, 4, 9), 40),
            (gen::road_network(12, 3), 30),
        ] {
            for k in 1..=4u32 {
                for src in [0u32, 11, 57] {
                    let ball = ball_of(&g, src, rho);
                    let dp = dp_shortcuts(&ball, k);
                    let greedy = greedy_shortcuts(&ball, k);
                    assert!(
                        dp.len() <= greedy.len(),
                        "DP ({}) worse than greedy ({}) at k={k} src={src}",
                        dp.len(),
                        greedy.len()
                    );
                }
            }
        }
    }

    #[test]
    fn dp_result_is_feasible() {
        for k in 1..=4u32 {
            for src in [0u32, 33] {
                let g = gen::road_network(10, 8);
                let ball = ball_of(&g, src, 25);
                let dp = dp_shortcuts(&ball, k);
                let hops = hops_with_shortcuts(&ball, &dp.iter().map(|e| e.1).collect::<Vec<_>>());
                assert!(hops.iter().all(|&h| h <= k), "DP k={k} infeasible");
            }
        }
    }

    #[test]
    fn dp_on_path_is_exact() {
        // Path ball of depth 9, k = 3: optimal is shortcuts to depths 4 and
        // 7 (or equivalent) = 2 edges; DP must find exactly 2.
        let g = gen::path(30);
        let ball = ball_of(&g, 0, 10);
        assert_eq!(dp_shortcuts(&ball, 3).len(), 2);
        // k = 4: depth 9 needs ⌈(9-4)/4⌉ = 2?  shortcut at 5 -> depth 9
        // becomes 5 hops; still > 4, so 2 shortcuts. k=8: one.
        assert_eq!(dp_shortcuts(&ball, 8).len(), 1);
        assert_eq!(dp_shortcuts(&ball, 9).len(), 0);
    }

    #[test]
    fn k1_dp_equals_deep_member_count() {
        let g = weights::reweight(&gen::grid2d(7, 7), WeightModel::paper_weighted(), 2);
        let ball = ball_of(&g, 24, 20);
        let deep = ball.members.iter().filter(|m| m.hops >= 2).count();
        assert_eq!(dp_shortcuts(&ball, 1).len(), deep);
    }

    #[test]
    fn trivial_balls() {
        let g = gen::path(3);
        let ball = ball_of(&g, 0, 1);
        assert!(dp_shortcuts(&ball, 2).is_empty());
    }
}
