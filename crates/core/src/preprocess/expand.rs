//! Exact input-graph expansion of shortcut edges.
//!
//! The (k, ρ)-preprocessing adds *shortcut* edges `source → member` whose
//! weight is the exact ball distance — distance-preserving, but a path
//! extracted on the augmented graph may ride hops that are not edges of
//! the input graph. Every shortcut follows the ball's hop-minimal
//! shortest-path tree, so the preprocessing records, per ball source, the
//! tree-parent chain of every shortcut target ([`ShortcutExpander`]); at
//! path-extraction time each shortcut hop unrolls into its chain of
//! *input* edges in O(1) per output hop, turning a shortcut-augmented
//! route into an input-graph route of identical total weight.
//!
//! Chain edges are edges of the input graph by construction (the ball
//! search runs before shortcuts are merged), so expansion never recurses
//! through another shortcut — one table walk per hop, O(output hops)
//! total.

use std::collections::HashMap;

use rs_graph::{Dist, VertexId};

/// One recorded chain link: for key `(source, member)` the value is
/// `(tree parent of member in source's ball, exact ball distance)`.
type Chain = HashMap<(VertexId, VertexId), (VertexId, Dist)>;

/// The shortcut → input-edge expansion table built during preprocessing
/// and persisted in the `RSP3` cache format. Attached (behind an `Arc`)
/// to every `QueryResponse` a preprocessed solver produces, so
/// `goal_path()` and friends return input-graph routes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShortcutExpander {
    chains: Chain,
}

impl ShortcutExpander {
    /// An empty expander (expands every path to itself).
    pub fn new() -> Self {
        ShortcutExpander::default()
    }

    /// Records one chain link (used by the preprocessing pass and the
    /// cache loader).
    pub fn insert(&mut self, source: VertexId, member: VertexId, parent: VertexId, dist: Dist) {
        self.chains.insert((source, member), (parent, dist));
    }

    /// Number of recorded chain links.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when no shortcut needed a chain (e.g. ρ so small that every
    /// proposed shortcut duplicated an input edge).
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Iterates the recorded links as `(source, member, parent, dist)`
    /// (unspecified order; used by the cache writer).
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, VertexId, Dist)> + '_ {
        self.chains.iter().map(|(&(s, m), &(p, d))| (s, m, p, d))
    }

    /// Expands a path on the shortcut-augmented graph into a path on the
    /// input graph with the same endpoints and total weight. `dist` is the
    /// solve's distance array (consecutive path vertices telescope, so
    /// `dist[b] - dist[a]` is the weight of the augmented hop actually
    /// used). Hops that are input edges pass through unchanged; shortcut
    /// hops unroll into their recorded tree chain, in either direction
    /// (the graphs are symmetric). Costs O(output hops).
    pub fn expand_path(&self, path: &[VertexId], dist: &[Dist]) -> Vec<VertexId> {
        if path.len() < 2 || self.chains.is_empty() {
            return path.to_vec();
        }
        let mut out = Vec::with_capacity(path.len());
        out.push(path[0]);
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let wt = dist[b as usize] - dist[a as usize];
            self.expand_hop(a, b, wt, &mut out);
        }
        out
    }

    /// Appends the input-graph expansion of hop `a → b` of weight `wt`
    /// (everything after `a`, ending with `b`).
    fn expand_hop(&self, a: VertexId, b: VertexId, wt: Dist, out: &mut Vec<VertexId>) {
        // A hop matches a recorded shortcut only when the weights agree —
        // if an input edge of the same endpoints won the min-weight merge,
        // the recorded ball distance is strictly larger and the hop passes
        // through as the input edge it is.
        if self.chains.get(&(a, b)).is_some_and(|&(_, d)| d == wt) {
            // Forward: walk b's parent chain up to a, then reverse.
            let start = out.len();
            let mut cur = b;
            while cur != a {
                out.push(cur);
                cur = self.chains[&(a, cur)].0;
            }
            out[start..].reverse();
        } else if self.chains.get(&(b, a)).is_some_and(|&(_, d)| d == wt) {
            // Reverse traversal of a shortcut from b's ball: a's parent
            // chain toward b is already the forward a → b order.
            let mut cur = a;
            while cur != b {
                cur = self.chains[&(b, cur)].0;
                out.push(cur);
            }
        } else {
            out.push(b); // plain input edge
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0 -1- 1 -2- 2 -3- 3 with a shortcut 0→3 (weight 6) and
    /// 0→2 (weight 3): the ball tree of source 0.
    fn expander() -> ShortcutExpander {
        let mut e = ShortcutExpander::new();
        e.insert(0, 1, 0, 1);
        e.insert(0, 2, 1, 3);
        e.insert(0, 3, 2, 6);
        e
    }

    #[test]
    fn forward_shortcut_unrolls() {
        let e = expander();
        // Path 0 →(shortcut) 3 → 4 on the augmented graph.
        let dist = vec![0, u64::MAX, u64::MAX, 6, 8];
        assert_eq!(e.expand_path(&[0, 3, 4], &dist), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reverse_shortcut_unrolls() {
        let e = expander();
        // Path 3 →(shortcut, reversed) 0 on the augmented graph.
        let dist = vec![6, u64::MAX, u64::MAX, 0];
        assert_eq!(e.expand_path(&[3, 0], &dist), vec![3, 2, 1, 0]);
    }

    #[test]
    fn input_edges_pass_through() {
        let e = expander();
        // Weight 2 hop 1→2 is the input edge, not a shortcut (0's chain
        // records dist 3 for member 2, keyed to source 0 anyway).
        let dist = vec![u64::MAX, 0, 2];
        assert_eq!(e.expand_path(&[1, 2], &dist), vec![1, 2]);
    }

    #[test]
    fn weight_mismatch_is_an_input_edge() {
        let mut e = ShortcutExpander::new();
        e.insert(0, 2, 1, 5); // shortcut 0→2 proposed at weight 5...
        let dist = vec![0, u64::MAX, 3]; // ...but the hop used weight 3
        assert_eq!(e.expand_path(&[0, 2], &dist), vec![0, 2], "input edge won the merge");
    }

    #[test]
    fn trivial_paths_untouched() {
        let e = expander();
        assert_eq!(e.expand_path(&[7], &[]), vec![7]);
        assert!(ShortcutExpander::new().is_empty());
    }
}
