//! Truncated Dijkstra ball search (Lemma 4.2).
//!
//! For a source `v`, finds the ρ closest vertices (counting `v` itself),
//! continuing through distance ties — the deterministic variant of §5.1 —
//! while examining only the ρ *lightest* edges of each visited vertex,
//! which Lemma 4.2 shows is sufficient to reach the ρ closest. Each search
//! explores at most `O(ρ²)` edges (tight on the Figure-2 gadget).
//!
//! Besides distances, the search records hop counts and *hop-minimal*
//! parents (Dijkstra ordered lexicographically by `(dist, hops)`), giving
//! the shortest-path tree with fewest hops per vertex that the DP
//! heuristic of §4.2.2 requires.
//!
//! Searches from many sources run in parallel with per-worker scratch
//! (epoch-stamped arrays), so an n-source pass allocates `O(n)` per worker,
//! not `O(n²)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;

use rs_graph::{CsrGraph, Dist, VertexId, INF};

/// One vertex of a ball, in pop (distance, hops) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallMember {
    /// The vertex.
    pub v: VertexId,
    /// Exact distance from the ball's source.
    pub dist: Dist,
    /// Hop count of the hop-minimal shortest path from the source.
    pub hops: u32,
    /// Predecessor on that path (the source's parent is itself).
    pub parent: VertexId,
}

/// Result of one ball search.
#[derive(Debug, Clone)]
pub struct Ball {
    /// Source vertex.
    pub source: VertexId,
    /// Members in pop order; `members[0]` is the source itself.
    pub members: Vec<BallMember>,
    /// `r_ρ(source)`: distance of the ρ-th closest vertex (counting the
    /// source), or [`INF`] when fewer than ρ vertices are reachable.
    pub radius: Dist,
    /// Edges examined — the Lemma 4.2 work measure (Figure 2 experiment).
    pub explored_edges: u64,
}

/// Reusable per-worker state for ball searches.
pub struct BallScratch {
    dist: Vec<Dist>,
    hops: Vec<u32>,
    parent: Vec<VertexId>,
    stamp: Vec<u32>,
    done: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(Dist, u32, VertexId)>>,
}

impl BallScratch {
    /// Scratch for graphs of `n` vertices.
    pub fn new(n: usize) -> Self {
        BallScratch {
            dist: vec![0; n],
            hops: vec![0; n],
            parent: vec![0; n],
            stamp: vec![0; n],
            done: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.done.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
    }

    #[inline]
    fn reach(&mut self, v: VertexId, d: Dist, h: u32, p: VertexId) -> bool {
        let i = v as usize;
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.dist[i] = d;
            self.hops[i] = h;
            self.parent[i] = p;
            true
        } else if self.done[i] != self.epoch && (d, h) < (self.dist[i], self.hops[i]) {
            self.dist[i] = d;
            self.hops[i] = h;
            self.parent[i] = p;
            true
        } else {
            false
        }
    }
}

/// Runs one truncated Dijkstra from `source` on `g` (whose adjacency must
/// be weight-sorted, see [`CsrGraph::weight_sorted`]), visiting the ρ
/// closest vertices and everything tied at distance `r_ρ`, using only the
/// `edge_cap` lightest edges per vertex (the paper uses `edge_cap = ρ`).
pub fn ball_search(
    g: &CsrGraph,
    source: VertexId,
    rho: usize,
    edge_cap: usize,
    scratch: &mut BallScratch,
) -> Ball {
    assert!(rho >= 1, "a ball has at least its source");
    scratch.begin();
    let mut members: Vec<BallMember> = Vec::with_capacity(rho + 4);
    let mut radius: Dist = INF;
    let mut explored: u64 = 0;

    scratch.reach(source, 0, 0, source);
    scratch.heap.push(Reverse((0, 0, source)));

    while let Some(Reverse((d, h, v))) = scratch.heap.pop() {
        let i = v as usize;
        if scratch.done[i] == scratch.epoch || (d, h) != (scratch.dist[i], scratch.hops[i]) {
            continue; // stale heap entry
        }
        if members.len() >= rho && d > radius {
            break; // past the tie plateau at r_ρ
        }
        scratch.done[i] = scratch.epoch;
        members.push(BallMember { v, dist: d, hops: h, parent: scratch.parent[i] });
        if members.len() == rho {
            radius = d;
        }
        for (u, w) in g.edges(v).take(edge_cap) {
            explored += 1;
            if scratch.done[u as usize] == scratch.epoch {
                continue;
            }
            let (nd, nh) = (d + w as Dist, h + 1);
            if scratch.reach(u, nd, nh, v) {
                scratch.heap.push(Reverse((nd, nh, u)));
            }
        }
    }

    Ball { source, members, radius, explored_edges: explored }
}

/// Computes `r_ρ(v)` for every vertex, in parallel, without materialising
/// ball memberships — the `O(n)`-memory path the step-count experiments of
/// §5.3 need even at `ρ = 10^4`.
pub fn compute_radii(g: &CsrGraph, rho: usize) -> Vec<Dist> {
    let ws = g.weight_sorted();
    (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .map_init(
            || BallScratch::new(g.num_vertices()),
            |scratch, v| ball_search(&ws, v, rho, rho, scratch).radius,
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_baselines::dijkstra_default;
    use rs_graph::{gen, weights, WeightModel};

    /// Brute-force r_ρ: full Dijkstra, sort distances, take the ρ-th.
    fn brute_radius(g: &CsrGraph, v: VertexId, rho: usize) -> Dist {
        let mut d = dijkstra_default(g, v);
        d.sort_unstable();
        d.get(rho - 1).copied().unwrap_or(INF)
    }

    #[test]
    fn radius_matches_brute_force_weighted() {
        let g =
            weights::reweight(&gen::grid2d(7, 9), WeightModel::paper_weighted(), 3).weight_sorted();
        let mut scratch = BallScratch::new(g.num_vertices());
        for rho in [1usize, 2, 5, 16, 40] {
            for v in [0u32, 5, 31, 62] {
                let ball = ball_search(&g, v, rho, rho, &mut scratch);
                assert_eq!(ball.radius, brute_radius(&g, v, rho), "r_{rho}({v}) mismatch");
            }
        }
    }

    #[test]
    fn radius_matches_brute_force_scale_free() {
        let g = weights::reweight(&gen::scale_free(150, 3, 5), WeightModel::paper_weighted(), 7)
            .weight_sorted();
        let mut scratch = BallScratch::new(150);
        for rho in [2usize, 8, 25] {
            for v in [0u32, 10, 100, 149] {
                assert_eq!(
                    ball_search(&g, v, rho, rho, &mut scratch).radius,
                    brute_radius(&g, v, rho)
                );
            }
        }
    }

    #[test]
    fn rho_one_radius_is_zero() {
        // The source is its own closest vertex: r_1(v) = 0 (this is what
        // makes ρ = 1 collapse radius stepping into Dijkstra, §5.3).
        let g = gen::cycle(10);
        let mut scratch = BallScratch::new(10);
        let ball = ball_search(&g, 3, 1, 1, &mut scratch);
        assert_eq!(ball.radius, 0);
        assert_eq!(ball.members.len(), 1);
        assert_eq!(ball.members[0].v, 3);
    }

    #[test]
    fn ties_are_included() {
        // Unweighted star: every leaf is at distance 1. With ρ = 3 the
        // plateau at r_ρ = 1 must be fully included (§5.1's deterministic
        // variant).
        let g = gen::star(8);
        let mut scratch = BallScratch::new(8);
        let ball = ball_search(&g, 0, 3, 8, &mut scratch);
        assert_eq!(ball.radius, 1);
        assert_eq!(ball.members.len(), 8, "all 7 tied leaves included");
    }

    #[test]
    fn members_complete_below_radius() {
        // Every vertex strictly inside the radius must be a member even
        // with the ρ-lightest-edges cap.
        let g =
            weights::reweight(&gen::grid2d(6, 6), WeightModel::paper_weighted(), 9).weight_sorted();
        let mut scratch = BallScratch::new(36);
        for v in 0..36u32 {
            let rho = 10;
            let ball = ball_search(&g, v, rho, rho, &mut scratch);
            let exact = dijkstra_default(&g, v);
            let inside = exact.iter().filter(|&&d| d < ball.radius).count();
            let member_inside = ball.members.iter().filter(|m| m.dist < ball.radius).count();
            assert_eq!(member_inside, inside, "missing strict-interior member of ball({v})");
            assert!(ball.members.len() >= rho.min(36));
        }
    }

    #[test]
    fn parents_are_hop_minimal() {
        // Square with a heavy diagonal: 0-1-3 and 0-2-3 both length 2;
        // direct edge 0-3 weight 2 has 1 hop. Hop-minimal parent of 3 is 0.
        let mut b = rs_graph::EdgeListBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 2);
        let g = b.build().weight_sorted();
        let mut scratch = BallScratch::new(4);
        let ball = ball_search(&g, 0, 4, 4, &mut scratch);
        let m3 = ball.members.iter().find(|m| m.v == 3).unwrap();
        assert_eq!(m3.dist, 2);
        assert_eq!(m3.hops, 1, "prefers the 1-hop shortest path");
        assert_eq!(m3.parent, 0);
    }

    #[test]
    fn small_component_radius_inf() {
        let g = gen::path(3); // only 3 reachable vertices
        let mut scratch = BallScratch::new(3);
        let ball = ball_search(&g, 0, 5, 5, &mut scratch);
        assert_eq!(ball.radius, INF);
        assert_eq!(ball.members.len(), 3);
    }

    #[test]
    fn explored_edges_quadratic_on_fig2_gadget() {
        // Lemma 4.2's O(ρ²) bound is tight: on the Figure-2 gadget the
        // search must examine Θ(d²) edges to collect 3d vertices.
        let mut scratch_small;
        let mut ratio = Vec::new();
        for d in [8usize, 16, 32] {
            let g = gen::fig2_gadget(d, 3);
            scratch_small = BallScratch::new(g.num_vertices());
            let rho = 3 * d;
            let ball = ball_search(&g.weight_sorted(), 0, rho, rho, &mut scratch_small);
            assert_eq!(ball.members.len(), 3 * d);
            ratio.push(ball.explored_edges as f64 / (d * d) as f64);
        }
        // Θ(d²): the ratio explored/d² stays within a constant band.
        for r in &ratio {
            assert!((0.5..8.0).contains(r), "explored/d² = {r} outside Θ(d²) band");
        }
    }

    #[test]
    fn compute_radii_matches_per_source_search() {
        let g = weights::reweight(&gen::scale_free(80, 3, 1), WeightModel::paper_weighted(), 2);
        let radii = compute_radii(&g, 7);
        let ws = g.weight_sorted();
        let mut scratch = BallScratch::new(80);
        for v in 0..80u32 {
            assert_eq!(radii[v as usize], ball_search(&ws, v, 7, 7, &mut scratch).radius);
        }
    }
}
