//! The Greedy shortcut heuristic (§4.2.1).
//!
//! On the hop-minimal shortest-path tree of a ball, add an edge from the
//! source to every vertex at tree depth `k·i + 1` (for `i ≥ 1`). Every
//! member then lies within `k` hops: a vertex at depth `h > k` uses the
//! shortcut to its ancestor at depth `k·⌊(h-1)/k⌋ + 1 ≤ h`, landing at
//! `1 + ((h-1) mod k) ≤ k` hops. Simple, but §4.2.1's chain example (and
//! the webgraph results of §5.2) show it can add far more edges than
//! necessary — the DP heuristic is the refined alternative.

use rs_graph::{Edge, Weight};

use super::balls::Ball;

/// Shortcut edges `(source, v, d(source, v))` the Greedy rule adds for one
/// ball.
pub fn greedy_shortcuts(ball: &Ball, k: u32) -> Vec<Edge> {
    assert!(k >= 1);
    ball.members
        .iter()
        .filter(|m| m.hops > k && (m.hops - 1) % k == 0)
        .map(|m| (ball.source, m.v, dist_as_weight(m.dist)))
        .collect()
}

/// Number of edges [`greedy_shortcuts`] would add, without materialising
/// them (the Figure 3 / Table 2 measurement).
pub fn greedy_count(ball: &Ball, k: u32) -> usize {
    assert!(k >= 1);
    ball.members.iter().filter(|m| m.hops > k && (m.hops - 1) % k == 0).count()
}

/// The (1, ρ) construction: a direct shortcut to every ball member (§4.1).
/// Members at 1 hop already have an edge of exactly this weight (their
/// hop-minimal shortest path is the edge itself), so only deeper members
/// produce new edges after the builder's min-weight merge.
pub fn full_shortcuts(ball: &Ball) -> Vec<Edge> {
    ball.members
        .iter()
        .skip(1) // members[0] is the source
        .map(|m| (ball.source, m.v, dist_as_weight(m.dist)))
        .collect()
}

pub(crate) fn dist_as_weight(d: u64) -> Weight {
    Weight::try_from(d).expect("ball distance exceeds u32 — graph weights out of supported range")
}

/// Test/verification helper: hop depth of every member after adding
/// `shortcut_targets`, using only tree edges and shortcuts. Members are in
/// pop order, so parents precede children.
pub fn hops_with_shortcuts(ball: &Ball, shortcut_targets: &[rs_graph::VertexId]) -> Vec<u32> {
    use std::collections::HashMap;
    let idx_of: HashMap<u32, u32> =
        ball.members.iter().enumerate().map(|(i, m)| (m.v, i as u32)).collect();
    let shortcut: std::collections::HashSet<u32> = shortcut_targets.iter().copied().collect();
    let mut hops = vec![u32::MAX; ball.members.len()];
    hops[0] = 0;
    for (i, m) in ball.members.iter().enumerate().skip(1) {
        let via_parent = hops[idx_of[&m.parent] as usize].saturating_add(1);
        let via_shortcut = if shortcut.contains(&m.v) { 1 } else { u32::MAX };
        hops[i] = via_parent.min(via_shortcut);
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::balls::{ball_search, BallScratch};
    use rs_graph::{gen, weights, WeightModel};

    fn ball_of(g: &rs_graph::CsrGraph, v: u32, rho: usize) -> Ball {
        let ws = g.weight_sorted();
        let mut scratch = BallScratch::new(g.num_vertices());
        ball_search(&ws, v, rho, rho, &mut scratch)
    }

    #[test]
    fn path_ball_shortcut_levels() {
        // Path from vertex 0: members at hops 0..9 for rho = 10.
        let g = gen::path(30);
        let ball = ball_of(&g, 0, 10);
        let sc = greedy_shortcuts(&ball, 3);
        // Depths k·i + 1 = 4, 7 (members reach depth 9); i.e. vertices 4, 7.
        let targets: Vec<u32> = sc.iter().map(|e| e.1).collect();
        assert_eq!(targets, vec![4, 7]);
        // Each shortcut weight equals the exact distance.
        assert!(sc.iter().all(|&(s, v, w)| s == 0 && w == v));
    }

    #[test]
    fn all_members_within_k_hops_after_greedy() {
        for (g, rho) in [
            (weights::reweight(&gen::grid2d(8, 8), WeightModel::paper_weighted(), 3), 20usize),
            (gen::scale_free(200, 3, 5), 25),
            (gen::path(50), 12),
        ] {
            for k in 1..=4u32 {
                for src in [0u32, 7] {
                    let ball = ball_of(&g, src, rho);
                    let sc = greedy_shortcuts(&ball, k);
                    let targets: Vec<u32> = sc.iter().map(|e| e.1).collect();
                    let hops = hops_with_shortcuts(&ball, &targets);
                    assert!(
                        hops.iter().all(|&h| h <= k),
                        "greedy k={k} left a member beyond {k} hops"
                    );
                }
            }
        }
    }

    #[test]
    fn full_shortcuts_cover_every_member() {
        let g = weights::reweight(&gen::grid2d(6, 6), WeightModel::paper_weighted(), 1);
        let ball = ball_of(&g, 0, 12);
        let sc = full_shortcuts(&ball);
        assert_eq!(sc.len(), ball.members.len() - 1);
        let targets: Vec<u32> = sc.iter().map(|e| e.1).collect();
        let hops = hops_with_shortcuts(&ball, &targets);
        assert!(hops.iter().all(|&h| h <= 1), "(1,ρ): every member at one hop");
    }

    #[test]
    fn greedy_adds_nothing_when_ball_is_shallow() {
        // Star: every member is at 1 hop; greedy with any k adds nothing.
        let g = gen::star(20);
        let ball = ball_of(&g, 0, 10);
        for k in 1..=3 {
            assert!(greedy_shortcuts(&ball, k).is_empty());
        }
    }
}
