//! ALT landmark tables for goal-directed point-to-point search.
//!
//! ALT (A*, Landmarks, Triangle inequality — Goldberg & Harrelson, SODA
//! 2005) prunes a goal-bounded search with the lower bound
//! `h(v) = max_L |d(L, v) − d(L, t)|`: by the triangle inequality every
//! `s`–`t` path through `v` has length at least `d(s, v) + h(v)`, so
//! relaxations that cannot improve the goal's tentative distance are
//! skipped. On the undirected graphs this workspace builds the bound is
//! *consistent*, which keeps A* pop order Dijkstra-exact — bit-identical
//! distances, far fewer scanned edges.
//!
//! Landmarks are elected by coverage-first farthest-point traversal:
//! every connected component gets a landmark (at its periphery, where
//! the triangle bound is tight) before the spread refines the largest
//! components, so goal-directed queries are never blind inside a
//! component just because vertex 0 lives elsewhere. Full distance fields
//! are stored row-per-landmark.
//! Preprocessing persists the table in the `RSP4` cache next to the radii
//! (the (k, ρ) ball machinery already computes multi-source distance
//! fields; landmarks are the same shape of artifact), and solvers built
//! with [`crate::P2pMode::GoalDirected`] without a preprocessing pass
//! build the table once at construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rs_graph::{CsrGraph, Dist, VertexId, INF};

/// How many landmarks preprocessing and on-demand construction elect.
pub const DEFAULT_LANDMARKS: usize = 8;

/// A set of landmark vertices with their full distance fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Landmarks {
    ids: Vec<VertexId>,
    /// `dists[l][v]` = d(landmark `l`, `v`); `INF` when unreachable.
    dists: Vec<Vec<Dist>>,
}

impl Landmarks {
    /// Elects up to `k` landmarks on `g` by coverage-first farthest-point
    /// traversal and computes their distance fields (sequential
    /// Dijkstras). Election is deterministic and **per-component**: while
    /// any component has no landmark, the lowest-id uncovered vertex
    /// seeds a probe Dijkstra and the farthest vertex of that component
    /// is elected (on a connected graph this reproduces the classic
    /// "farthest from vertex 0" seed exactly); once every component is
    /// covered, each next landmark maximises the minimum distance to the
    /// already-chosen set. Ties break toward the lowest id. Goal-directed
    /// searches inside *any* component therefore get finite, tight
    /// bounds — not just vertex 0's component.
    pub fn build(g: &CsrGraph, k: usize) -> Landmarks {
        let n = g.num_vertices();
        let mut lm = Landmarks { ids: Vec::new(), dists: Vec::new() };
        if n == 0 || k == 0 {
            return lm;
        }
        // min over elected fields; `INF` marks a still-uncovered vertex.
        let mut min_dist = vec![INF; n];
        while lm.ids.len() < k.min(n) {
            if let Some(seed) = min_dist.iter().position(|&d| d == INF) {
                // Coverage first: a component no landmark can see gets
                // one (its periphery, found via a probe from the seed —
                // an isolated vertex elects itself).
                let probe = sequential_dijkstra(g, seed as VertexId);
                let pick = farthest(&probe).unwrap_or(seed as VertexId);
                lm.push_landmark(g, pick);
            } else {
                // Every component covered: farthest-point spread.
                let Some(next) = farthest(&min_dist) else { break };
                if min_dist[next as usize] == 0 {
                    break; // every vertex is already a landmark
                }
                lm.push_landmark(g, next);
            }
            let field = lm.dists.last().expect("just pushed");
            for (m, &d) in min_dist.iter_mut().zip(field) {
                *m = (*m).min(d);
            }
        }
        lm
    }

    fn push_landmark(&mut self, g: &CsrGraph, v: VertexId) {
        self.dists.push(sequential_dijkstra(g, v));
        self.ids.push(v);
    }

    /// Reassembles a table from persisted parts (the `RSP4` loader).
    ///
    /// # Panics
    /// If the shapes disagree.
    pub fn from_parts(ids: Vec<VertexId>, dists: Vec<Vec<Dist>>) -> Landmarks {
        assert_eq!(ids.len(), dists.len(), "one distance field per landmark");
        let mut n = None;
        for field in &dists {
            assert_eq!(*n.get_or_insert(field.len()), field.len(), "ragged distance fields");
        }
        Landmarks { ids, dists }
    }

    /// The elected landmark vertices.
    pub fn ids(&self) -> &[VertexId] {
        &self.ids
    }

    /// The distance field of landmark `l` (row order matches
    /// [`Landmarks::ids`]).
    pub fn field(&self, l: usize) -> &[Dist] {
        &self.dists[l]
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no landmarks were elected (empty graph / `k = 0`).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The per-landmark goal rows `d(L, goal)`, hoisted out of the solve's
    /// inner loop by [`crate::engine::p2p`].
    pub fn goal_row(&self, goal: VertexId) -> Vec<Dist> {
        self.dists.iter().map(|field| field[goal as usize]).collect()
    }

    /// The ALT lower bound on `d(v, goal)` given the hoisted
    /// [`Landmarks::goal_row`]: `max_L |d(L, v) − d(L, goal)|`, with the
    /// `INF` cases resolved soundly — both infinite contributes nothing
    /// (the landmark sees neither endpoint), exactly one infinite proves
    /// `v` and the goal lie in different components (the bound is `INF`
    /// and the caller prunes).
    pub fn lower_bound(&self, v: VertexId, goal_row: &[Dist]) -> Dist {
        let mut h = 0;
        for (field, &dg) in self.dists.iter().zip(goal_row) {
            let dv = field[v as usize];
            let bound = match (dv == INF, dg == INF) {
                (true, true) => 0,
                (false, false) => dv.abs_diff(dg),
                _ => return INF,
            };
            h = h.max(bound);
        }
        h
    }
}

/// Index of the largest finite entry (ties toward the lowest id); `None`
/// when every entry is `INF`.
fn farthest(dist: &[Dist]) -> Option<VertexId> {
    let mut best: Option<(Dist, VertexId)> = None;
    for (v, &d) in dist.iter().enumerate() {
        if d != INF && best.is_none_or(|(bd, _)| d > bd) {
            best = Some((d, v as VertexId));
        }
    }
    best.map(|(_, v)| v)
}

/// Plain sequential Dijkstra over a std binary heap with lazy deletion —
/// preprocessing-time only (landmark fields are built once and cached),
/// so it deliberately avoids the scratch machinery.
fn sequential_dijkstra(g: &CsrGraph, s: VertexId) -> Vec<Dist> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.edges(u) {
            let cand = d.saturating_add(w as Dist);
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push(Reverse((cand, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, EdgeListBuilder};

    #[test]
    fn election_is_deterministic_and_spread() {
        let g = gen::grid2d(9, 9);
        let a = Landmarks::build(&g, 4);
        let b = Landmarks::build(&g, 4);
        assert_eq!(a, b, "deterministic election");
        assert_eq!(a.len(), 4);
        let mut sorted = a.ids().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "landmarks are distinct");
    }

    #[test]
    fn lower_bound_is_valid_everywhere() {
        let g = gen::grid2d(7, 8);
        let lm = Landmarks::build(&g, 4);
        let n = g.num_vertices();
        for goal in [0u32, 17, (n - 1) as u32] {
            let truth = sequential_dijkstra(&g, goal);
            let row = lm.goal_row(goal);
            for v in 0..n as u32 {
                assert!(
                    lm.lower_bound(v, &row) <= truth[v as usize],
                    "h({v}) must lower-bound d({v}, {goal})"
                );
            }
        }
    }

    #[test]
    fn disconnected_components_prove_unreachability() {
        let mut b = EdgeListBuilder::new(6);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        b.add_edge(3, 4, 2); // second component: {3, 4, 5}
        b.add_edge(4, 5, 2);
        let g = b.build();
        let lm = Landmarks::build(&g, 2);
        // Coverage-first election: one landmark per component before any
        // spread — the periphery of {0,1,2} then the periphery of {3,4,5}.
        assert_eq!(lm.ids(), &[2, 5]);
        // A goal in one component still gets an INF bound from any vertex
        // of the other (the landmark in the goal's component proves it).
        let row = lm.goal_row(2);
        assert_eq!(lm.lower_bound(3, &row), INF);
        assert_eq!(lm.lower_bound(0, &row), lm.lower_bound(0, &row).min(7));
    }

    #[test]
    fn every_component_gets_finite_bounds() {
        // Three components of different shapes, plus an isolated vertex.
        let mut b = EdgeListBuilder::new(10);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        b.add_edge(3, 4, 2);
        b.add_edge(4, 5, 2);
        b.add_edge(6, 7, 5); // third component: {6, 7, 8}
        b.add_edge(7, 8, 1); // vertex 9 is isolated
        let g = b.build();
        let lm = Landmarks::build(&g, 4);
        assert_eq!(lm.len(), 4, "one landmark per component");
        // Within every component the bound is finite, valid, and (here)
        // tight enough to be nonzero between distinct vertices.
        for (s, goal, exact) in [(0u32, 2u32, 7), (3, 5, 4), (6, 8, 6), (9, 9, 0)] {
            let row = lm.goal_row(goal);
            let h = lm.lower_bound(s, &row);
            assert!(h <= exact, "h({s}) must lower-bound d({s}, {goal})");
            assert_ne!(h, INF, "same-component bound must be finite");
            if s != goal {
                assert!(h > 0, "periphery landmarks separate {s} and {goal}");
            }
        }
        // Cross-component bounds still prove unreachability.
        assert_eq!(lm.lower_bound(0, &lm.goal_row(9)), INF);
        assert_eq!(lm.lower_bound(6, &lm.goal_row(3)), INF);
    }

    #[test]
    fn tiny_graphs_do_not_overcount() {
        assert!(Landmarks::build(&CsrGraph::empty(0), 8).is_empty());
        let lone = Landmarks::build(&CsrGraph::empty(1), 8);
        assert!(lone.len() <= 1);
        let mut b = EdgeListBuilder::new(2);
        b.add_edge(0, 1, 1);
        let pair = Landmarks::build(&b.build(), 8);
        assert!(pair.len() <= 2, "never more landmarks than vertices");
    }
}
